"""Paper Table 3: s38584 (20812 cells at full scale).

Same methodology as Table 1 on the s38584-like circuit.
"""

import pytest

from repro.circuit import s38584_like
from repro.core.modes import AnalysisMode

from paper_tables import assert_paper_shape, run_table


@pytest.fixture(scope="module")
def table_run(scale, record_result):
    run = run_table(s38584_like, "Table 3: s38584", scale)
    record_result("table3_s38584", run.render())
    return run


def test_table3_rows(table_run, benchmark):
    assert_paper_shape(table_run)
    benchmark.pedantic(
        lambda: table_run.results[AnalysisMode.ITERATIVE].longest_delay,
        rounds=1,
        iterations=1,
    )


def test_table3_iterative_improves_or_matches_one_step(table_run, benchmark):
    one_step = table_run.results[AnalysisMode.ONE_STEP].longest_delay
    iterative = table_run.results[AnalysisMode.ITERATIVE].longest_delay
    assert iterative <= one_step
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
