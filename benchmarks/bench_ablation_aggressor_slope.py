"""Paper Section 2 claim: worst-case delay at the fastest aggressor slope.

"Simulations show that maximum delay is achieved when the aggressor
voltage has a short ramp time.  We get worst-case delay for an
instantaneous voltage drop on the aggressor line."

We re-simulate the s27 longest path with aligned aggressors at several
aggressor ramp times and check that (a) faster aggressors give longer
path delays, and (b) every finite-ramp simulation stays below the
worst-case STA bound (which assumes the instantaneous drop).
"""

import pytest

from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode
from repro.circuit import s27
from repro.flow import prepare_design
from repro.validate import align_aggressors, build_path_circuit

RAMPS = (5e-12, 50e-12, 200e-12, 600e-12)


@pytest.fixture(scope="module")
def slope_sweep(record_result):
    design = prepare_design(s27())
    sta = CrosstalkSTA(design)
    worst = sta.run(AnalysisMode.WORST_CASE)
    path = sta.critical_path(worst)
    state = worst.final_pass.state

    delays = {}
    for ramp in RAMPS:
        circuit = build_path_circuit(design, path, state, aggressor_transition=ramp)
        outcome = align_aggressors(circuit, steps=1600)
        delays[ramp] = outcome.path_delay

    lines = [
        "Aggressor ramp-time sweep (s27 longest path, aligned aggressors)",
        "",
        f"{'ramp [ps]':>10} {'path delay [ns]':>16}",
        "-" * 28,
    ]
    lines += [f"{r*1e12:>10.0f} {delays[r]*1e9:>16.4f}" for r in RAMPS]
    lines.append("")
    lines.append(f"worst-case STA bound: {worst.longest_delay*1e9:.4f} ns")
    record_result("ablation_aggressor_slope", "\n".join(lines))
    return delays, worst.longest_delay


def test_faster_aggressors_are_worse(slope_sweep, benchmark):
    delays, _ = slope_sweep
    assert delays[RAMPS[0]] >= delays[RAMPS[-1]] - 1e-12
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_instantaneous_model_bounds_all_slopes(slope_sweep, benchmark):
    delays, bound = slope_sweep
    for ramp, delay in delays.items():
        assert delay <= bound, f"ramp {ramp}: {delay} > {bound}"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
