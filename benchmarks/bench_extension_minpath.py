"""Extension bench: min-delay (hold) analysis mode comparison.

The dual of the paper's Tables: earliest-arrival bounds under the four
min-analysis coupling treatments, plus the hold verdicts they imply.
"""

import pytest

from repro.circuit import s35932_like
from repro.core.constraints import check_hold
from repro.core.minpath import MinAnalysisMode, MinPropagator
from repro.flow import prepare_design


@pytest.fixture(scope="module")
def min_runs(scale, record_result):
    design = prepare_design(s35932_like(scale=scale))
    propagator = MinPropagator(design)
    runs = {mode: propagator.run(mode) for mode in MinAnalysisMode}

    lines = [
        f"Min-delay (hold) analysis (s35932-like at scale {scale})",
        "",
        f"{'mode':<16} {'earliest [ns]':>14} {'CPU [s]':>9} {'evals':>9} {'passes':>7}",
        "-" * 60,
    ]
    for mode, result in runs.items():
        lines.append(
            f"{mode.value:<16} {result.shortest_delay_ns:>14.3f} "
            f"{result.runtime_seconds:>9.2f} {result.waveform_evaluations:>9d} "
            f"{result.passes:>7d}"
        )
    report = check_hold(runs[MinAnalysisMode.ITERATIVE], hold_time=50e-12)
    lines.append("")
    lines.append(
        f"hold 50 ps check: {'MET' if report.met else 'VIOLATED'} "
        f"(worst slack {report.worst.slack * 1e12:+.1f} ps)"
    )
    record_result("extension_minpath", "\n".join(lines))
    return runs


def test_min_mode_ordering(min_runs, benchmark):
    worst = min_runs[MinAnalysisMode.WORST].shortest_delay
    one_step = min_runs[MinAnalysisMode.ONE_STEP].shortest_delay
    iterative = min_runs[MinAnalysisMode.ITERATIVE].shortest_delay
    no_coupling = min_runs[MinAnalysisMode.NO_COUPLING].shortest_delay
    assert worst <= one_step + 1e-12
    assert one_step <= iterative + 1e-12
    assert iterative <= no_coupling + 1e-12
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_refinement_recovers_pessimism(min_runs, benchmark):
    """The window-based min analysis tightens the pessimistic all-helping
    bound upward, mirroring the max side's recovery."""
    worst = min_runs[MinAnalysisMode.WORST].shortest_delay
    iterative = min_runs[MinAnalysisMode.ITERATIVE].shortest_delay
    assert iterative >= worst
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
