"""Scalar-vs-batch engine performance baseline.

Runs every analysis mode on the s35932-like circuit with both
waveform-evaluation engines and records wall-clock, arcs/second and the
speedup, plus the engine-agreement check (longest-path delays must match
within the quantization guard band -- in practice they agree bitwise).

Besides the human-readable results block, the numbers are written
machine-readable to ``BENCH_sta_runtime.json`` at the repo root so CI and
future sessions can track regressions.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.circuit import s35932_like
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode, Engine, StaConfig
from repro.flow import prepare_design

BENCH_JSON = Path(__file__).parent.parent / "BENCH_sta_runtime.json"


@pytest.fixture(scope="module")
def engine_comparison(scale, record_result):
    design = prepare_design(s35932_like(scale=scale))
    guard = StaConfig().guard
    rows = []
    for mode in AnalysisMode:
        per_engine = {}
        for engine in (Engine.SCALAR, Engine.BATCH):
            # A fresh analyzer per run: no cross-engine cache sharing.
            sta = CrosstalkSTA(design, StaConfig(mode=mode, engine=engine))
            t0 = time.perf_counter()
            result = sta.run()
            seconds = time.perf_counter() - t0
            per_engine[engine.value] = {
                "seconds": seconds,
                "longest_delay": result.longest_delay,
                "arcs_processed": result.arcs_processed,
                "waveform_evaluations": result.waveform_evaluations,
                "arcs_per_second": result.arcs_processed / seconds,
                "passes": result.passes,
                # Per-pass series: how the delta-driven engine's work
                # decays over the iterative passes (pass 1 pays in full,
                # later passes only re-solve dirty arcs).
                "pass_series": [
                    {
                        "index": record.index,
                        "seconds": record.seconds,
                        "waveform_evaluations": record.waveform_evaluations,
                        "cache_evaluations": record.cache_evaluations,
                        "dedup_hits": record.cache_dedup_hits,
                        "persisted_hits": record.cache_persisted_hits,
                        "dirty_arcs": record.dirty_arcs,
                        "reused_arcs": record.reused_arcs,
                    }
                    for record in result.history
                ],
                # Per-run metrics delta (counters/gauges/histograms) so CI
                # can track solver behaviour, not just wall-clock.
                "metrics": result.telemetry.metrics if result.telemetry else {},
            }
        scalar = per_engine["scalar"]
        batch = per_engine["batch"]
        rows.append(
            {
                "mode": mode.value,
                "engines": per_engine,
                "speedup": scalar["seconds"] / batch["seconds"],
                "delay_diff": abs(scalar["longest_delay"] - batch["longest_delay"]),
            }
        )

    lines = [
        f"Scalar vs batch engine (s35932-like at scale {scale})",
        "",
        f"{'mode':<16} {'scalar s':>9} {'batch s':>9} {'speedup':>8} "
        f"{'arcs/s (batch)':>15} {'delay diff':>11}",
        "-" * 74,
    ]
    for row in rows:
        lines.append(
            f"{row['mode']:<16} {row['engines']['scalar']['seconds']:>9.2f} "
            f"{row['engines']['batch']['seconds']:>9.2f} {row['speedup']:>7.2f}x "
            f"{row['engines']['batch']['arcs_per_second']:>15.0f} "
            f"{row['delay_diff']:>11.2e}"
        )
    record_result("perf_baseline", "\n".join(lines))

    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "sta_runtime",
                "circuit": "s35932_like",
                "scale": scale,
                "guard": guard,
                "python": platform.python_version(),
                "modes": rows,
            },
            indent=2,
        )
        + "\n"
    )
    return {"rows": rows, "guard": guard}


def test_engines_agree_within_guard_band(engine_comparison, benchmark):
    for row in engine_comparison["rows"]:
        assert row["delay_diff"] <= engine_comparison["guard"], row["mode"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_batch_speedup_on_one_step(engine_comparison, benchmark):
    """The headline claim: the batch engine accelerates the paper's
    one-step analysis substantially at the default benchmark scale.

    The floor is 2x, not the historical 3.4x: signature canonicalization
    removed most of the scalar engine's fixed cost (it now builds ~9
    stage tables instead of 75 and dedups aliased pins' solves), so the
    batch engine's *relative* advantage shrank while both absolute times
    improved."""
    row = next(
        r for r in engine_comparison["rows"] if r["mode"] == AnalysisMode.ONE_STEP.value
    )
    assert row["speedup"] >= 2.0, f"one-step speedup only {row['speedup']:.2f}x"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_iterative_pass_work_decays(engine_comparison, benchmark):
    """Delta-driven reuse: from the second pass on, at most 30% of the
    first pass's waveform evaluations are issued (both engines)."""
    row = next(
        r
        for r in engine_comparison["rows"]
        if r["mode"] == AnalysisMode.ITERATIVE.value
    )
    for engine, entry in row["engines"].items():
        series = entry["pass_series"]
        assert len(series) >= 2, f"{engine}: iterative converged in one pass"
        first = series[0]["waveform_evaluations"]
        for later in series[1:]:
            assert later["waveform_evaluations"] <= 0.30 * first, (
                f"{engine}: pass {later['index']} issued "
                f"{later['waveform_evaluations']} of {first} evaluations"
            )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_batch_never_changes_the_bound_semantics(engine_comparison, benchmark):
    """Mode ordering (best <= one-step <= worst) holds for the batch
    engine's reported delays just as for the scalar reference."""
    delays = {
        row["mode"]: row["engines"]["batch"]["longest_delay"]
        for row in engine_comparison["rows"]
    }
    guard = engine_comparison["guard"]
    assert delays["best_case"] <= delays["one_step"] + guard
    assert delays["one_step"] <= delays["worst_case"] + guard
    assert delays["iterative"] <= delays["one_step"] + guard
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
