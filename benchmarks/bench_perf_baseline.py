"""Scalar-vs-batch engine and columnar-vs-object core baselines.

Runs every analysis mode on the s35932-like circuit with both
waveform-evaluation engines and records wall-clock, arcs/second and the
speedup, plus the engine-agreement check (longest-path delays must match
within the quantization guard band -- in practice they agree bitwise).

A second section sweeps the circuit scale (0.05 / 0.2 / 1.0 -- the last
is the paper's full-size s35932) and times the one-step analysis under
both propagation cores (``Core.OBJECT`` vs ``Core.COLUMNAR``), recording
compile time and peak RSS per run.  ``REPRO_SWEEP_MAX=<float>`` caps the
sweep's largest scale for quick local runs.

Besides the human-readable results block, the numbers are written
machine-readable to ``BENCH_sta_runtime.json`` at the repo root so CI and
future sessions can track regressions.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import time
from pathlib import Path

import pytest

from repro.circuit import s35932_like
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode, Core, Engine, SolverTier, StaConfig
from repro.flow import prepare_design

BENCH_JSON = Path(__file__).parent.parent / "BENCH_sta_runtime.json"

SCREEN_TOLERANCE = 100e-12

# The core sweep's scales; 1.0 is the paper's full-size s35932 (the
# tentpole target), the smaller points keep the curve's shape visible.
SWEEP_SCALES = (0.05, 0.2, 1.0)
SWEEP_MODE = AnalysisMode.ONE_STEP

# The committed batch-engine baseline the columnar core is measured
# against (BENCH_sta_runtime.json @ 49e0456: one_step/batch, object
# core): the acceptance target is >= 5x this throughput at scale 1.0.
OBJECT_BASELINE_APS = 1385.0
COLUMNAR_TARGET_SPEEDUP = 5.0


def _peak_rss_mb() -> float:
    """Process-lifetime peak resident set in MiB (ru_maxrss is KiB on
    Linux).  Monotone over the process, so the sweep runs smallest scale
    first and each row's figure is the high-water mark up to that run."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


@pytest.fixture(scope="module")
def engine_comparison(scale, record_result):
    design = prepare_design(s35932_like(scale=scale))
    guard = StaConfig().guard
    rows = []
    for mode in AnalysisMode:
        per_engine = {}
        for engine in (Engine.SCALAR, Engine.BATCH):
            # A fresh analyzer per run: no cross-engine cache sharing.
            sta = CrosstalkSTA(design, StaConfig(mode=mode, engine=engine))
            t0 = time.perf_counter()
            result = sta.run()
            seconds = time.perf_counter() - t0
            per_engine[engine.value] = {
                "seconds": seconds,
                "longest_delay": result.longest_delay,
                "arcs_processed": result.arcs_processed,
                "waveform_evaluations": result.waveform_evaluations,
                "arcs_per_second": result.arcs_processed / seconds,
                "passes": result.passes,
                # Per-pass series: how the delta-driven engine's work
                # decays over the iterative passes (pass 1 pays in full,
                # later passes only re-solve dirty arcs).
                "pass_series": [
                    {
                        "index": record.index,
                        "seconds": record.seconds,
                        "waveform_evaluations": record.waveform_evaluations,
                        "cache_evaluations": record.cache_evaluations,
                        "dedup_hits": record.cache_dedup_hits,
                        "persisted_hits": record.cache_persisted_hits,
                        "dirty_arcs": record.dirty_arcs,
                        "reused_arcs": record.reused_arcs,
                    }
                    for record in result.history
                ],
                # Per-run metrics delta (counters/gauges/histograms) so CI
                # can track solver behaviour, not just wall-clock.
                "metrics": result.telemetry.metrics if result.telemetry else {},
            }
        scalar = per_engine["scalar"]
        batch = per_engine["batch"]
        rows.append(
            {
                "mode": mode.value,
                "engines": per_engine,
                "speedup": scalar["seconds"] / batch["seconds"],
                "delay_diff": abs(scalar["longest_delay"] - batch["longest_delay"]),
            }
        )

    lines = [
        f"Scalar vs batch engine (s35932-like at scale {scale})",
        "",
        f"{'mode':<16} {'scalar s':>9} {'batch s':>9} {'speedup':>8} "
        f"{'arcs/s (batch)':>15} {'delay diff':>11}",
        "-" * 74,
    ]
    for row in rows:
        lines.append(
            f"{row['mode']:<16} {row['engines']['scalar']['seconds']:>9.2f} "
            f"{row['engines']['batch']['seconds']:>9.2f} {row['speedup']:>7.2f}x "
            f"{row['engines']['batch']['arcs_per_second']:>15.0f} "
            f"{row['delay_diff']:>11.2e}"
        )
    record_result("perf_baseline", "\n".join(lines))

    BENCH_JSON.write_text(
        json.dumps(
            {
                "benchmark": "sta_runtime",
                "circuit": "s35932_like",
                "scale": scale,
                "guard": guard,
                "core": StaConfig().core.value,
                "python": platform.python_version(),
                "modes": rows,
            },
            indent=2,
        )
        + "\n"
    )
    return {"rows": rows, "guard": guard}


def _timed_run(design, config):
    sta = CrosstalkSTA(design, config)
    t0 = time.perf_counter()
    result = sta.run()
    return result, time.perf_counter() - t0


@pytest.fixture(scope="module")
def screened_comparison(scale, record_result, engine_comparison):
    """Two-tier solver vs exact Newton, per analysis mode.

    Three runs per mode: exact, screened with refinement disabled (the
    pure pass-1 screening numbers the ISSUE budgets), and screened with
    the default slack refinement (the shipping configuration, whose
    longest-path delta must sit inside the tolerance).  Coupled modes
    (worst_case, one_step, iterative) escalate every actively coupled
    arc by design -- slew is non-monotone in active coupling -- so only
    the uncoupled-screenable modes are expected to beat the 20% / 3x
    pass-1 budgets."""
    design = prepare_design(s35932_like(scale=scale))
    rows = []
    for mode in AnalysisMode:
        exact, exact_seconds = _timed_run(design, StaConfig(mode=mode))
        pass1, pass1_seconds = _timed_run(
            design,
            StaConfig(
                mode=mode,
                solver_tier=SolverTier.SCREENED,
                screen_tolerance=SCREEN_TOLERANCE,
                screen_slack_margin=0.0,
            ),
        )
        refined, refined_seconds = _timed_run(
            design,
            StaConfig(
                mode=mode,
                solver_tier=SolverTier.SCREENED,
                screen_tolerance=SCREEN_TOLERANCE,
            ),
        )
        stats = pass1.cache_stats
        tiers = stats["tier_counts"]
        total_queries = sum(tiers.values())
        rows.append(
            {
                "mode": mode.value,
                "tolerance": SCREEN_TOLERANCE,
                "exact": {
                    "seconds": exact_seconds,
                    "pass1_seconds": exact.history[0].seconds,
                    "solves": exact.cache_stats["evaluations"],
                    "longest_delay": exact.longest_delay,
                },
                "screened_pass1": {
                    "seconds": pass1_seconds,
                    "pass1_seconds": pass1.history[0].seconds,
                    "solves": stats["evaluations"],
                    "longest_delay": pass1.longest_delay,
                    "tier_counts": dict(tiers),
                    "escalations": dict(stats["escalations"]),
                    "escalation_fraction": (
                        tiers["newton"] / total_queries if total_queries else 0.0
                    ),
                    "anchor_solves": stats["anchor_solves"],
                    "coarse_solves": stats["coarse_solves"],
                },
                "solve_fraction": (
                    stats["evaluations"] / exact.cache_stats["evaluations"]
                ),
                "pass1_speedup": (
                    exact.history[0].seconds / pass1.history[0].seconds
                ),
                "screened_refined": {
                    "seconds": refined_seconds,
                    "solves": refined.cache_stats["evaluations"],
                    "longest_delay": refined.longest_delay,
                },
                "longest_path_delta_pass1": (
                    pass1.longest_delay - exact.longest_delay
                ),
                "longest_path_delta": (
                    refined.longest_delay - exact.longest_delay
                ),
            }
        )

    lines = [
        f"Two-tier screened solver vs exact (s35932-like at scale {scale}, "
        f"tolerance {SCREEN_TOLERANCE * 1e12:.0f} ps)",
        "",
        f"{'mode':<16} {'solves':>13} {'esc frac':>9} {'p1 speedup':>11} "
        f"{'d(p1)':>10} {'d(refined)':>11}",
        "-" * 76,
    ]
    for row in rows:
        solves = (
            f"{row['screened_pass1']['solves']}/{row['exact']['solves']}"
        )
        lines.append(
            f"{row['mode']:<16} {solves:>13} "
            f"{row['screened_pass1']['escalation_fraction']:>8.1%} "
            f"{row['pass1_speedup']:>10.2f}x "
            f"{row['longest_path_delta_pass1'] * 1e12:>9.1f}ps "
            f"{row['longest_path_delta'] * 1e12:>10.2f}ps"
        )
    record_result("perf_screened", "\n".join(lines))

    # engine_comparison already wrote the base payload; graft the
    # screened section on so both live in one machine-readable file.
    payload = json.loads(BENCH_JSON.read_text())
    payload["screened"] = {"tolerance": SCREEN_TOLERANCE, "modes": rows}
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    return rows


def test_engines_agree_within_guard_band(engine_comparison, benchmark):
    for row in engine_comparison["rows"]:
        assert row["delay_diff"] <= engine_comparison["guard"], row["mode"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_batch_speedup_on_one_step(engine_comparison, benchmark):
    """The headline claim: the batch engine accelerates the paper's
    one-step analysis substantially at the default benchmark scale.

    The floor is 2x, not the historical 3.4x: signature canonicalization
    removed most of the scalar engine's fixed cost (it now builds ~9
    stage tables instead of 75 and dedups aliased pins' solves), so the
    batch engine's *relative* advantage shrank while both absolute times
    improved."""
    row = next(
        r for r in engine_comparison["rows"] if r["mode"] == AnalysisMode.ONE_STEP.value
    )
    assert row["speedup"] >= 2.0, f"one-step speedup only {row['speedup']:.2f}x"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_iterative_pass_work_decays(engine_comparison, benchmark):
    """Delta-driven reuse: from the second pass on, at most 30% of the
    first pass's waveform evaluations are issued (both engines)."""
    row = next(
        r
        for r in engine_comparison["rows"]
        if r["mode"] == AnalysisMode.ITERATIVE.value
    )
    for engine, entry in row["engines"].items():
        series = entry["pass_series"]
        assert len(series) >= 2, f"{engine}: iterative converged in one pass"
        first = series[0]["waveform_evaluations"]
        for later in series[1:]:
            assert later["waveform_evaluations"] <= 0.30 * first, (
                f"{engine}: pass {later['index']} issued "
                f"{later['waveform_evaluations']} of {first} evaluations"
            )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_screened_pass1_meets_issue_budget(screened_comparison, benchmark):
    """Headline criterion: on uncoupled-screenable modes the screened
    pass issues at most 20% of the exact solve count (>= 5x reduction)
    and the pass-1 wall-clock improves by at least 3x."""
    for mode in ("best_case", "static_doubled"):
        row = next(r for r in screened_comparison if r["mode"] == mode)
        assert row["solve_fraction"] <= 0.20, (
            f"{mode}: screened issued {row['solve_fraction']:.1%} of the "
            f"exact solves (> 20% budget)"
        )
        assert row["pass1_speedup"] >= 3.0, (
            f"{mode}: pass-1 speedup only {row['pass1_speedup']:.2f}x"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_screened_conservative_in_every_mode(screened_comparison, benchmark):
    """The screened bound never undercuts exact, and with the default
    slack refinement the reported delay lands inside the tolerance."""
    for row in screened_comparison:
        assert row["longest_path_delta_pass1"] >= -1e-15, row["mode"]
        assert row["longest_path_delta"] >= -1e-15, row["mode"]
        assert row["longest_path_delta"] <= row["tolerance"] + 1e-15, row["mode"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_batch_never_changes_the_bound_semantics(engine_comparison, benchmark):
    """Mode ordering (best <= one-step <= worst) holds for the batch
    engine's reported delays just as for the scalar reference."""
    delays = {
        row["mode"]: row["engines"]["batch"]["longest_delay"]
        for row in engine_comparison["rows"]
    }
    guard = engine_comparison["guard"]
    assert delays["best_case"] <= delays["one_step"] + guard
    assert delays["one_step"] <= delays["worst_case"] + guard
    assert delays["iterative"] <= delays["one_step"] + guard
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def core_sweep(record_result, screened_comparison):
    """Columnar vs object core across circuit scales, one-step mode.

    Ordered smallest scale first so the peak-RSS column (a process-wide
    high-water mark) is dominated by each row's own run.  Depends on
    ``screened_comparison`` only to serialize the BENCH_JSON grafts."""
    sweep_max = float(os.environ.get("REPRO_SWEEP_MAX", "1.0"))
    rows = []
    for sweep_scale in SWEEP_SCALES:
        if sweep_scale > sweep_max:
            continue
        design = prepare_design(s35932_like(scale=sweep_scale))
        per_core = {}
        for core in (Core.OBJECT, Core.COLUMNAR):
            sta = CrosstalkSTA(
                design,
                StaConfig(mode=SWEEP_MODE, engine=Engine.BATCH, core=core),
            )
            t0 = time.perf_counter()
            result = sta.run()
            seconds = time.perf_counter() - t0
            per_core[core.value] = {
                "seconds": seconds,
                "compile_seconds": result.compile_seconds,
                "arcs_processed": result.arcs_processed,
                "arcs_per_second": result.arcs_processed / seconds,
                "longest_delay": result.longest_delay,
                "peak_rss_mb": _peak_rss_mb(),
            }
        obj = per_core[Core.OBJECT.value]
        col = per_core[Core.COLUMNAR.value]
        rows.append(
            {
                "scale": sweep_scale,
                "mode": SWEEP_MODE.value,
                "engine": Engine.BATCH.value,
                "cores": per_core,
                "speedup": obj["seconds"] / col["seconds"],
                "delay_diff": abs(obj["longest_delay"] - col["longest_delay"]),
            }
        )

    lines = [
        "Columnar vs object core (s35932-like, one-step, batch engine)",
        "",
        f"{'scale':>6} {'arcs':>7} {'object s':>9} {'columnar s':>11} "
        f"{'speedup':>8} {'col arcs/s':>11} {'compile s':>10} {'rss MB':>8}",
        "-" * 78,
    ]
    for row in rows:
        obj = row["cores"]["object"]
        col = row["cores"]["columnar"]
        lines.append(
            f"{row['scale']:>6.2f} {col['arcs_processed']:>7} "
            f"{obj['seconds']:>9.2f} {col['seconds']:>11.2f} "
            f"{row['speedup']:>7.2f}x {col['arcs_per_second']:>11.0f} "
            f"{col['compile_seconds']:>10.3f} {col['peak_rss_mb']:>8.0f}"
        )
    record_result("perf_core_sweep", "\n".join(lines))

    payload = json.loads(BENCH_JSON.read_text())
    payload["core_sweep"] = {
        "mode": SWEEP_MODE.value,
        "engine": Engine.BATCH.value,
        "object_baseline_arcs_per_second": OBJECT_BASELINE_APS,
        "scales": rows,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    return rows


def test_cores_agree_bitwise_at_every_scale(core_sweep, benchmark):
    """The columnar core is strictly a layout change: same delays."""
    for row in core_sweep:
        assert row["delay_diff"] == 0.0, row["scale"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_columnar_meets_issue_target_at_full_scale(core_sweep, benchmark):
    """Acceptance criterion: full-size s35932 (scale 1.0) one-step
    completes under the columnar core at >= 5x the committed
    batch-engine baseline's arcs/s."""
    full = [row for row in core_sweep if row["scale"] >= 1.0]
    if not full:
        pytest.skip("sweep capped below scale 1.0 (REPRO_SWEEP_MAX)")
    aps = full[0]["cores"]["columnar"]["arcs_per_second"]
    floor = COLUMNAR_TARGET_SPEEDUP * OBJECT_BASELINE_APS
    assert aps >= floor, (
        f"columnar scale-1.0 throughput {aps:,.0f} arcs/s is below the "
        f"{COLUMNAR_TARGET_SPEEDUP:.0f}x target over the committed "
        f"{OBJECT_BASELINE_APS:,.0f} arcs/s baseline"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_compile_amortizes_at_bench_scale(core_sweep, benchmark):
    """The one-time columnar compile must stay a small fraction of even
    the smallest sweep point's solve time (<= 10% at scale 0.05)."""
    row = core_sweep[0]
    col = row["cores"]["columnar"]
    assert col["compile_seconds"] <= 0.10 * col["seconds"], (
        f"compile {col['compile_seconds']:.3f}s exceeds 10% of the "
        f"{col['seconds']:.3f}s solve at scale {row['scale']}"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
