"""Paper Section 3 ablation: transistor-level vs table-lookup timing.

"Since our aim is to show the impact of coupling we chose a transistor-
level approach for delay calculation to obtain best accuracy."

We characterize the library into NLDM slew x load tables, run the STA
with the table-lookup calculator (which can only fold coupling into the
load at 1x or 2x -- the classical approaches), and compare against the
transistor-level engine with the active coupling model, using the
longest-path simulation as ground truth.
"""

import pytest

from repro.characterize import NldmDelayCalculator, characterize_library
from repro.circuit import s35932_like
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode, StaConfig
from repro.flow import prepare_design
from repro.validate import align_aggressors, build_path_circuit


@pytest.fixture(scope="module")
def nldm_comparison(scale, record_result):
    design = prepare_design(s35932_like(scale=scale))
    char = characterize_library()

    rows = {}
    # Table-lookup STA: coupling at 1x and at 2x (classical).
    for label, factor, mode in (
        ("nldm ignore (1x)", 1.0, AnalysisMode.BEST_CASE),
        ("nldm doubled (2x)", 2.0, AnalysisMode.STATIC_DOUBLED),
    ):
        calc = NldmDelayCalculator(char, coupling_factor=factor)
        sta = CrosstalkSTA(design, StaConfig(mode=mode), calculator=calc)
        rows[label] = sta.run().longest_delay

    # Transistor-level STA with the active model.
    exact_sta = CrosstalkSTA(design)
    for label, mode in (
        ("exact best case", AnalysisMode.BEST_CASE),
        ("exact iterative", AnalysisMode.ITERATIVE),
        ("exact worst case", AnalysisMode.WORST_CASE),
    ):
        rows[label] = exact_sta.run(mode).longest_delay

    # Ground truth: the simulated longest path, worst aligned aggressors.
    reference = exact_sta.run(AnalysisMode.ITERATIVE)
    path = exact_sta.critical_path(reference)
    circuit = build_path_circuit(design, path, reference.final_pass.state)
    sim = align_aggressors(
        circuit,
        steps=1600,
        quiet_times=reference.final_pass.state.quiet_snapshot(),
    )
    rows["simulation (windows)"] = sim.path_delay

    lines = [
        f"Table-lookup (NLDM) vs transistor-level timing (scale {scale})",
        "",
        f"{'engine':<22} {'delay [ns]':>11}",
        "-" * 35,
    ]
    lines += [f"{k:<22} {v*1e9:>11.3f}" for k, v in rows.items()]
    record_result("ablation_nldm", "\n".join(lines))
    return rows


def test_nldm_tracks_exact_without_coupling(nldm_comparison, benchmark):
    """The tables themselves are accurate: coupling-free analyses agree."""
    assert nldm_comparison["nldm ignore (1x)"] == pytest.approx(
        nldm_comparison["exact best case"], rel=0.08
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_nldm_doubled_not_guaranteed_safe(nldm_comparison, benchmark):
    """The classical doubled-load table approach sits below the worst-case
    active-model bound: it cannot certify the true worst case (the paper's
    core criticism)."""
    assert (
        nldm_comparison["nldm doubled (2x)"] < nldm_comparison["exact worst case"]
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_exact_iterative_bounds_simulation(nldm_comparison, benchmark):
    assert nldm_comparison["simulation (windows)"] <= nldm_comparison["exact iterative"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
