#!/usr/bin/env python3
"""Perf-trajectory guard: fresh bench vs the committed baseline.

Runs one fresh tiny-scale analysis (the same circuit, scale, mode and
engine as the committed ``BENCH_sta_runtime.json`` headline row) and
diffs two numbers that should survive machine changes:

* ``arcs_per_second`` -- absolute throughput varies wildly between
  runners, so the guard only insists the fresh figure stays above a
  generous floor (``--aps-floor``, default 20%) of the committed one.
  What this actually catches is an accidental algorithmic cliff (a
  quadratic sneaking into the pass loop), not machine drift.
* pass-2 reuse fraction -- the share of arcs the delta-driven engine
  reuses on its second iterative pass.  This is a property of the
  algorithm, not the machine, so it must stay within ``--reuse-tol``
  (default 0.15 absolute) of the committed figure.

Exit status 0 when both hold, 1 otherwise.  Run from the repo root:

    python benchmarks/check_perf_trajectory.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

DEFAULT_BASELINE = REPO / "BENCH_sta_runtime.json"
DEFAULT_APS_FLOOR = 0.2
DEFAULT_REUSE_TOLERANCE = 0.15


def _pass2_reuse(engine_row: dict) -> float | None:
    """Reused-arc fraction of the second pass, None when the run
    converged in a single pass or recorded no arcs."""
    series = engine_row.get("pass_series", [])
    if len(series) < 2:
        return None
    p2 = series[1]
    total = p2.get("dirty_arcs", 0) + p2.get("reused_arcs", 0)
    if not total:
        return None
    return p2["reused_arcs"] / total


def _fresh_measurement(scale: float, mode: str, engine: str, core: str) -> dict:
    from repro.circuit import s35932_like
    from repro.core.analyzer import CrosstalkSTA
    from repro.core.modes import AnalysisMode, Core, Engine, StaConfig
    from repro.flow import prepare_design

    design = prepare_design(s35932_like(scale=scale))
    config = StaConfig(mode=AnalysisMode(mode), engine=Engine(engine), core=Core(core))
    sta = CrosstalkSTA(design, config)
    t0 = time.perf_counter()
    result = sta.run()
    seconds = time.perf_counter() - t0
    return {
        "seconds": seconds,
        "arcs_processed": result.arcs_processed,
        "arcs_per_second": result.arcs_processed / seconds,
        "pass_series": [
            {"dirty_arcs": r.dirty_arcs, "reused_arcs": r.reused_arcs}
            for r in result.history
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed BENCH_sta_runtime.json to diff against",
    )
    parser.add_argument("--mode", default="iterative")
    parser.add_argument("--engine", default="scalar")
    parser.add_argument(
        "--core",
        default=None,
        help="propagation core for the fresh run (default: the "
        "baseline's recorded core, falling back to columnar)",
    )
    parser.add_argument(
        "--aps-floor",
        type=float,
        default=DEFAULT_APS_FLOOR,
        help="fresh arcs/s must stay above this fraction of committed",
    )
    parser.add_argument(
        "--reuse-tol",
        type=float,
        default=DEFAULT_REUSE_TOLERANCE,
        help="allowed absolute drift of the pass-2 reuse fraction",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"baseline {args.baseline} not found", file=sys.stderr)
        return 1
    baseline = json.loads(args.baseline.read_text())
    try:
        committed = next(
            row for row in baseline["modes"] if row["mode"] == args.mode
        )["engines"][args.engine]
    except (KeyError, StopIteration):
        print(
            f"baseline has no {args.mode}/{args.engine} row; re-run "
            "benchmarks/bench_perf_baseline.py to regenerate it",
            file=sys.stderr,
        )
        return 1

    scale = baseline.get("scale", 0.05)
    core = args.core or baseline.get("core", "columnar")
    print(
        f"fresh run: {baseline.get('circuit', 's35932_like')} at scale "
        f"{scale}, mode={args.mode}, engine={args.engine}, core={core} ..."
    )
    fresh = _fresh_measurement(scale, args.mode, args.engine, core)

    committed_aps = committed["arcs_per_second"]
    fresh_aps = fresh["arcs_per_second"]
    committed_reuse = _pass2_reuse(committed)
    fresh_reuse = _pass2_reuse(fresh)

    failures: list[str] = []
    aps_floor = committed_aps * args.aps_floor
    print(
        f"arcs_per_second: committed {committed_aps:,.0f}, fresh "
        f"{fresh_aps:,.0f} (floor {aps_floor:,.0f} = "
        f"{args.aps_floor:.0%} of committed)"
    )
    if fresh_aps < aps_floor:
        failures.append(
            f"throughput collapsed: {fresh_aps:,.0f} arcs/s is below "
            f"{args.aps_floor:.0%} of the committed {committed_aps:,.0f}"
        )

    if committed_reuse is None:
        print("pass-2 reuse: no committed multi-pass series; skipping")
    elif fresh_reuse is None:
        failures.append(
            "pass-2 reuse: committed baseline has a multi-pass series but "
            "the fresh run converged without one"
        )
    else:
        print(
            f"pass-2 reuse fraction: committed {committed_reuse:.3f}, "
            f"fresh {fresh_reuse:.3f} (tolerance +/-{args.reuse_tol})"
        )
        if abs(fresh_reuse - committed_reuse) > args.reuse_tol:
            failures.append(
                f"pass-2 reuse fraction drifted: {fresh_reuse:.3f} vs "
                f"committed {committed_reuse:.3f} "
                f"(tolerance +/-{args.reuse_tol})"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf trajectory OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
