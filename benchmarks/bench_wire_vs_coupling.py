"""Paper Section 6 claim: coupling impact exceeds wire-resistance impact.

"The circuits s35932 and s38417 have a wire delay of about 0.2ns, the
s38584 has a wire delay of 0.5ns.  The impact of coupling is significantly
larger (1.4ns, 2.8ns and 2.7ns, respectively)."

For each circuit we measure
  * wire impact     = best-case delay - best-case delay with ideal wires
                      (all Elmore delays zeroed), and
  * coupling impact = worst-case delay - best-case delay,
and assert the paper's ordering (coupling impact > wire impact).
"""

import copy

import pytest

from repro.circuit import s35932_like, s38417_like, s38584_like
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode
from repro.flow import prepare_design


def ideal_wire_design(design):
    """A shallow clone of the design with every Elmore wire delay zeroed
    (capacitive loads unchanged)."""
    clone = copy.copy(design)
    clone.loads = {}
    for name, load in design.loads.items():
        new_load = copy.copy(load)
        new_load.sink_elmore = {k: 0.0 for k in load.sink_elmore}
        clone.loads[name] = new_load
    return clone


@pytest.fixture(scope="module")
def impacts(scale, record_result):
    rows = []
    for title, factory in (
        ("s35932", s35932_like),
        ("s38417", s38417_like),
        ("s38584", s38584_like),
    ):
        design = prepare_design(factory(scale=scale))
        best = CrosstalkSTA(design).run(AnalysisMode.BEST_CASE).longest_delay
        worst = CrosstalkSTA(design).run(AnalysisMode.WORST_CASE).longest_delay
        no_wire = (
            CrosstalkSTA(ideal_wire_design(design))
            .run(AnalysisMode.BEST_CASE)
            .longest_delay
        )
        rows.append(
            {
                "circuit": title,
                "wire_impact": best - no_wire,
                "coupling_impact": worst - best,
            }
        )

    lines = [
        f"Wire-resistance impact vs coupling impact (scale {scale})",
        "",
        f"{'circuit':<10} {'wire [ns]':>10} {'coupling [ns]':>14} {'ratio':>7}",
        "-" * 45,
    ]
    for row in rows:
        ratio = row["coupling_impact"] / max(row["wire_impact"], 1e-15)
        lines.append(
            f"{row['circuit']:<10} {row['wire_impact']*1e9:>10.3f} "
            f"{row['coupling_impact']*1e9:>14.3f} {ratio:>7.1f}"
        )
    record_result("wire_vs_coupling", "\n".join(lines))
    return rows


def test_coupling_dominates_wire_delay(impacts, benchmark):
    for row in impacts:
        assert row["coupling_impact"] > row["wire_impact"], row
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_wire_impact_positive(impacts, benchmark):
    """Elmore wire delay is present (the routing is not a zero model)."""
    assert all(row["wire_impact"] > 0 for row in impacts)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
