"""Paper Table 1: s35932 (17900 cells at full scale).

Regenerates the table's rows -- longest-path delay and CPU time for the
five analysis modes -- against a synthetic stand-in of s35932 routed in
the 0.5 um two-metal flow, plus the longest-path re-simulations.
Scale via REPRO_SCALE / REPRO_FULL (see conftest).
"""

import pytest

from repro.circuit import s35932_like
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode

from paper_tables import assert_paper_shape, run_table


@pytest.fixture(scope="module")
def table_run(scale, record_result):
    run = run_table(s35932_like, "Table 1: s35932", scale)
    record_result("table1_s35932", run.render())
    return run


def test_table1_rows(table_run, benchmark):
    """Assert the paper's qualitative shape; benchmark one one-step pass."""
    assert_paper_shape(table_run)
    design_delay = table_run.results[AnalysisMode.ONE_STEP]
    benchmark.pedantic(
        lambda: design_delay.longest_delay, rounds=1, iterations=1
    )


def test_table1_one_step_runtime(scale, benchmark):
    """Wall-clock of a full one-step analysis (the paper's CPU column)."""
    from repro.flow import prepare_design

    design = prepare_design(s35932_like(scale=scale))

    def analysis():
        return CrosstalkSTA(design).run(AnalysisMode.ONE_STEP).longest_delay

    result = benchmark.pedantic(analysis, rounds=1, iterations=1)
    assert result > 0
