"""Paper Section 2 ablation: the choice of the model threshold V_th.

"The natural choice of V_th as the threshold voltage of the transistors
is not sufficient since it ignores the sub-threshold region.  Certainly, a
V_th that has no impact on the delay calculation has to be chosen.  In our
case the chosen value is 0.2 Volts while having a transistor threshold
voltage of 0.6 Volts."

We sweep the model threshold and measure the one-step longest-path bound:
at small V_th the bound is insensitive (the waveform restart point sits
below where the delay thresholds are measured); pushing V_th toward the
transistor threshold erodes the modelled coupling penalty.
"""

import dataclasses

import pytest

from repro.circuit import s27
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode
from repro.devices.params import default_process
from repro.flow import prepare_design

SWEEP = (0.10, 0.20, 0.30, 0.45)


@pytest.fixture(scope="module")
def vth_sweep(record_result):
    circuit = s27()
    delays = {}
    for v_th in SWEEP:
        process = dataclasses.replace(default_process(), v_th_model=v_th)
        design = prepare_design(circuit, process=process)
        result = CrosstalkSTA(design).run(AnalysisMode.ONE_STEP)
        delays[v_th] = result.longest_delay

    lines = [
        "Model-threshold sweep (s27, one-step bound)",
        "",
        f"{'V_th [V]':>9} {'delay [ns]':>11}",
        "-" * 22,
    ]
    lines += [f"{v:>9.2f} {delays[v]*1e9:>11.4f}" for v in SWEEP]
    record_result("ablation_vth", "\n".join(lines))
    return delays


def test_small_vth_insensitive(vth_sweep, benchmark):
    """0.1 V and 0.2 V give nearly the same bound: the paper's 0.2 V
    choice is in the flat region."""
    assert vth_sweep[0.10] == pytest.approx(vth_sweep[0.20], rel=0.05)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_large_vth_erodes_the_penalty(vth_sweep, benchmark):
    """Raising the restart voltage towards the transistor threshold
    shrinks the modelled coupling penalty (less swing to recover)."""
    assert vth_sweep[0.45] <= vth_sweep[0.20] + 1e-12
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bounds_monotone_in_vth(vth_sweep, benchmark):
    values = [vth_sweep[v] for v in SWEEP]
    for earlier, later in zip(values, values[1:]):
        assert later <= earlier + 5e-12
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
