"""Extension bench: the analyze -> rank -> shield -> re-analyze loop.

Quantifies the crosstalk-repair flow: per repair round, the victims'
coupling capacitance collapses and the iterative crosstalk-aware bound
improves without regressing the untouched nets (rip-up-and-reroute keeps
their geometry).
"""

import pytest

from repro.circuit import s35932_like
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode
from repro.flow import prepare_design, repair_crosstalk


@pytest.fixture(scope="module")
def repair_rounds(scale, record_result):
    design = prepare_design(s35932_like(scale=scale))
    initial = CrosstalkSTA(design).run(AnalysisMode.ITERATIVE)

    rounds = []
    current = design
    for index in range(2):
        outcome = repair_crosstalk(current, top=10)
        rounds.append(outcome)
        current = outcome.design

    lines = [
        f"Crosstalk repair rounds (s35932-like at scale {scale})",
        "",
        f"initial iterative bound: {initial.longest_delay*1e9:.3f} ns",
    ]
    for i, outcome in enumerate(rounds, 1):
        victims_cc_before = sum(outcome.before_coupling.values())
        victims_cc_after = sum(outcome.after_coupling.values())
        lines.append(
            f"round {i}: {outcome.before_delay*1e9:.3f} -> "
            f"{outcome.after_delay*1e9:.3f} ns; victim C_c "
            f"{victims_cc_before*1e15:.0f} -> {victims_cc_after*1e15:.0f} fF"
        )
    record_result("extension_repair", "\n".join(lines))
    return initial, rounds


def test_victim_coupling_collapses(repair_rounds, benchmark):
    _, rounds = repair_rounds
    for outcome in rounds:
        before = sum(outcome.before_coupling.values())
        after = sum(outcome.after_coupling.values())
        assert after < 0.35 * before
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_bound_never_regresses(repair_rounds, benchmark):
    initial, rounds = repair_rounds
    bound = initial.longest_delay
    for outcome in rounds:
        assert outcome.after_delay <= bound * 1.02
        bound = outcome.after_delay
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
