"""Paper Sections 5.1/5.2 complexity claims.

* One-step: "Compared to the normal BFS the waveform calculation is
  performed twice for each timing arc" and "does not increase the
  complexity" (linear in arcs).
* Iterative: "With no iterative improvement, a full STA is performed
  twice, with improvement it is performed at least three times."

We measure waveform evaluations per arc for each mode and the wall-clock
scaling of the one-step pass over circuit size.
"""

import time

import pytest

from repro.circuit import s35932_like
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode
from repro.flow import prepare_design


@pytest.fixture(scope="module")
def eval_stats(scale, record_result):
    design = prepare_design(s35932_like(scale=scale))
    stats = {}
    for mode in AnalysisMode:
        result = CrosstalkSTA(design).run(mode)
        stats[mode] = result

    lines = [
        f"Evaluation counts per mode (s35932-like at scale {scale})",
        "",
        f"{'mode':<16} {'arcs':>8} {'evals':>9} {'evals/arc':>10} {'passes':>7}",
        "-" * 55,
    ]
    for mode, result in stats.items():
        per_arc = result.waveform_evaluations / max(result.arcs_processed, 1)
        lines.append(
            f"{mode.value:<16} {result.arcs_processed:>8d} "
            f"{result.waveform_evaluations:>9d} {per_arc:>10.2f} {result.passes:>7d}"
        )
    record_result("runtime_evals", "\n".join(lines))
    return stats


def test_one_step_two_calcs_per_arc(eval_stats, benchmark):
    one_step = eval_stats[AnalysisMode.ONE_STEP]
    per_arc = one_step.waveform_evaluations / one_step.arcs_processed
    assert 1.0 < per_arc <= 2.0
    best = eval_stats[AnalysisMode.BEST_CASE]
    assert best.waveform_evaluations == best.arcs_processed
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_iterative_at_least_two_full_passes(eval_stats, benchmark):
    iterative = eval_stats[AnalysisMode.ITERATIVE]
    one_step = eval_stats[AnalysisMode.ONE_STEP]
    assert iterative.passes >= 2
    assert iterative.waveform_evaluations >= 2 * one_step.waveform_evaluations * 0.95
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_linear_scaling_of_one_step(scale, record_result, benchmark):
    """Evaluations (the dominant cost) grow linearly with circuit size."""
    sizes = [0.5 * scale, 1.0 * scale]
    points = []
    for s in sizes:
        design = prepare_design(s35932_like(scale=s))
        t0 = time.time()
        result = CrosstalkSTA(design).run(AnalysisMode.ONE_STEP)
        points.append(
            (result.arcs_processed, result.waveform_evaluations, time.time() - t0)
        )

    lines = [
        "One-step scaling (arcs, evals, seconds):",
        *(f"  arcs={a:>7d}  evals={e:>8d}  {t:6.1f} s" for a, e, t in points),
    ]
    record_result("runtime_scaling", "\n".join(lines))

    # Evaluations per arc stay flat as the circuit grows: linear scaling.
    ratios = [e / a for a, e, _ in points]
    assert ratios[1] == pytest.approx(ratios[0], rel=0.25)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
