"""Shared driver for the paper's Tables 1-3 (not collected by pytest).

Each table bench runs the five analysis modes with *independent* delay
calculators (so the runtime column is honest per mode, like the paper's
CPU column), re-simulates the longest path three ways, checks every bound,
and renders the paper-style table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.analyzer import CrosstalkSTA, StaResult
from repro.core.modes import AnalysisMode
from repro.core.report import MODE_LABELS, MODE_ORDER, check_mode_ordering
from repro.flow import Design, prepare_design
from repro.validate import align_aggressors, build_path_circuit, quiet_simulation


@dataclass
class TableRun:
    """Everything a table bench produces."""

    title: str
    cell_count: int
    scale: float
    results: dict = field(default_factory=dict)
    prep_seconds: float = 0.0
    sim_quiet_ns: float | None = None
    sim_windowed_ns: float | None = None
    sim_worst_ns: float | None = None
    path_stages: int = 0

    def render(self) -> str:
        lines = [
            f"{self.title} -- {self.cell_count} cells at scale {self.scale}"
            f" (physical design {self.prep_seconds:.1f} s)",
        ]
        lines.append("")
        lines.append(f"{'Mode':<16} {'Delay [ns]':>11} {'CPU [s]':>9} {'Evals':>9} {'Passes':>7}")
        lines.append("-" * 56)
        for mode in MODE_ORDER:
            res: StaResult = self.results[mode]
            lines.append(
                f"{MODE_LABELS[mode]:<16} {res.longest_delay_ns:>11.3f} "
                f"{res.runtime_seconds:>9.2f} {res.waveform_evaluations:>9d} "
                f"{res.passes:>7d}"
            )
        lines.append("-" * 56)
        if self.sim_quiet_ns is not None:
            lines.append(f"{'Sim (quiet)':<16} {self.sim_quiet_ns:>11.3f}")
        if self.sim_windowed_ns is not None:
            lines.append(f"{'Sim (windows)':<16} {self.sim_windowed_ns:>11.3f}")
        if self.sim_worst_ns is not None:
            lines.append(f"{'Sim (worst)':<16} {self.sim_worst_ns:>11.3f}")
        lines.append("")
        best = self.results[AnalysisMode.BEST_CASE].longest_delay_ns
        worst = self.results[AnalysisMode.WORST_CASE].longest_delay_ns
        iterative = self.results[AnalysisMode.ITERATIVE].longest_delay_ns
        lines.append(f"coupling impact (worst - best): {worst - best:.3f} ns")
        lines.append(f"window-based recovery (worst - iterative): {worst - iterative:.3f} ns")
        lines.append(f"critical path: {self.path_stages} stages")
        return "\n".join(lines)


def run_table(factory, title: str, scale: float, simulate: bool = True) -> TableRun:
    t0 = time.time()
    circuit = factory(scale=scale)
    design: Design = prepare_design(circuit)
    run = TableRun(
        title=title,
        cell_count=circuit.cell_count(),
        scale=scale,
        prep_seconds=time.time() - t0,
    )

    # Fresh calculator per mode: the CPU column measures each mode alone.
    for mode in MODE_ORDER:
        run.results[mode] = CrosstalkSTA(design).run(mode)

    reference = run.results[AnalysisMode.ITERATIVE]
    sta = CrosstalkSTA(design)
    path = sta.critical_path(reference)
    run.path_stages = len(path)

    if simulate and path.steps:
        # Launch each simulation with the stimulus of the mode it
        # validates (the bound includes that mode's launch timing).
        state = reference.final_pass.state
        best_state = run.results[AnalysisMode.BEST_CASE].final_pass.state
        worst_state = run.results[AnalysisMode.WORST_CASE].final_pass.state
        quiet_circuit = build_path_circuit(design, path, best_state)
        run.sim_quiet_ns = quiet_simulation(quiet_circuit, steps=1600).path_delay * 1e9
        sim_circuit = build_path_circuit(design, path, state)
        run.sim_windowed_ns = (
            align_aggressors(sim_circuit, steps=1600, quiet_times=state.quiet_snapshot())
            .path_delay * 1e9
        )
        worst_circuit = build_path_circuit(design, path, worst_state)
        run.sim_worst_ns = align_aggressors(worst_circuit, steps=1600).path_delay * 1e9
    return run


def assert_paper_shape(run: TableRun) -> None:
    """The qualitative claims of Section 6, as assertions."""
    violations = check_mode_ordering(run.results)
    assert not violations, violations

    best = run.results[AnalysisMode.BEST_CASE].longest_delay
    worst = run.results[AnalysisMode.WORST_CASE].longest_delay
    one_step = run.results[AnalysisMode.ONE_STEP].longest_delay
    iterative = run.results[AnalysisMode.ITERATIVE].longest_delay

    # Coupling matters ("certainly cannot be ignored").
    assert worst > best * 1.01
    # The window-based algorithms recover some of the pessimism.
    assert one_step < worst
    assert iterative <= one_step

    if run.sim_windowed_ns is not None:
        # Upper-bound property against the simulations.
        assert run.sim_quiet_ns <= run.results[AnalysisMode.BEST_CASE].longest_delay_ns
        assert run.sim_windowed_ns <= run.results[AnalysisMode.ITERATIVE].longest_delay_ns
        assert run.sim_worst_ns <= run.results[AnalysisMode.WORST_CASE].longest_delay_ns
