"""Observability-overhead benchmark.

The instrumentation budget of the tentpole: the tracer must be free when
disabled.  The null tracer's ``span()`` returns a shared no-op context
manager, so the disabled path is strictly cheaper than the enabled path
measured here; asserting that even *enabled* per-level/per-phase tracing
stays under the 2% budget proves the disabled path does too, without
needing an un-instrumented build to compare against.

Also asserts the bit-exactness contract: tracing must never change the
analysis result.
"""

from __future__ import annotations

import time

import pytest

from repro.circuit import s27
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode, StaConfig
from repro.flow import prepare_design
from repro.obs import Observability

ROUNDS = 5
OVERHEAD_BUDGET = 0.02


@pytest.fixture(scope="module")
def overhead_comparison(record_result):
    design = prepare_design(s27())
    config = StaConfig(mode=AnalysisMode.ONE_STEP)

    def run(obs):
        # A fresh analyzer per run: no arc-cache sharing between timings.
        sta = CrosstalkSTA(design, config, obs=obs)
        t0 = time.perf_counter()
        result = sta.run()
        return time.perf_counter() - t0, result

    run(Observability.disabled())  # warmup (imports, table builds)

    disabled_times: list[float] = []
    enabled_times: list[float] = []
    delays: set[float] = set()
    span_count = 0
    for _ in range(ROUNDS):
        seconds, result = run(Observability.disabled())
        disabled_times.append(seconds)
        delays.add(result.longest_delay)
        obs = Observability.tracing()
        seconds, result = run(obs)
        enabled_times.append(seconds)
        delays.add(result.longest_delay)
        span_count = len(obs.tracer.events)

    disabled_best = min(disabled_times)
    enabled_best = min(enabled_times)
    overhead = enabled_best / disabled_best - 1.0

    record_result(
        "obs_overhead",
        "\n".join(
            [
                f"Tracing overhead (s27 one-step, best of {ROUNDS})",
                "",
                f"  disabled (null tracer): {disabled_best * 1e3:8.2f} ms",
                f"  enabled  ({span_count} spans):    {enabled_best * 1e3:8.2f} ms",
                f"  overhead: {overhead:+.2%} (budget {OVERHEAD_BUDGET:.0%})",
            ]
        ),
    )
    return {
        "disabled_best": disabled_best,
        "enabled_best": enabled_best,
        "overhead": overhead,
        "delays": delays,
        "span_count": span_count,
    }


def test_results_identical_with_tracing(overhead_comparison, benchmark):
    assert len(overhead_comparison["delays"]) == 1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_tracing_overhead_within_budget(overhead_comparison, benchmark):
    assert overhead_comparison["span_count"] > 0
    assert overhead_comparison["overhead"] < OVERHEAD_BUDGET, (
        f"tracing overhead {overhead_comparison['overhead']:.2%} "
        f"exceeds the {OVERHEAD_BUDGET:.0%} budget"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
