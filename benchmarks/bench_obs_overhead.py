"""Observability-overhead benchmark.

The instrumentation budget of the tentpole: the tracer must be free when
disabled.  The null tracer's ``span()`` returns a shared no-op context
manager, so the disabled path is strictly cheaper than the enabled path
measured here; asserting that even *enabled* per-level/per-phase tracing
stays under the 2% budget proves the disabled path does too, without
needing an un-instrumented build to compare against.

Also asserts the bit-exactness contract: tracing must never change the
analysis result.

The provenance ledger has its own, tighter budget (1%): recording one
columnar row per merged arc must be noise next to the Newton solves.  It
is measured on three paths -- the exact tier, the screened tier (whose
cheap estimates make any per-arc bookkeeping proportionally the most
visible), and a full service round-trip -- and the ledger-on results
must stay hex-identical to ledger-off.  The rows land in
``BENCH_sta_runtime.json`` under ``provenance_overhead``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.circuit import s27
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode, SolverTier, StaConfig
from repro.flow import prepare_design
from repro.obs import Observability

BENCH_JSON = Path(__file__).parent.parent / "BENCH_sta_runtime.json"

ROUNDS = 5
OVERHEAD_BUDGET = 0.02
PROVENANCE_BUDGET = 0.01


@pytest.fixture(scope="module")
def overhead_comparison(record_result):
    design = prepare_design(s27())
    config = StaConfig(mode=AnalysisMode.ONE_STEP)

    def run(obs):
        # A fresh analyzer per run: no arc-cache sharing between timings.
        # CPU time, not wall clock: scheduler contention on a shared
        # container swings wall time by more than the asserted budget.
        sta = CrosstalkSTA(design, config, obs=obs)
        t0 = time.process_time()
        result = sta.run()
        return time.process_time() - t0, result

    run(Observability.disabled())  # warmup (imports, table builds)

    disabled_times: list[float] = []
    enabled_times: list[float] = []
    delays: set[float] = set()
    span_count = 0
    for _ in range(ROUNDS):
        seconds, result = run(Observability.disabled())
        disabled_times.append(seconds)
        delays.add(result.longest_delay)
        obs = Observability.tracing()
        seconds, result = run(obs)
        enabled_times.append(seconds)
        delays.add(result.longest_delay)
        span_count = len(obs.tracer.events)

    disabled_best = min(disabled_times)
    enabled_best = min(enabled_times)
    overhead = enabled_best / disabled_best - 1.0

    record_result(
        "obs_overhead",
        "\n".join(
            [
                f"Tracing overhead (s27 one-step, best of {ROUNDS})",
                "",
                f"  disabled (null tracer): {disabled_best * 1e3:8.2f} ms",
                f"  enabled  ({span_count} spans):    {enabled_best * 1e3:8.2f} ms",
                f"  overhead: {overhead:+.2%} (budget {OVERHEAD_BUDGET:.0%})",
            ]
        ),
    )
    return {
        "disabled_best": disabled_best,
        "enabled_best": enabled_best,
        "overhead": overhead,
        "delays": delays,
        "span_count": span_count,
    }


def test_results_identical_with_tracing(overhead_comparison, benchmark):
    assert len(overhead_comparison["delays"]) == 1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_tracing_overhead_within_budget(overhead_comparison, benchmark):
    assert overhead_comparison["span_count"] > 0
    assert overhead_comparison["overhead"] < OVERHEAD_BUDGET, (
        f"tracing overhead {overhead_comparison['overhead']:.2%} "
        f"exceeds the {OVERHEAD_BUDGET:.0%} budget"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


PROVENANCE_ROUNDS = 5


def _paired_best(run_on, run_off, rounds=PROVENANCE_ROUNDS):
    """Interleaved best-of-``rounds`` for two runners (CPU time).

    Which runner goes first alternates each round: a fixed order biases
    whichever run follows (warmed allocator / branch predictors).
    Returns (best_on, best_off, last_on_result, last_off_result).
    """
    best_on = best_off = float("inf")
    result_on = result_off = None
    for i in range(rounds):
        first, second = (run_on, run_off) if i % 2 == 0 else (run_off, run_on)
        for run in (first, second):
            seconds, result = run()
            if run is run_on:
                best_on = min(best_on, seconds)
                result_on = result
            else:
                best_off = min(best_off, seconds)
                result_off = result
    return best_on, best_off, result_on, result_off


def _per_arc_bookkeeping_seconds() -> float:
    """Measured upper bound on the per-arc cost of the provenance path.

    Per merged arc the propagator builds a handful of small dicts (the
    calculator surfaces, the memo copy) and appends one columnar ledger
    row.  A tight loop over exactly those operations resolves their cost
    to well under a microsecond of scatter -- unlike an end-to-end A/B
    wall-time ratio, whose noise floor on a shared container (measured
    A/A, identical configs) exceeds the 1% budget being asserted here.
    The returned figure carries a 3x margin for the branchier call sites
    and colder caches of the real pass loop.
    """
    from repro.core.provenance import ProvenanceLedger

    n = 20_000
    best = float("inf")
    for _ in range(3):
        ledger = ProvenanceLedger()
        t0 = time.process_time()
        for i in range(n):
            prov = {
                "tier": "newton",
                "origin": "memo",
                "escalation": None,
                "signature": "nand2:a:rising",
            }
            memo_copy = dict(prov)
            ledger.append(
                tier=memo_copy["tier"],
                origin=memo_copy["origin"],
                escalation=memo_copy["escalation"],
                signature=memo_copy["signature"],
                coupling="overlap",
                aggressors_total=4,
                aggressors_active=2,
                pass_index=1,
                coupling_delta=1.0e-11,
            )
        best = min(best, (time.process_time() - t0) / n)
    return best * 3.0


@pytest.fixture(scope="module")
def provenance_comparison(record_result):
    from repro.service import InProcessClient, TimingService

    design = prepare_design(s27())
    exact = StaConfig(mode=AnalysisMode.ONE_STEP)
    screened = StaConfig(
        mode=AnalysisMode.ONE_STEP, solver_tier=SolverTier.SCREENED
    )

    def direct(config):
        def run():
            sta = CrosstalkSTA(design, config)
            t0 = time.process_time()
            result = sta.run()
            seconds = time.process_time() - t0
            ledger_rows = len(result.ledger) if result.ledger is not None else 0
            return seconds, (result.longest_delay, ledger_rows)

        return run

    def row(label, on_best, off_best, on_result, off_result):
        on_delay, ledger_rows = on_result
        off_delay, _ = off_result
        return {
            "path": label,
            "provenance_on_seconds": on_best,
            "provenance_off_seconds": off_best,
            "wall_overhead": on_best / off_best - 1.0,
            "ledger_rows": ledger_rows,
            "hex_identical": float(on_delay).hex() == float(off_delay).hex(),
        }

    direct(exact)()  # warmup (imports, table builds)

    rows = []
    for label, config in (("exact", exact), ("screened", screened)):
        off_config = StaConfig(
            mode=config.mode,
            solver_tier=config.solver_tier,
            provenance=False,
        )
        rows.append(
            row(label, *_paired_best(direct(config), direct(off_config)))
        )

    # Service round-trip: one full cold request cycle per sample --
    # open_session (design preparation), analyze (the actual solve), and
    # close_session -- the shape a CI or ECO driver actually pays for.
    services, clients = {}, {}
    for provenance in (True, False):
        config = StaConfig(mode=AnalysisMode.ONE_STEP, provenance=provenance)
        services[provenance] = TimingService(config=config, workers=2)
        clients[provenance] = InProcessClient(services[provenance])

    def service_run(provenance):
        client = clients[provenance]

        def run():
            t0 = time.process_time()
            sid = client.open_session("s27")["session"]
            summary = client.analyze(sid)
            client.close_session(sid)
            seconds = time.process_time() - t0
            # The ledger lives server-side; the round trip solves the
            # same design and mode as the exact path, so it appends the
            # same number of rows.
            return seconds, (summary["longest_delay"], rows[0]["ledger_rows"])

        return run

    try:
        service_run(True)()  # warmup (service imports, executor spin-up)
        rows.append(
            row(
                "service_round_trip",
                *_paired_best(service_run(True), service_run(False)),
            )
        )
    finally:
        for service in services.values():
            service.close()

    per_arc = _per_arc_bookkeeping_seconds()
    for entry in rows:
        entry["bookkeeping_seconds"] = entry["ledger_rows"] * per_arc
        entry["overhead"] = (
            entry["bookkeeping_seconds"] / entry["provenance_off_seconds"]
        )

    total_book = sum(r["bookkeeping_seconds"] for r in rows)
    total_off = sum(r["provenance_off_seconds"] for r in rows)
    total_overhead = total_book / total_off

    lines = [
        f"Provenance-ledger overhead (s27 one-step, CPU-time best of "
        f"{PROVENANCE_ROUNDS})",
        "",
        f"{'path':<20} {'on [ms]':>9} {'off [ms]':>9} {'wall':>7} "
        f"{'rows':>5} {'bound':>7}",
        "-" * 60,
    ]
    for row in rows:
        lines.append(
            f"{row['path']:<20} {row['provenance_on_seconds'] * 1e3:>9.2f} "
            f"{row['provenance_off_seconds'] * 1e3:>9.2f} "
            f"{row['wall_overhead']:>+6.2%} {row['ledger_rows']:>5} "
            f"{row['overhead']:>7.3%}"
        )
    lines.append(
        f"per-arc bookkeeping (3x margin): {per_arc * 1e6:.2f} us;"
        f" total bound {total_overhead:.3%} (budget {PROVENANCE_BUDGET:.0%})"
    )
    lines.append(
        "wall column is informational: the container's A/A noise floor"
        " exceeds the budget, so the asserted overhead is rows x measured"
        " per-arc cost over the ledger-off analysis time."
    )
    record_result("provenance_overhead", "\n".join(lines))

    # Graft the rows into the machine-readable baseline (the base payload
    # is written by bench_perf_baseline's engine_comparison fixture).
    if BENCH_JSON.exists():
        payload = json.loads(BENCH_JSON.read_text())
        payload["provenance_overhead"] = {
            "circuit": "s27",
            "mode": "one_step",
            "budget": PROVENANCE_BUDGET,
            "per_arc_bookkeeping_seconds": per_arc,
            "total_overhead": total_overhead,
            "rows": rows,
        }
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    return rows


def test_provenance_results_hex_identical(provenance_comparison, benchmark):
    assert {r["path"] for r in provenance_comparison} == {
        "exact",
        "screened",
        "service_round_trip",
    }
    assert all(row["hex_identical"] for row in provenance_comparison)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_provenance_overhead_within_budget(provenance_comparison, benchmark):
    """Total ledger overhead stays under 1% on every measured path.

    The asserted statistic is rows x measured per-arc bookkeeping cost
    (itself carrying a 3x margin) over the ledger-off analysis time --
    each factor is individually stable, unlike an end-to-end A/B time
    ratio whose noise floor on a shared container exceeds the budget.
    The raw on/off CPU times ride along in the recorded rows for
    trending."""
    for row in provenance_comparison:
        assert row["ledger_rows"] > 0
        assert row["overhead"] < PROVENANCE_BUDGET, (
            f"provenance overhead bound on the {row['path']} path "
            f"{row['overhead']:.3%} exceeds the {PROVENANCE_BUDGET:.0%} budget"
        )
    total_book = sum(r["bookkeeping_seconds"] for r in provenance_comparison)
    total_off = sum(r["provenance_off_seconds"] for r in provenance_comparison)
    assert total_book / total_off < PROVENANCE_BUDGET
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
