"""CI fleet smoke: a real 2-shard fleet on real sockets, one shard
SIGKILLed mid-query-stream.

The contract being smoked (see docs/ROBUSTNESS.md):

* zero failed client requests -- every stream completes through
  ``call_with_retry``'s reconnect/backoff path, 429s allowed;
* every post-kill answer is bit-identical to its pre-kill baseline;
* the router's access log records the shard death and at least one
  session failover.

Run from the repo root with ``PYTHONPATH=src python benchmarks/fleet_smoke.py``.
Exits non-zero (with a diagnostic) on any violation.
"""

from __future__ import annotations

import json
import os
import sys
import threading

from repro.service import FleetOptions, FleetRuntime, ServiceClient

ACCESS_LOG = "fleet-access.log"
CLIENTS = 4
REQUESTS_PER_CLIENT = 10
KILL_AFTER_REQUESTS = 3  # per client, before the shard dies


def main() -> int:
    # The router appends; start from a clean log so the event assertions
    # below only see this run.
    if os.path.exists(ACCESS_LOG):
        os.remove(ACCESS_LOG)
    runtime = FleetRuntime(
        FleetOptions(shards=2, workers=2, queue_limit=8),
        access_log=ACCESS_LOG,
        supervise=True,
        probe_interval=0.25,
        probe_timeout=1.0,
    )
    runtime.start()
    print(f"fleet up at {runtime.address} (2 shards)")

    failures: list[str] = []
    mismatches: list[str] = []
    completed = [0]
    lock = threading.Lock()
    # Workers pause at kill_gate after a few requests; the main thread
    # kills a shard there and releases them via killed -- the death
    # deterministically lands mid-stream for every client.
    kill_gate = threading.Barrier(CLIENTS + 1)
    killed = threading.Event()

    def worker(rank: int) -> None:
        try:
            with ServiceClient(runtime.address) as client:
                opened = client.call_with_retry(
                    "open_session",
                    {
                        "netlist": "s27",
                        "scale": 0.05 + rank * 0.01,
                        "config": {"mode": "one_step"},
                    },
                )
                sid = opened["session"]
                baseline = client.call_with_retry("analyze", {"session": sid})[
                    "longest_delay_hex"
                ]
                for i in range(REQUESTS_PER_CLIENT):
                    if i == KILL_AFTER_REQUESTS:
                        kill_gate.wait(timeout=60)
                        killed.wait(timeout=60)
                    summary = client.call_with_retry("analyze", {"session": sid})
                    if summary["longest_delay_hex"] != baseline:
                        with lock:
                            mismatches.append(
                                f"client {rank} request {i}: "
                                f"{summary['longest_delay_hex']} != {baseline}"
                            )
                    with lock:
                        completed[0] += 1
        except Exception as exc:
            with lock:
                failures.append(f"client {rank}: {type(exc).__name__}: {exc}")
            kill_gate.abort()

    threads = [
        threading.Thread(target=worker, args=(rank,)) for rank in range(CLIENTS)
    ]
    for t in threads:
        t.start()

    # Every client has streamed a few requests; kill the shard that owns
    # the most sessions so the next request in each affected stream
    # crosses a failover.
    try:
        kill_gate.wait(timeout=120)
        with ServiceClient(runtime.address) as observer:
            rows = observer.stats()["shards"]
        victim = max(
            (row for row in rows if row["alive"]),
            key=lambda row: row.get("sessions") or 0,
        )["shard"]
        print(f"killing shard {victim} mid-stream")
        runtime.fleet.kill(victim)
    except threading.BrokenBarrierError:
        pass  # a worker already failed; its error is in `failures`
    finally:
        killed.set()

    for t in threads:
        t.join(120)

    with ServiceClient(runtime.address) as observer:
        fleet_stats = observer.stats()["fleet"]
    runtime.stop()

    events: dict[str, int] = {}
    with open(ACCESS_LOG) as handle:
        for line in handle:
            entry = json.loads(line)
            if "event" in entry:
                events[entry["event"]] = events.get(entry["event"], 0) + 1

    expected = CLIENTS * REQUESTS_PER_CLIENT
    print(
        f"completed {completed[0]}/{expected} requests; "
        f"failures={len(failures)} mismatches={len(mismatches)}"
    )
    print(f"fleet stats: {json.dumps(fleet_stats)}")
    print(f"access-log events: {json.dumps(events)}")

    ok = True
    for failure in failures:
        print(f"FAIL request stream errored: {failure}")
        ok = False
    for mismatch in mismatches:
        print(f"FAIL answer drifted across failover: {mismatch}")
        ok = False
    if completed[0] != expected:
        print(f"FAIL dropped requests: {completed[0]} != {expected}")
        ok = False
    if events.get("shard_down", 0) < 1:
        print("FAIL access log never recorded the shard death")
        ok = False
    if events.get("failover", 0) < 1:
        print("FAIL access log never recorded a session failover")
        ok = False
    if ok:
        print("fleet smoke OK")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
