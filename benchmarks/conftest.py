"""Shared benchmark infrastructure.

Scale control
-------------
The paper's circuits have ~18k-24k cells; a full five-mode analysis of all
three takes tens of minutes in pure Python.  Benchmarks therefore default
to scaled-down synthetic equivalents and honour two environment variables:

* ``REPRO_SCALE=<float>`` -- explicit circuit scale (1.0 = paper size).
* ``REPRO_FULL=1``        -- shorthand for scale 1.0.

Results are printed and archived under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def resolve_scale(default: float = 0.05) -> float:
    if os.environ.get("REPRO_FULL"):
        return 1.0
    value = os.environ.get("REPRO_SCALE")
    if value:
        return float(value)
    return default


@pytest.fixture(scope="session")
def scale() -> float:
    return resolve_scale()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record_result(results_dir):
    """Print a result block and archive it under benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _record
