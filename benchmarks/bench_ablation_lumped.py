"""Paper Section 2 restriction: lumped vs distributed coupling.

"A disadvantage of the model is that it is restricted to lumped
capacitances."  We quantify what the restriction costs: the longest path
is re-simulated with each coupling capacitance (a) lumped at the victim's
driver, as the model assumes, and (b) spread uniformly over the victim's
RC-tree nodes, as the real layout has it.  Resistive shielding makes the
distributed case milder, so the lumped STA bound should hold for both.
"""

import pytest

from repro.circuit import s27
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode
from repro.flow import prepare_design
from repro.validate import align_aggressors, build_path_circuit


@pytest.fixture(scope="module")
def lumped_vs_distributed(record_result):
    design = prepare_design(s27())
    sta = CrosstalkSTA(design)
    result = sta.run(AnalysisMode.WORST_CASE)
    path = sta.critical_path(result)
    state = result.final_pass.state

    delays = {}
    for label, distributed in (("lumped", False), ("distributed", True)):
        circuit = build_path_circuit(
            design, path, state, distributed_coupling=distributed
        )
        outcome = align_aggressors(circuit, steps=1600, max_iterations=4)
        delays[label] = outcome.path_delay

    lines = [
        "Lumped vs distributed coupling (s27 longest path, aligned aggressors)",
        "",
        f"{'coupling placement':<20} {'path delay [ns]':>16}",
        "-" * 38,
        f"{'lumped at driver':<20} {delays['lumped']*1e9:>16.4f}",
        f"{'distributed':<20} {delays['distributed']*1e9:>16.4f}",
        "",
        f"worst-case STA bound: {result.longest_delay*1e9:.4f} ns",
    ]
    record_result("ablation_lumped", "\n".join(lines))
    return delays, result.longest_delay


def test_bound_holds_for_both_placements(lumped_vs_distributed, benchmark):
    delays, bound = lumped_vs_distributed
    assert delays["lumped"] <= bound
    assert delays["distributed"] <= bound
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_distributed_not_dramatically_worse(lumped_vs_distributed, benchmark):
    """Resistive shielding keeps the distributed case close to (typically
    below) the lumped one; the lumped model does not hide a blow-up."""
    delays, _ = lumped_vs_distributed
    assert delays["distributed"] <= delays["lumped"] * 1.10
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
