"""Paper Table 2: s38417 (23922 cells at full scale).

Same methodology as Table 1 on the deeper s38417-like circuit.
"""

import pytest

from repro.circuit import s38417_like
from repro.core.modes import AnalysisMode

from paper_tables import assert_paper_shape, run_table


@pytest.fixture(scope="module")
def table_run(scale, record_result):
    run = run_table(s38417_like, "Table 2: s38417", scale)
    record_result("table2_s38417", run.render())
    return run


def test_table2_rows(table_run, benchmark):
    assert_paper_shape(table_run)
    benchmark.pedantic(
        lambda: table_run.results[AnalysisMode.ITERATIVE].longest_delay,
        rounds=1,
        iterations=1,
    )


def test_table2_depth_shows_in_path(table_run, benchmark):
    """s38417 is the deepest of the three circuits; its critical path has
    correspondingly many stages."""
    assert table_run.path_stages >= 8
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
