"""Extension ablation: one-sided (paper) vs two-sided window check.

The paper's one-step test grounds an aggressor only when it is quiet
*before* the victim's earliest activity.  The OVERLAP extension also
grounds aggressors that cannot *start* before the victim's worst-case
completion.  This bench quantifies the extra tightness and its cost
(one additional all-active waveform calculation per arc).
"""

import pytest

from repro.circuit import s35932_like
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode, StaConfig, WindowCheck
from repro.flow import prepare_design


@pytest.fixture(scope="module")
def window_runs(scale, record_result):
    design = prepare_design(s35932_like(scale=scale))
    runs = {}
    for check in WindowCheck:
        config = StaConfig(mode=AnalysisMode.ITERATIVE, window_check=check)
        runs[check] = CrosstalkSTA(design, config).run()

    lines = [
        f"Window-check ablation (s35932-like at scale {scale}, iterative)",
        "",
        f"{'check':<10} {'delay [ns]':>11} {'evals':>9} {'coupled arcs':>13}",
        "-" * 48,
    ]
    for check, result in runs.items():
        lines.append(
            f"{check.value:<10} {result.longest_delay_ns:>11.3f} "
            f"{result.waveform_evaluations:>9d} {result.coupled_arcs:>13d}"
        )
    tightening = (
        runs[WindowCheck.QUIET].longest_delay - runs[WindowCheck.OVERLAP].longest_delay
    )
    lines.append("")
    lines.append(f"tightening from two-sided check: {tightening*1e9:.3f} ns")
    record_result("ablation_window_check", "\n".join(lines))
    return runs


def test_overlap_no_looser(window_runs, benchmark):
    assert (
        window_runs[WindowCheck.OVERLAP].longest_delay
        <= window_runs[WindowCheck.QUIET].longest_delay + 1e-12
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_overlap_grounds_no_fewer_aggArcs(window_runs, benchmark):
    """The two-sided check can only reduce the number of coupled arcs."""
    assert (
        window_runs[WindowCheck.OVERLAP].coupled_arcs
        <= window_runs[WindowCheck.QUIET].coupled_arcs
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
