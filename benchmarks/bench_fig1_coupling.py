"""Paper Figure 1: the coupled-wire situation that motivates everything.

Quantifies, on one victim stage, the delay under (a) a quiet aggressor,
(b) the classical doubled-capacitance model, (c) the paper's active
coupling model, and (d) a transistor-level simulation with an opposite-
switching aggressor -- and checks their ordering: the simulation exceeds
the static models but stays below the active model's bound.
"""

import pytest

from repro.circuit import default_library
from repro.devices import default_process, nmos, pmos
from repro.spice import PwlSource, SimCircuit, TransientSimulator, delay_between
from repro.waveform import CouplingLoad, GateDelayCalculator
from repro.waveform.pwl import FALLING, RISING

PROCESS = default_process()
VDD = PROCESS.vdd
C_GROUND = 40e-15
C_COUPLE = 25e-15
RAMP = 100e-12


def _simulate(aggressor_switches: bool) -> float:
    circuit = SimCircuit("fig1")
    circuit.add_vdc("vdd", VDD)
    circuit.add_source(PwlSource("vin", "0", [(0.2e-9, VDD), (0.2e-9 + RAMP, 0.0)]))
    circuit.add_mosfet("vp", "victim", "vin", "vdd", pmos(4e-6))
    circuit.add_mosfet("vn", "victim", "vin", "0", nmos(2e-6))
    circuit.add_capacitor("victim", "0", C_GROUND)
    if aggressor_switches:
        circuit.add_source(PwlSource("aggr", "0", [(0.32e-9, VDD), (0.33e-9, 0.0)]))
    else:
        circuit.add_source(PwlSource.dc("aggr", VDD))
    circuit.add_capacitor("victim", "aggr", C_COUPLE)
    sim = TransientSimulator(circuit)
    result = sim.run(
        t_stop=1.5e-9, dt=1e-12,
        initial_voltages={"vin": VDD, "victim": 0.0, "aggr": VDD, "vdd": VDD},
    )
    return delay_between(result, "vin", FALLING, "victim", RISING, VDD / 2).delay


@pytest.fixture(scope="module")
def figure1(record_result):
    calc = GateDelayCalculator()
    inv = default_library()["INV_X1"]

    grounded = calc.compute_arc_relative(
        inv, "A", FALLING, RAMP, CouplingLoad(C_GROUND + C_COUPLE)
    ).t_cross
    doubled = calc.compute_arc_relative(
        inv, "A", FALLING, RAMP, CouplingLoad(C_GROUND + 2 * C_COUPLE)
    ).t_cross
    active = calc.compute_arc_relative(
        inv, "A", FALLING, RAMP, CouplingLoad(C_GROUND, c_couple_active=C_COUPLE)
    ).t_cross

    sim_quiet = _simulate(False) + 0.5 * RAMP  # same t=0 reference as models
    sim_worst = _simulate(True) + 0.5 * RAMP

    data = {
        "model grounded 1x": grounded,
        "model grounded 2x": doubled,
        "model active": active,
        "sim quiet aggressor": sim_quiet,
        "sim switching aggressor": sim_worst,
    }
    lines = [
        f"Figure 1 -- single coupled stage "
        f"(C_gnd={C_GROUND*1e15:.0f} fF, C_c={C_COUPLE*1e15:.0f} fF, ramp {RAMP*1e12:.0f} ps)",
        "",
    ]
    lines += [f"{name:<26} t50 = {value*1e12:7.1f} ps" for name, value in data.items()]
    lines += [
        "",
        f"simulated coupling penalty : {(sim_worst - sim_quiet)*1e12:6.1f} ps",
        f"active-model penalty       : {(active - grounded)*1e12:6.1f} ps",
        f"doubled-model penalty      : {(doubled - grounded)*1e12:6.1f} ps",
    ]
    record_result("fig1_coupling", "\n".join(lines))
    return data


def test_fig1_orderings(figure1, benchmark):
    # Quiet simulation below the quiet model's bound.
    assert figure1["sim quiet aggressor"] <= figure1["model grounded 1x"] * 1.05
    # The doubled model underestimates what the aggressor actually does.
    assert figure1["sim switching aggressor"] > figure1["model grounded 2x"]
    # The active model bounds the simulation.
    assert figure1["sim switching aggressor"] <= figure1["model active"] * 1.02
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fig1_stage_solver_speed(benchmark):
    """Throughput of one coupled waveform calculation (the inner loop of
    the whole analysis)."""
    calc = GateDelayCalculator()
    inv = default_library()["INV_X1"]
    load = CouplingLoad(C_GROUND, c_couple_active=C_COUPLE)

    def solve():
        calc._arc_cache.clear()
        return calc.compute_arc_relative(inv, "A", FALLING, RAMP, load)

    result = benchmark(solve)
    assert result.coupled
