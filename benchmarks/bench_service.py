"""Timing-query service benchmark: warm what-if vs cold analyze, plus a
concurrency sweep against the socket server.

Two claims are measured and pinned:

* **Warm what-if is cheap.**  On a session that has already analyzed the
  paper's Table-1 circuit, a what-if (ECO edit + incremental re-analysis
  through the migrated arc memo and shared arc cache) costs a fraction
  of a cold analysis of the same edited design -- while returning
  bit-identical delays.
* **Overload never drops silently.**  Under a 1/4/16-client burst the
  server may reject with ``busy`` (429), but every rejection carries
  ``retry_after`` and every request eventually completes.

A third claim rides on the fleet (PR 8): a 16-client swarm against a
4-shard fleet **with one induced shard death mid-stream** completes
every request -- 429 retries and transparent re-routes allowed, zero
dropped or errored -- and every failed-over session keeps answering
bit-identically.  Per-shard and fleet-aggregate rows land in
``BENCH_service.json``.

Numbers go to ``BENCH_service.json`` at the repo root.
"""

from __future__ import annotations

import asyncio
import json
import platform
import statistics
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.core.analyzer import CrosstalkSTA
from repro.core.constraints import minimum_period
from repro.core.modes import AnalysisMode, SolverTier, StaConfig
from repro.flow.edits import edit_nets
from repro.flow.optimizer import validate_repair
from repro.service import (
    FleetOptions,
    FleetRuntime,
    ServiceCallError,
    ServiceClient,
    ServiceTransportError,
    SessionManager,
    TimingServer,
    TimingService,
    apply_edit,
    backoff_delay,
)
from repro.service.session import result_summary

BENCH_JSON = Path(__file__).parent.parent / "BENCH_service.json"

MODE = AnalysisMode.ONE_STEP
N_EDITS = 5
N_SCREENED_EDITS = 3
SCREEN_TOLERANCE = 100e-12
CLIENT_COUNTS = (1, 4, 16)
REQUESTS_PER_CLIENT = 12
FLEET_SHARDS = 4
FLEET_CLIENTS = 16
FLEET_REQUESTS_PER_CLIENT = 6


@pytest.fixture(scope="module")
def whatif_comparison(scale, record_result):
    manager = SessionManager(config=StaConfig(mode=MODE))
    session = manager.open("gen:s35932", scale=scale)
    t0 = time.perf_counter()
    session.analyze(MODE.value)
    first_analyze_seconds = time.perf_counter() - t0
    exposures = session.exposures(MODE.value)

    edits = []
    for exposure in exposures:
        if len(edits) >= N_EDITS:
            break
        couplings = session.design.loads[exposure.net].couplings
        if not couplings:
            continue
        if len(edits) % 2 == 0:
            edits.append(
                {
                    "action": "drop_coupling",
                    "net": exposure.net,
                    "neighbour": max(couplings, key=couplings.get),
                }
            )
        else:
            edits.append(
                {"action": "respace", "nets": [exposure.net], "guard_tracks": 1}
            )
    assert len(edits) == N_EDITS

    rows = []
    for edit in edits:
        t0 = time.perf_counter()
        payload = session.whatif(edit, mode=MODE.value)
        warm_seconds = time.perf_counter() - t0

        edited, _ = apply_edit(session.design, edit)
        t0 = time.perf_counter()
        cold = CrosstalkSTA(edited, session.config).run(MODE)
        cold_seconds = time.perf_counter() - t0

        rows.append(
            {
                "edit": {"action": edit["action"]},
                "warm_seconds": warm_seconds,
                "cold_seconds": cold_seconds,
                "ratio": warm_seconds / cold_seconds,
                "dirty_arcs": payload["after"]["dirty_arcs"],
                "reused_arcs": payload["after"]["reused_arcs"],
                "bit_identical": payload["after"]["longest_delay_hex"]
                == float(cold.longest_delay).hex(),
            }
        )

    median_ratio = statistics.median(r["ratio"] for r in rows)
    lines = [
        f"Warm what-if vs cold analyze (s35932-like at scale {scale}, {MODE.value})",
        "",
        f"first analyze (cold session): {first_analyze_seconds:.2f} s",
        "",
        f"{'edit':<14} {'warm s':>8} {'cold s':>8} {'ratio':>7} "
        f"{'dirty':>6} {'reused':>7} {'bit-id':>7}",
        "-" * 64,
    ]
    for row in rows:
        lines.append(
            f"{row['edit']['action']:<14} {row['warm_seconds']:>8.3f} "
            f"{row['cold_seconds']:>8.3f} {row['ratio']:>7.2f} "
            f"{row['dirty_arcs']:>6d} {row['reused_arcs']:>7d} "
            f"{'yes' if row['bit_identical'] else 'NO':>7}"
        )
    lines.append("-" * 64)
    lines.append(f"median warm/cold ratio: {median_ratio:.2f}")
    record_result("service_whatif", "\n".join(lines))

    return {
        "first_analyze_seconds": first_analyze_seconds,
        "rows": rows,
        "median_ratio": median_ratio,
    }


def _coupled_edits(session, count):
    edits = []
    for exposure in session.exposures(MODE.value):
        if len(edits) >= count:
            break
        couplings = session.design.loads[exposure.net].couplings
        if not couplings:
            continue
        edits.append(
            {
                "action": "drop_coupling",
                "net": exposure.net,
                "neighbour": max(couplings, key=couplings.get),
            }
        )
    return edits


@pytest.fixture(scope="module")
def whatif_screened(scale, record_result):
    """Warm/cold what-if ratios with the screened solver tier.

    A screened session keeps its response-surface bank warm across
    what-ifs (on top of the arc memo), so the warm/cold gap should be at
    least as large as under the exact tier.  Screened answers depend on
    the bank's accumulated points, so warm and cold screened runs are
    *not* bit-identical -- the pinned contract is conservatism against a
    cold exact analysis of the same edited design, within tolerance."""
    config = StaConfig(
        mode=MODE,
        solver_tier=SolverTier.SCREENED,
        screen_tolerance=SCREEN_TOLERANCE,
    )
    manager = SessionManager(config=config)
    session = manager.open("gen:s35932", scale=scale)
    t0 = time.perf_counter()
    first = result_summary(session.analyze(MODE.value))
    first_analyze_seconds = time.perf_counter() - t0
    assert first["solver_tier"] == "screened"
    tiers_before = first["tier_counts"]

    edits = _coupled_edits(session, N_SCREENED_EDITS)
    assert len(edits) == N_SCREENED_EDITS

    rows = []
    for edit in edits:
        t0 = time.perf_counter()
        payload = session.whatif(edit, mode=MODE.value)
        warm_seconds = time.perf_counter() - t0
        after = payload["after"]
        tiers_after = after["tier_counts"]
        tier_delta = {
            tier: tiers_after[tier] - tiers_before[tier] for tier in tiers_after
        }
        tiers_before = tiers_after

        edited, _ = apply_edit(session.design, edit)
        t0 = time.perf_counter()
        cold_screened = CrosstalkSTA(edited, config).run(MODE)
        cold_screened_seconds = time.perf_counter() - t0
        cold_exact = CrosstalkSTA(edited, StaConfig(mode=MODE)).run(MODE)

        rows.append(
            {
                "edit": {"action": edit["action"]},
                "warm_seconds": warm_seconds,
                "cold_seconds": cold_screened_seconds,
                "ratio": warm_seconds / cold_screened_seconds,
                "tier_delta": tier_delta,
                "escalations": dict(after["escalations"]),
                "delta_vs_exact": after["longest_delay"]
                - cold_exact.longest_delay,
            }
        )

    median_ratio = statistics.median(r["ratio"] for r in rows)
    lines = [
        f"Warm what-if vs cold analyze, screened tier "
        f"(s35932-like at scale {scale}, {MODE.value}, "
        f"tolerance {SCREEN_TOLERANCE * 1e12:.0f} ps)",
        "",
        f"first analyze (cold session): {first_analyze_seconds:.2f} s",
        "",
        f"{'edit':<14} {'warm s':>8} {'cold s':>8} {'ratio':>7} "
        f"{'newton+':>8} {'surface+':>9} {'d vs exact':>11}",
        "-" * 70,
    ]
    for row in rows:
        lines.append(
            f"{row['edit']['action']:<14} {row['warm_seconds']:>8.3f} "
            f"{row['cold_seconds']:>8.3f} {row['ratio']:>7.2f} "
            f"{row['tier_delta']['newton']:>8d} "
            f"{row['tier_delta']['surface']:>9d} "
            f"{row['delta_vs_exact'] * 1e12:>9.2f}ps"
        )
    lines.append("-" * 70)
    lines.append(f"median warm/cold ratio: {median_ratio:.2f}")
    record_result("service_whatif_screened", "\n".join(lines))

    return {
        "tolerance": SCREEN_TOLERANCE,
        "first_analyze_seconds": first_analyze_seconds,
        "rows": rows,
        "median_ratio": median_ratio,
    }


REPAIR_MAX_EDITS = 4
REPAIR_BEAM = 3


@pytest.fixture(scope="module")
def repair_run(scale, record_result):
    """Autonomous repair economics on a warm session.

    A clock just below the design's minimum period leaves a small
    negative worst slack; the optimizer closes it (or exhausts its
    budget) through warm what-if evaluations, with exactly one cold
    analysis -- the final bit-identity verify."""
    manager = SessionManager(config=StaConfig(mode=MODE))
    probe = manager.open("gen:s35932", scale=scale)
    clock_period = 0.99 * minimum_period(probe.analyze(MODE.value))
    manager.close(probe.session_id)

    session = manager.open(
        "gen:s35932", scale=scale, config={"clock_period": clock_period}
    )
    session.analyze(MODE.value)
    t0 = time.perf_counter()
    transcript = session.repair(
        mode=MODE.value,
        max_edits=REPAIR_MAX_EDITS,
        beam=REPAIR_BEAM,
        cold_verify=True,
    )
    repair_seconds = time.perf_counter() - t0
    validate_repair(transcript)

    committed = [
        {
            "action": entry["committed"]["action"],
            "nets": edit_nets(entry["committed"]),
            "improvement_ps": (
                entry["worst_slack_after"] - entry["worst_slack_before"]
            )
            * 1e12,
        }
        for entry in transcript["rounds"]
        if entry["committed"] is not None
    ]
    section = {
        "clock_period": clock_period,
        "baseline_worst_slack": transcript["baseline"]["worst_slack"],
        "final_worst_slack": transcript["final"]["worst_slack"],
        "met": transcript["final"]["met"],
        "stop_reason": transcript["stop_reason"],
        "seconds": repair_seconds,
        "edits_committed": transcript["edits_committed"],
        "evaluations": transcript["evaluations"],
        "cold_analyses": transcript["cold_analyses"],
        "warm": transcript["warm"],
        "cold_verify_identical": transcript["cold_verify"]["identical"],
        "committed": committed,
    }

    lines = [
        f"Autonomous repair (s35932-like at scale {scale}, {MODE.value}, "
        f"clock {clock_period * 1e9:.3f} ns = 0.99 x minimum period)",
        "",
        f"worst slack {section['baseline_worst_slack'] * 1e12:+.1f} -> "
        f"{section['final_worst_slack'] * 1e12:+.1f} ps "
        f"({'met' if section['met'] else section['stop_reason']}) "
        f"in {repair_seconds:.1f} s",
        f"{section['edits_committed']} edits committed, "
        f"{section['evaluations']} warm evaluations, "
        f"{section['cold_analyses']} cold analyses "
        f"(warm reuse {section['warm']['reuse_ratio']:.1%}), "
        f"cold verify {'bit-identical' if section['cold_verify_identical'] else 'MISMATCH'}",
        "",
        f"{'action':<14} {'nets':<24} {'gain ps':>8}",
        "-" * 48,
    ]
    for row in committed:
        lines.append(
            f"{row['action']:<14} {','.join(row['nets']):<24} "
            f"{row['improvement_ps']:>8.2f}"
        )
    record_result("service_repair", "\n".join(lines))
    return section


def _start_server(service):
    server = TimingServer(service, host="127.0.0.1", port=0)
    ready = threading.Event()

    def run():
        async def main():
            await server.start()
            ready.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(15)
    return server, thread


@pytest.fixture(scope="module")
def concurrency_sweep(record_result):
    service = TimingService(
        config=StaConfig(mode=MODE), workers=4, queue_limit=8
    )
    server, thread = _start_server(service)
    with ServiceClient(server.address) as setup:
        sid = setup.open_session("s27")["session"]
        setup.analyze(sid)  # warm the shared session
        report = setup.net_report(sid, top=3)
        nets = [entry["net"] for entry in report["nets"]]

    sweeps = []
    for n_clients in CLIENT_COUNTS:
        latencies: list[float] = []
        busy_retries = [0]
        dropped_without_retry_after = [0]
        failures: list[str] = []
        lock = threading.Lock()

        def worker(index: int) -> None:
            try:
                with ServiceClient(server.address) as client:
                    for i in range(REQUESTS_PER_CLIENT):
                        net = nets[(index + i) % len(nets)]
                        t0 = time.perf_counter()
                        while True:
                            try:
                                client.query_net(sid, net)
                                break
                            except ServiceCallError as exc:
                                if exc.code != 429:
                                    raise
                                if exc.retry_after is None:
                                    with lock:
                                        dropped_without_retry_after[0] += 1
                                    return
                                with lock:
                                    busy_retries[0] += 1
                                time.sleep(exc.retry_after)
                        with lock:
                            latencies.append(time.perf_counter() - t0)
            except Exception as exc:  # pragma: no cover - diagnostic only
                with lock:
                    failures.append(f"{type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_clients)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        elapsed = time.perf_counter() - t0

        completed = len(latencies)
        latencies.sort()
        sweeps.append(
            {
                "clients": n_clients,
                "requests": n_clients * REQUESTS_PER_CLIENT,
                "completed": completed,
                "seconds": elapsed,
                "requests_per_second": completed / elapsed if elapsed else 0.0,
                "p50_seconds": latencies[completed // 2] if completed else None,
                "p95_seconds": latencies[int(completed * 0.95)] if completed else None,
                "busy_retries": busy_retries[0],
                "dropped_without_retry_after": dropped_without_retry_after[0],
                "failures": failures,
            }
        )

    with ServiceClient(server.address) as closer:
        closer.call_with_retry("shutdown")
    thread.join(30)

    lines = [
        "Concurrency sweep (s27 session, query_net, 4 workers + queue 8)",
        "",
        f"{'clients':>8} {'reqs':>6} {'done':>6} {'req/s':>8} "
        f"{'p50 ms':>8} {'p95 ms':>8} {'429s':>6} {'dropped':>8}",
        "-" * 66,
    ]
    for sweep in sweeps:
        lines.append(
            f"{sweep['clients']:>8d} {sweep['requests']:>6d} {sweep['completed']:>6d} "
            f"{sweep['requests_per_second']:>8.1f} "
            f"{(sweep['p50_seconds'] or 0) * 1e3:>8.1f} "
            f"{(sweep['p95_seconds'] or 0) * 1e3:>8.1f} "
            f"{sweep['busy_retries']:>6d} {sweep['dropped_without_retry_after']:>8d}"
        )
    record_result("service_concurrency", "\n".join(lines))
    return sweeps


def _fleet_call(client, method, params, outcome, max_attempts=60):
    """One fleet request, waiting out 429s and transparently reconnecting
    across shard failover; outcome counters record how bumpy it was."""
    failure = None
    for attempt in range(max_attempts):
        try:
            return client.call(method, params)
        except ServiceCallError as exc:
            if exc.code != 429:
                raise
            failure = exc
            outcome["busy_retries"] += 1
            time.sleep(backoff_delay(attempt, floor=exc.retry_after or 0.0, cap=1.0))
        except ServiceTransportError as exc:
            if not client._reconnect():
                raise
            failure = exc
            outcome["reroutes"] += 1
            time.sleep(backoff_delay(attempt, cap=1.0))
    raise failure


@pytest.fixture(scope="module")
def fleet_swarm(record_result):
    """16-client swarm vs a 4-shard fleet with one induced shard death.

    Every client opens its own session (distinct scales spread them
    around the placement ring), pins a baseline ``longest_delay_hex``,
    then streams queries while the main thread SIGKILLs the busiest
    shard.  The supervised fleet must absorb it: zero dropped or errored
    requests (429 retries and reconnect re-routes allowed) and every
    post-failover answer bit-identical to the pre-kill baseline."""
    log_dir = Path(tempfile.mkdtemp(prefix="repro-fleet-bench-"))
    options = FleetOptions(
        shards=FLEET_SHARDS,
        workers=2,
        queue_limit=8,
        max_sessions=2 * FLEET_CLIENTS,
    )
    runtime = FleetRuntime(
        options,
        access_log=str(log_dir / "router.log"),
        supervise=True,
        probe_interval=0.25,
        probe_timeout=1.0,
    )
    runtime.start()
    # Workers pause at kill_gate halfway through their streams; the main
    # thread kills a shard there and releases them via killed -- so the
    # death deterministically lands mid-stream for every client.
    kill_gate = threading.Barrier(FLEET_CLIENTS + 1)
    killed = threading.Event()
    latencies: list[float] = []
    outcomes = [
        {"busy_retries": 0, "reroutes": 0, "mismatches": 0}
        for _ in range(FLEET_CLIENTS)
    ]
    completed = [0]
    failures: list[str] = []
    lock = threading.Lock()

    def worker(rank: int) -> None:
        outcome = outcomes[rank]
        try:
            with ServiceClient(runtime.address) as client:
                opened = _fleet_call(
                    client,
                    "open_session",
                    {
                        "netlist": "s27",
                        "scale": 0.05 + rank * 0.01,
                        "config": {"mode": MODE.value},
                    },
                    outcome,
                )
                sid = opened["session"]
                baseline = _fleet_call(
                    client, "analyze", {"session": sid}, outcome
                )["longest_delay_hex"]
                for i in range(FLEET_REQUESTS_PER_CLIENT):
                    if i == FLEET_REQUESTS_PER_CLIENT // 2:
                        kill_gate.wait(timeout=120)
                        killed.wait(timeout=120)
                    t0 = time.perf_counter()
                    summary = _fleet_call(
                        client, "analyze", {"session": sid}, outcome
                    )
                    elapsed = time.perf_counter() - t0
                    with lock:
                        latencies.append(elapsed)
                        completed[0] += 1
                    if summary["longest_delay_hex"] != baseline:
                        outcome["mismatches"] += 1
        except Exception as exc:
            with lock:
                failures.append(f"client {rank}: {type(exc).__name__}: {exc}")
            kill_gate.abort()

    threads = [
        threading.Thread(target=worker, args=(rank,))
        for rank in range(FLEET_CLIENTS)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()

    # Mid-stream chaos: SIGKILL the shard carrying the most sessions.
    victim = -1
    try:
        kill_gate.wait(timeout=120)
        with ServiceClient(runtime.address) as observer:
            rows = observer.stats()["shards"]
            victim = max(
                (row for row in rows if row["alive"]),
                key=lambda row: row.get("sessions") or 0,
            )["shard"]
        runtime.fleet.kill(victim)
    except threading.BrokenBarrierError:
        pass  # a worker already failed; its error is in `failures`
    finally:
        killed.set()

    for t in threads:
        t.join(180)
    elapsed = time.perf_counter() - t0

    with ServiceClient(runtime.address) as observer:
        stats = observer.stats()
    events: dict[str, int] = {}
    log_path = log_dir / "router.log"
    if log_path.exists():
        for line in log_path.read_text().splitlines():
            entry = json.loads(line)
            if "event" in entry:
                events[entry["event"]] = events.get(entry["event"], 0) + 1
    runtime.stop()

    per_shard = [
        {
            "shard": row["shard"],
            "alive": row["alive"],
            "restarts": row["restarts"],
            "sessions": row.get("sessions"),
            "in_flight": row.get("in_flight"),
            "queue_depth": row.get("queue_depth"),
        }
        for row in stats["shards"]
    ]
    latencies.sort()
    n = len(latencies)
    section = {
        "shards": FLEET_SHARDS,
        "clients": FLEET_CLIENTS,
        "requests": FLEET_CLIENTS * FLEET_REQUESTS_PER_CLIENT,
        "completed": completed[0],
        "seconds": elapsed,
        "p50_seconds": latencies[n // 2] if n else None,
        "p95_seconds": latencies[int(n * 0.95)] if n else None,
        "killed_shard": victim,
        "busy_retries": sum(o["busy_retries"] for o in outcomes),
        "reroutes": sum(o["reroutes"] for o in outcomes),
        "mismatches": sum(o["mismatches"] for o in outcomes),
        "failures": failures,
        "events": events,
        "per_shard": per_shard,
        "fleet": stats["fleet"],
    }

    lines = [
        f"Fleet swarm ({FLEET_CLIENTS} clients x {FLEET_REQUESTS_PER_CLIENT} "
        f"analyzes, {FLEET_SHARDS} shards, shard {victim} SIGKILLed mid-stream)",
        "",
        f"completed {section['completed']}/{section['requests']} in "
        f"{elapsed:.1f}s  (p50 {1e3 * (section['p50_seconds'] or 0):.1f} ms, "
        f"p95 {1e3 * (section['p95_seconds'] or 0):.1f} ms)",
        f"429 retries: {section['busy_retries']}  reroutes: "
        f"{section['reroutes']}  mismatches: {section['mismatches']}  "
        f"failures: {len(failures)}",
        f"fleet: deaths={section['fleet']['shard_deaths']} "
        f"failovers={section['fleet']['failovers']} "
        f"handoff_retries={section['fleet']['handoff_retries']}",
        "",
        f"{'shard':>6} {'alive':>6} {'restarts':>9} {'sessions':>9} "
        f"{'in_flight':>10}",
        "-" * 46,
    ]
    for row in per_shard:
        lines.append(
            f"{row['shard']:>6d} {'yes' if row['alive'] else 'NO':>6} "
            f"{row['restarts']:>9d} {row['sessions'] if row['sessions'] is not None else '-':>9} "
            f"{row['in_flight'] if row['in_flight'] is not None else '-':>10}"
        )
    record_result("service_fleet", "\n".join(lines))
    return section


@pytest.fixture(scope="module")
def persisted(
    whatif_comparison,
    whatif_screened,
    repair_run,
    concurrency_sweep,
    fleet_swarm,
    scale,
):
    payload = {
        "benchmark": "service",
        "circuit": "s35932_like",
        "scale": scale,
        "mode": MODE.value,
        "python": platform.python_version(),
        "whatif": whatif_comparison,
        "whatif_screened": whatif_screened,
        "repair": repair_run,
        "concurrency": concurrency_sweep,
        "fleet": fleet_swarm,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_warm_whatif_beats_cold_analyze(persisted, benchmark):
    """The headline claim: a warm what-if costs at most 35% of a cold
    analysis of the same edited design."""
    ratio = persisted["whatif"]["median_ratio"]
    assert ratio <= 0.35, f"median warm/cold ratio {ratio:.2f} exceeds 0.35"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_warm_whatif_is_bit_identical(persisted, benchmark):
    for row in persisted["whatif"]["rows"]:
        assert row["bit_identical"], row
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_screened_warm_whatif_beats_cold(persisted, benchmark):
    """A warm screened what-if reuses both the arc memo and the
    response-surface bank: its median cost stays below a cold screened
    analysis of the same edited design."""
    section = persisted["whatif_screened"]
    assert section["median_ratio"] <= 0.60, (
        f"median screened warm/cold ratio {section['median_ratio']:.2f}"
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_screened_whatif_conservative_vs_exact(persisted, benchmark):
    """Every screened what-if answer dominates the cold exact analysis
    of the edited design, within the configured tolerance."""
    section = persisted["whatif_screened"]
    for row in section["rows"]:
        assert row["delta_vs_exact"] >= -1e-15, row
        assert row["delta_vs_exact"] <= section["tolerance"] + 1e-15, row
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_repair_improves_monotonically(persisted, benchmark):
    """The optimizer never worsens worst slack, and every committed
    edit bought a strict improvement."""
    section = persisted["repair"]
    assert section["final_worst_slack"] >= section["baseline_worst_slack"]
    for row in section["committed"]:
        assert row["improvement_ps"] > 0.0, row
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_repair_warm_economics(persisted, benchmark):
    """Every candidate was evaluated warm: the only cold analysis in a
    whole repair run is the final bit-identity verify."""
    section = persisted["repair"]
    assert section["cold_analyses"] == 1
    assert section["evaluations"] > section["edits_committed"]
    assert section["warm"]["reuse_ratio"] > 0.5
    assert section["cold_verify_identical"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_overload_never_drops_silently(persisted, benchmark):
    for sweep in persisted["concurrency"]:
        assert sweep["failures"] == []
        assert sweep["dropped_without_retry_after"] == 0
        assert sweep["completed"] == sweep["requests"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fleet_swarm_survives_shard_death(persisted, benchmark):
    """The PR 8 robustness claim: one shard SIGKILLed under a 16-client
    swarm costs zero dropped or errored requests, and every failed-over
    session keeps answering bit-identically."""
    fleet = persisted["fleet"]
    assert fleet["failures"] == [], fleet["failures"]
    assert fleet["completed"] == fleet["requests"]
    assert fleet["mismatches"] == 0
    # The kill was real and the fleet noticed it.
    assert fleet["fleet"]["shard_deaths"] >= 1 or fleet["events"].get(
        "shard_down", 0
    ) >= 1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_fleet_rows_recorded(persisted, benchmark):
    """BENCH_service.json carries one row per shard plus the fleet
    aggregate, so regressions in failover accounting are pinned."""
    fleet = persisted["fleet"]
    assert len(fleet["per_shard"]) == FLEET_SHARDS
    assert {row["shard"] for row in fleet["per_shard"]} == set(range(FLEET_SHARDS))
    for key in ("shards", "alive", "sessions", "failovers", "shard_deaths"):
        assert key in fleet["fleet"], key
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
