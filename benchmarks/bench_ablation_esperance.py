"""Paper Section 5.2 speed-up: Esperance (Benkoski et al. [11]).

"This algorithm can be sped up by using a method called Esperance ...  In
this case only those wires that belong to long paths are recalculated."

We run the iterative analysis with and without the long-path-only
recalculation on the same design and compare waveform-evaluation counts,
wall-clock and the resulting bound.
"""

import time

import pytest

from repro.circuit import s35932_like
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode, StaConfig
from repro.flow import prepare_design


@pytest.fixture(scope="module")
def esperance_runs(scale, record_result):
    design = prepare_design(s35932_like(scale=scale))

    runs = {}
    for label, esperance in (("exact", False), ("esperance", True)):
        config = StaConfig(mode=AnalysisMode.ITERATIVE, esperance=esperance)
        t0 = time.time()
        result = CrosstalkSTA(design, config).run()
        runs[label] = {
            "delay": result.longest_delay,
            "evals": result.waveform_evaluations,
            "seconds": time.time() - t0,
            "passes": result.passes,
            "recalc": [r.recalculated_cells for r in result.history],
        }

    lines = [
        f"Iterative refinement with and without Esperance (scale {scale})",
        "",
        f"{'variant':<11} {'delay [ns]':>11} {'evals':>9} {'CPU [s]':>9} {'passes':>7}  recalc/pass",
        "-" * 75,
    ]
    for label, data in runs.items():
        lines.append(
            f"{label:<11} {data['delay']*1e9:>11.3f} {data['evals']:>9d} "
            f"{data['seconds']:>9.2f} {data['passes']:>7d}  {data['recalc']}"
        )
    record_result("ablation_esperance", "\n".join(lines))
    return runs


def test_esperance_reduces_work(esperance_runs, benchmark):
    exact = esperance_runs["exact"]
    esp = esperance_runs["esperance"]
    # From pass 2 on, only long-path cells are recomputed.
    assert any(r < exact["recalc"][0] for r in esp["recalc"][1:])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_esperance_keeps_a_valid_bound(esperance_runs, benchmark):
    """Esperance may converge slightly looser but never below the exact
    iterative bound (both remain upper bounds; exact is the tightest)."""
    exact = esperance_runs["exact"]["delay"]
    esp = esperance_runs["esperance"]["delay"]
    assert esp >= exact - 1e-12
    assert esp <= exact * 1.05
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
