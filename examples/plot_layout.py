#!/usr/bin/env python3
"""Render a routed design as SVG with the critical path highlighted.

Usage::

    python examples/plot_layout.py [output.svg]
"""

import sys

from repro import AnalysisMode, CrosstalkSTA, prepare_design, s27
from repro.layout.svgplot import save_layout_svg


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "s27_layout.svg"
    circuit = s27()
    design = prepare_design(circuit)

    sta = CrosstalkSTA(design)
    result = sta.run(AnalysisMode.ITERATIVE)
    path = sta.critical_path(result)
    critical_nets = set(path.net_sequence())

    save_layout_svg(
        output,
        design.placement,
        design.routing,
        highlight_nets=critical_nets,
        title=f"{circuit.name}: critical path {result.longest_delay*1e9:.3f} ns",
    )
    print(f"wrote {output}")
    print(f"  die {design.placement.die_width:.0f} x {design.placement.die_height:.0f} um")
    print(f"  highlighted critical path: {' -> '.join(path.net_sequence())}")


if __name__ == "__main__":
    main()
