#!/usr/bin/env python3
"""Figure 1 of the paper, recreated in the transient simulator.

Two inverter-driven wires run in parallel with a coupling capacitance
between them.  When the aggressor switches opposite to the victim, the
victim waveform collapses mid-transition and the downstream delay grows.
The script simulates both situations, prints the delays, compares the
static models, and renders ASCII waveforms.

Usage::

    python examples/coupling_demo.py
"""

import numpy as np

from repro.circuit import default_library
from repro.devices import default_process, nmos, pmos
from repro.spice import PwlSource, SimCircuit, TransientSimulator, delay_between
from repro.waveform import CouplingLoad, GateDelayCalculator, RISING, FALLING

PROCESS = default_process()
VDD = PROCESS.vdd

C_GROUND = 40e-15
C_COUPLE = 25e-15


def build(aggressor_switches: bool) -> tuple[SimCircuit, dict]:
    """Victim inverter drives a rising output; the aggressor inverter
    drives the neighbouring wire falling (or stays quiet)."""
    circuit = SimCircuit("fig1")
    circuit.add_vdc("vdd", VDD)

    # Victim: input falls at 200 ps -> output rises.
    circuit.add_source(PwlSource("vin", "0", [(200e-12, VDD), (300e-12, 0.0)]))
    circuit.add_mosfet("vp", "victim", "vin", "vdd", pmos(4e-6))
    circuit.add_mosfet("vn", "victim", "vin", "0", nmos(2e-6))
    circuit.add_capacitor("victim", "0", C_GROUND)

    # Aggressor: input rises mid-victim-transition -> wire falls hard.
    if aggressor_switches:
        points = [(320e-12, 0.0), (330e-12, VDD)]
    else:
        points = [(0.0, 0.0)]
    circuit.add_source(PwlSource("ain", "0", points))
    circuit.add_mosfet("ap", "aggr", "ain", "vdd", pmos(8e-6))
    circuit.add_mosfet("an", "aggr", "ain", "0", nmos(4e-6))
    circuit.add_capacitor("aggr", "0", C_GROUND)

    # The coupling capacitance of Fig. 1.
    circuit.add_capacitor("victim", "aggr", C_COUPLE)

    init = {"vin": VDD, "victim": 0.0, "ain": 0.0, "aggr": VDD, "vdd": VDD}
    return circuit, init


def ascii_plot(times, traces: dict, width: int = 72, height: int = 12) -> str:
    """Plot named traces against time with one character per trace."""
    t0, t1 = times[0], times[-1]
    grid = [[" "] * width for _ in range(height)]
    for (name, values), mark in zip(traces.items(), "*o+x"):
        for t, v in zip(times, values):
            col = int((t - t0) / (t1 - t0) * (width - 1))
            row = height - 1 - int(max(0.0, min(1.0, v / VDD)) * (height - 1))
            grid[row][col] = mark
    legend = "   ".join(f"{mark}={name}" for (name, _), mark in zip(traces.items(), "*o+x"))
    return "\n".join("".join(row) for row in grid) + f"\n{legend}"


def main() -> None:
    print(f"Two coupled wires: C_gnd={C_GROUND*1e15:.0f} fF, C_c={C_COUPLE*1e15:.0f} fF\n")

    delays = {}
    for label, switches in (("aggressor quiet", False), ("aggressor switching", True)):
        circuit, init = build(switches)
        sim = TransientSimulator(circuit)
        result = sim.run(t_stop=1.5e-9, dt=1e-12, initial_voltages=init)
        measured = delay_between(result, "vin", FALLING, "victim", RISING, VDD / 2)
        delays[label] = measured.delay
        print(f"{label:>22}: victim 50% delay = {measured.delay*1e12:7.1f} ps")
        if switches:
            sample = slice(None, None, max(1, len(result.times) // 400))
            print(ascii_plot(
                result.times[sample],
                {
                    "victim": result.trace("victim")[sample],
                    "aggressor": result.trace("aggr")[sample],
                },
            ))
            print()

    penalty = delays["aggressor switching"] - delays["aggressor quiet"]
    print(f"\nSimulated crosstalk delay penalty: {penalty*1e12:.1f} ps")

    # The same situation through the paper's models (Section 2).
    print("\nModel comparison (single inverter arc, input ramp 100 ps):")
    calc = GateDelayCalculator()
    inv = default_library()["INV_X1"]
    rows = [
        ("grounded 1x (best case)", CouplingLoad(C_GROUND + C_COUPLE)),
        ("grounded 2x (static doubled)", CouplingLoad(C_GROUND + 2 * C_COUPLE)),
        ("active coupling model", CouplingLoad(C_GROUND, c_couple_active=C_COUPLE)),
    ]
    base = None
    for label, load in rows:
        arc = calc.compute_arc_relative(inv, "A", FALLING, 100e-12, load)
        if base is None:
            base = arc.t_cross
        print(f"  {label:<30} t50 = {arc.t_cross*1e12:7.1f} ps   (+{(arc.t_cross-base)*1e12:5.1f} ps)")
    print(
        "\nThe active model exceeds the doubled-capacitance approximation:"
        "\npassive modeling underestimates the worst case (paper, Section 2)."
    )


if __name__ == "__main__":
    main()
