#!/usr/bin/env python3
"""Build a custom synchronous circuit with the netlist API and analyze it.

Constructs a small pipelined datapath-like block by hand (no .bench file),
runs the crosstalk-aware STA, inspects per-endpoint arrivals and validates
the critical path against the transistor-level simulator.

Usage::

    python examples/custom_circuit.py
"""

from repro import AnalysisMode, Circuit, CrosstalkSTA, format_table, prepare_design
from repro.validate import align_aggressors, build_path_circuit, quiet_simulation


def build_pipeline() -> Circuit:
    """Two register stages around a cone of random-ish logic."""
    circuit = Circuit("pipeline")
    circuit.add_clock("CLK")
    for name in ("a", "b", "c", "d"):
        circuit.add_input(name)

    # Input registers.
    for i, src in enumerate(("a", "b", "c", "d")):
        circuit.add_cell("DFF_X1", f"ri{i}", {"D": src, "CLK": "CLK", "Q": f"r{i}"})

    # Logic cone: a 4-input AND-OR structure built from NAND/NOR/INV.
    circuit.add_cell("NAND2_X1", "g0", {"A": "r0", "B": "r1", "Y": "n0"})
    circuit.add_cell("NAND2_X1", "g1", {"A": "r2", "B": "r3", "Y": "n1"})
    circuit.add_cell("NAND2_X2", "g2", {"A": "n0", "B": "n1", "Y": "n2"})
    circuit.add_cell("INV_X1", "g3", {"A": "n2", "Y": "n3"})
    circuit.add_cell("NOR2_X1", "g4", {"A": "n3", "B": "r0", "Y": "n4"})
    circuit.add_cell("AOI21_X1", "g5", {"A": "n4", "B": "r1", "C": "n0", "Y": "n5"})
    circuit.add_cell("OAI21_X1", "g6", {"A": "n5", "B": "r2", "C": "n2", "Y": "n6"})
    circuit.add_cell("INV_X2", "g7", {"A": "n6", "Y": "n7"})

    # Output register and port.
    circuit.add_cell("DFF_X1", "ro", {"D": "n7", "CLK": "CLK", "Q": "q"})
    circuit.add_output("out", net_name="q")
    return circuit


def main() -> None:
    circuit = build_pipeline()
    print(f"Built {circuit.stats()}")

    design = prepare_design(circuit)
    sta = CrosstalkSTA(design)
    results = sta.run_all_modes()
    print()
    print(format_table("pipeline", results, cell_count=circuit.cell_count()))

    # Per-endpoint arrivals of the iterative analysis.
    iterative = results[AnalysisMode.ITERATIVE]
    print("\nEndpoint arrivals (iterative bound):")
    for (endpoint, direction), t in sorted(iterative.arrival_map().items()):
        print(f"  {endpoint:<12} {direction:<5} {t * 1e12:8.1f} ps")

    # Validate the longest path with the transistor-level simulator.
    path = sta.critical_path(iterative)
    print(f"\nLongest path: {' -> '.join(path.net_sequence())}")
    sim_circuit = build_path_circuit(design, path, iterative.final_pass.state)
    quiet = quiet_simulation(sim_circuit, steps=1600)
    aligned = align_aggressors(
        sim_circuit, steps=1600,
        quiet_times=iterative.final_pass.state.quiet_snapshot(),
    )
    bound = iterative.longest_delay
    print(f"  simulated quiet:     {quiet.path_delay * 1e12:8.1f} ps")
    print(f"  simulated w/ windows:{aligned.path_delay * 1e12:8.1f} ps")
    print(f"  iterative STA bound: {bound * 1e12:8.1f} ps")
    assert aligned.path_delay <= bound, "bound violated!"
    print("  bound holds: simulation never exceeds the STA estimate.")


if __name__ == "__main__":
    main()
