#!/usr/bin/env python3
"""Quickstart: crosstalk-aware STA on the ISCAS89 s27 benchmark.

Runs the complete flow -- technology mapping, placement, routing,
parasitic extraction -- and then all five of the paper's analysis modes,
printing the paper-style result table.

Usage::

    python examples/quickstart.py
"""

from repro import (
    AnalysisMode,
    CrosstalkSTA,
    check_mode_ordering,
    format_table,
    prepare_design,
    s27,
)


def main() -> None:
    # 1. A gate-level netlist.  s27 ships with the library; any ISCAS89
    #    .bench file works via repro.load_bench + repro.map_to_circuit.
    circuit = s27()
    print(f"Loaded {circuit.stats()}")

    # 2. Physical design: place, route (2-layer 0.5 um), extract R, C and
    #    the coupling capacitances between adjacent wires.
    design = prepare_design(circuit)
    pairs = design.extraction.coupling_pairs()
    print(
        f"Routed {len(design.routing.routes)} nets; "
        f"{len(pairs)} coupling pairs, "
        f"{design.extraction.total_coupling_cap() * 1e15:.1f} fF total coupling"
    )

    # 3. Static timing analysis in all five modes of the paper.
    sta = CrosstalkSTA(design)
    results = sta.run_all_modes()
    print()
    print(format_table("s27", results, cell_count=circuit.cell_count()))

    # 4. The guaranteed ordering of the bounds.
    violations = check_mode_ordering(results)
    assert not violations, violations
    print("\nBound ordering verified: best <= iterative <= one-step <= worst.")

    # 5. The longest path, stage by stage.
    path = sta.critical_path(results[AnalysisMode.ITERATIVE])
    print(f"\nCritical path ({len(path)} stages, {path.delay * 1e9:.3f} ns):")
    for step in path.steps:
        flag = "  [coupled]" if step.coupled else ""
        print(
            f"  {step.cell:>14} ({step.ctype:<9}) {step.in_net} "
            f"-> {step.out_net} [{step.out_direction}]{flag}"
        )


if __name__ == "__main__":
    main()
