#!/usr/bin/env python3
"""Multi-corner signoff: setup at the slow corner, hold at the fast one.

Runs the crosstalk-aware max analysis on slow/typical/fast process
corners and the min analysis on the fast corner, the classic corner
methodology, all with coupling taken into account.

Usage::

    python examples/multicorner.py
"""

from repro import AnalysisMode, CrosstalkSTA, prepare_design, s27
from repro.core.constraints import check_hold, minimum_period
from repro.core.minpath import MinAnalysisMode, MinPropagator
from repro.devices.corners import standard_corners


def main() -> None:
    circuit = s27()
    corners = standard_corners()
    print("Corners:")
    for corner in corners.values():
        print(f"  {corner}")

    print("\nSetup side (iterative crosstalk-aware max analysis):")
    results = {}
    for name, corner in corners.items():
        design = prepare_design(circuit, process=corner.process)
        results[name] = CrosstalkSTA(design).run(AnalysisMode.ITERATIVE)
        print(
            f"  {name:<8} longest path {results[name].longest_delay * 1e9:6.3f} ns, "
            f"min clock {minimum_period(results[name]) * 1e9:6.3f} ns"
        )
    assert (
        results["fast"].longest_delay
        < results["typical"].longest_delay
        < results["slow"].longest_delay
    )

    print("\nHold side (min analysis at the fast corner):")
    fast_design = prepare_design(circuit, process=corners["fast"].process)
    min_result = MinPropagator(fast_design).run(MinAnalysisMode.ITERATIVE)
    print(f"  earliest arrival {min_result.shortest_delay * 1e12:.1f} ps")
    report = check_hold(min_result, hold_time=40e-12)
    verdict = "MET" if report.met else f"VIOLATED ({len(report.failing())})"
    print(f"  hold 40 ps: {verdict} (worst slack {report.worst.slack * 1e12:+.1f} ps)")

    print("\nSignoff summary:")
    print(f"  clock period >= {minimum_period(results['slow']) * 1e9:.3f} ns (slow corner)")
    print(f"  hold margin  =  {report.worst.slack * 1e12:+.1f} ps (fast corner)")


if __name__ == "__main__":
    main()
