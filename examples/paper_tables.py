#!/usr/bin/env python3
"""Reproduce the shape of the paper's Tables 1-3 at a chosen scale.

Runs the five analysis modes on synthetic stand-ins for s35932, s38417 and
s38584 (see DESIGN.md for the substitution rationale) and optionally
re-simulates each longest path.

Usage::

    python examples/paper_tables.py [--scale 0.05] [--simulate]
    REPRO_FULL=1 python examples/paper_tables.py   # paper-size circuits
"""

import argparse
import os
import time

from repro import CrosstalkSTA, check_mode_ordering, format_table, prepare_design
from repro.circuit import s35932_like, s38417_like, s38584_like
from repro.validate import run_table_comparison

CIRCUITS = [
    ("Table 1: s35932", s35932_like),
    ("Table 2: s38417", s38417_like),
    ("Table 3: s38584", s38584_like),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=None, help="circuit scale (1.0 = paper size)")
    parser.add_argument("--simulate", action="store_true", help="re-simulate the longest paths")
    args = parser.parse_args()

    scale = args.scale
    if scale is None:
        scale = 1.0 if os.environ.get("REPRO_FULL") else 0.05

    for title, factory in CIRCUITS:
        t0 = time.time()
        circuit = factory(scale=scale)
        design = prepare_design(circuit)
        print(f"\n{'='*60}")
        print(f"{title} at scale {scale} -> {circuit.cell_count()} cells "
              f"(prepared in {time.time()-t0:.1f} s)")

        sta = CrosstalkSTA(design)
        if args.simulate:
            comparison = run_table_comparison(design, sta=sta)
            results = comparison.results
            sim_ns = comparison.sim_windowed_delay * 1e9
            print(format_table(title, results, simulation_ns=sim_ns,
                               cell_count=circuit.cell_count()))
            print(f"  quiet sim:   {comparison.sim_quiet_delay*1e9:.3f} ns")
            print(f"  worst sim:   {comparison.sim_worst_delay*1e9:.3f} ns")
            print(f"  coupling impact (worst - best): "
                  f"{comparison.coupling_impact*1e9:.3f} ns")
        else:
            results = sta.run_all_modes()
            print(format_table(title, results, cell_count=circuit.cell_count()))

        violations = check_mode_ordering(results)
        print("  ordering:", "OK" if not violations else violations)


if __name__ == "__main__":
    main()
