#!/usr/bin/env python3
"""Characterize the cell library into NLDM tables and export Liberty.

Runs the transistor-level stage solver over a slew x load grid for every
arc of a library subset, writes the tables as a ``.lib`` file, reads them
back, and demonstrates why the table model cannot replace the paper's
active coupling model.

Usage::

    python examples/characterize_library.py [output.lib]
"""

import sys

from repro.characterize import (
    NldmDelayCalculator,
    characterize_library,
    parse_liberty,
    write_liberty,
)
from repro.circuit import default_library
from repro.waveform import CouplingLoad, GateDelayCalculator, RISING

CELLS = ["INV_X1", "INV_X4", "NAND2_X1", "NAND3_X1", "NOR2_X1", "AOI21_X1"]


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "repro05.lib"
    library = default_library()

    print(f"Characterizing {len(CELLS)} cells...")
    char = characterize_library(library, cells=CELLS)
    print(f"  {char.arc_count()} arcs over {len(char.slews)}x{len(char.loads)} grids")

    text = write_liberty(char)
    with open(output, "w") as handle:
        handle.write(text)
    print(f"  wrote {len(text.splitlines())} lines of Liberty to {output}")

    restored = parse_liberty(text)
    assert restored.arc_count() == char.arc_count()
    print("  round-trip parse OK")

    # Show one table.
    arc = char.cell("NAND2_X1").arc("A", RISING)
    print("\nNAND2_X1 A-rise -> Y-fall delay table [ps]:")
    header = "slew\\load " + " ".join(f"{c*1e15:7.0f}fF" for c in char.loads)
    print("  " + header)
    for i, slew in enumerate(char.slews):
        row = " ".join(f"{arc.delay[i, j]*1e12:9.1f}" for j in range(len(char.loads)))
        print(f"  {slew*1e12:6.0f}ps  {row}")

    # Why tables are not enough for crosstalk (paper, Sections 2-3).
    print("\nCoupling situation: C_gnd=20 fF, C_c=25 fF, input ramp 100 ps")
    load = CouplingLoad(c_ground=20e-15, c_couple_active=25e-15)
    nldm2x = NldmDelayCalculator(char, coupling_factor=2.0)
    exact = GateDelayCalculator()
    inv = library["INV_X1"]
    table_result = nldm2x.compute_arc_relative(inv, "A", RISING, 100e-12, load)
    active_result = exact.compute_arc_relative(inv, "A", RISING, 100e-12, load)
    print(f"  NLDM with doubled cap : t50 = {table_result.t_cross*1e12:6.1f} ps")
    print(f"  active coupling model : t50 = {active_result.t_cross*1e12:6.1f} ps")
    print(
        "  -> the table model underestimates the worst case by "
        f"{(active_result.t_cross - table_result.t_cross)*1e12:.1f} ps on one stage."
    )


if __name__ == "__main__":
    main()
