#!/usr/bin/env python3
"""Close the loop: analyze -> rank -> shield -> re-analyze.

Finds the crosstalk-critical nets of a synthetic design, re-routes them
with guard spacing (no neighbour on adjacent tracks), and shows the
coupling and delay improvement.  Repeats for a second round.

Usage::

    python examples/crosstalk_repair.py [scale]
"""

import sys

from repro import AnalysisMode, CrosstalkSTA, prepare_design, s35932_like
from repro.core.netreport import format_net_report, rank_crosstalk_nets
from repro.flow import repair_crosstalk


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.04
    design = prepare_design(s35932_like(scale=scale))
    sta = CrosstalkSTA(design)
    result = sta.run(AnalysisMode.ITERATIVE)
    print(f"{design.circuit.stats()}")
    print(f"initial iterative bound: {result.longest_delay * 1e9:.3f} ns\n")

    print("Top crosstalk-critical nets:")
    exposures = rank_crosstalk_nets(design, result.final_pass, top=8)
    print(format_net_report(exposures))

    for round_index in (1, 2):
        outcome = repair_crosstalk(design, top=10)
        print(f"\nRepair round {round_index}:")
        print(outcome.summary())
        design = outcome.design

    final = CrosstalkSTA(design).run(AnalysisMode.ITERATIVE)
    print(
        f"\nfinal iterative bound: {final.longest_delay * 1e9:.3f} ns "
        f"({(result.longest_delay - final.longest_delay) * 1e12:+.1f} ps total)"
    )


if __name__ == "__main__":
    main()
