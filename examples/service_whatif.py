#!/usr/bin/env python3
"""Timing-query service: warm sessions and what-if (ECO) analysis.

Opens a design session against an in-process ``TimingService`` (same
calls and error semantics as the socket server — see ``docs/SERVICE.md``),
queries the worst crosstalk victims, then evaluates candidate fixes as
*transactional what-ifs*: each edit is analyzed on a copy seeded from the
session's warm incremental state, bit-identical to a cold re-analysis at
a fraction of the cost, and only the winning edit is committed.

Usage::

    python examples/service_whatif.py [netlist] [scale]

with ``netlist`` one of ``s27``, ``gen:<name>``, or a ``.bench`` path.
"""

import json
import sys

from repro.core.modes import AnalysisMode, StaConfig
from repro.service import InProcessClient, ServiceCallError, TimingService

MODE = AnalysisMode.ITERATIVE.value


def main() -> None:
    netlist = sys.argv[1] if len(sys.argv) > 1 else "gen:s35932"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.03

    service = TimingService(config=StaConfig(mode=AnalysisMode.ITERATIVE))
    client = InProcessClient(service)
    try:
        run(client, netlist, scale)
    finally:
        service.close()


def run(client: InProcessClient, netlist: str, scale: float) -> None:
    info = client.open_session(netlist, scale=scale)
    sid = info["session"]
    print(f"session {sid}: {info['design']}, {info['cells']} cells, "
          f"{info['coupling_pairs']} coupling pairs")

    # First analysis is the expensive one; it warms the session.
    baseline = client.analyze(sid, mode=MODE)
    print(f"iterative bound: {baseline['longest_delay_ns']:.3f} ns "
          f"(endpoint {baseline['critical_endpoint']}, "
          f"{baseline['passes']} passes)\n")

    # Rank the crosstalk victims and inspect the worst one.
    report = client.net_report(sid, mode=MODE, top=5)
    print("Top crosstalk-critical nets:")
    for entry in report["nets"]:
        print(f"  {entry['net']:<10} coupling {entry['coupling_cap'] * 1e15:7.1f} fF, "
              f"{entry['aggressor_count']} aggressors, coupled={entry['coupled']}")
    victim = report["nets"][0]["net"]
    detail = client.query_net(sid, victim, mode=MODE)
    worst = max(detail["couplings"], key=detail["couplings"].get)
    print(f"\nworst victim {victim}: strongest aggressor {worst} "
          f"({detail['couplings'][worst] * 1e15:.1f} fF of "
          f"{detail['coupling_cap_total'] * 1e15:.1f} fF total)\n")

    # Candidate fixes, evaluated without mutating the session.
    candidates = [
        {"action": "respace", "nets": [victim], "guard_tracks": 1},
        {"action": "upsize", "nets": [victim], "steps": 1},
        {"action": "drop_coupling", "net": victim, "neighbour": worst},
    ]
    outcomes = []
    for edit in candidates:
        try:
            payload = client.whatif(sid, edit, mode=MODE)
        except ServiceCallError as exc:
            print(f"  {edit['action']:<14} rejected: {exc}")
            continue
        delta = payload["delta"]
        after = payload["after"]
        outcomes.append((delta["improvement_ps"], edit, payload))
        print(f"  {edit['action']:<14} {delta['improvement_ps']:+8.1f} ps "
              f"(dirty {after['dirty_arcs']}, reused {after['reused_arcs']} arcs)")

    if not outcomes:
        print("no applicable edits")
        return

    # Nothing above was committed -- the session still reports baseline.
    unchanged = client.analyze(sid, mode=MODE)
    assert unchanged["longest_delay_hex"] == baseline["longest_delay_hex"]

    # Commit the winner; the session now holds the edited design.
    improvement, edit, _ = max(outcomes, key=lambda item: item[0])
    committed = client.whatif(sid, edit, mode=MODE, commit=True)
    print(f"\ncommitted {json.dumps(edit)}")
    print(f"new bound: {committed['after']['longest_delay_ns']:.3f} ns "
          f"({committed['delta']['improvement_ps']:+.1f} ps)")

    snapshot = client.metrics()
    whatif_calls = snapshot["counters"].get("service.requests{method=whatif}")
    print(f"\nservice handled {whatif_calls} what-if requests "
          f"({len(client.list_sessions())} session(s) open)")


if __name__ == "__main__":
    main()
