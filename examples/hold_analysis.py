#!/usr/bin/env python3
"""Min-delay (hold) analysis with same-direction coupling speed-up.

The paper computes the longest path and leaves same-direction switching
out of scope; this example exercises the repository's extension of the
framework to the dual problem: a guaranteed lower bound on the earliest
arrival at every flip-flop, where coupling can *accelerate* victims.

Usage::

    python examples/hold_analysis.py
"""

from repro import AnalysisMode, CrosstalkSTA, prepare_design, s27
from repro.core.constraints import check_hold, check_setup, minimum_period
from repro.core.minpath import MinAnalysisMode, MinPropagator


def main() -> None:
    design = prepare_design(s27())
    print(f"Design: {design.circuit.stats()}\n")

    # Max analysis (the paper's contribution): latest arrivals.
    max_sta = CrosstalkSTA(design)
    max_result = max_sta.run(AnalysisMode.ITERATIVE)
    period = minimum_period(max_result)
    print(f"Setup side (max analysis, iterative crosstalk-aware):")
    print(f"  longest path bound : {max_result.longest_delay * 1e9:.3f} ns")
    print(f"  minimum clock      : {period * 1e9:.3f} ns")
    print(f"  {check_setup(max_result, clock_period=period).summary()}\n")

    # Min analysis (extension): earliest arrivals with helping coupling.
    propagator = MinPropagator(design)
    print("Hold side (min analysis):")
    print(f"  {'mode':<18} {'earliest arrival [ps]':>22}")
    results = {}
    for mode in MinAnalysisMode:
        results[mode] = propagator.run(mode)
        print(f"  {mode.value:<18} {results[mode].shortest_delay * 1e12:>22.1f}")

    safe = results[MinAnalysisMode.ITERATIVE]
    print(f"\n  fastest endpoint: {safe.critical_endpoint} ({safe.critical_direction})")

    for hold in (20e-12, 150e-12):
        report = check_hold(safe, hold_time=hold)
        status = "MET" if report.met else f"VIOLATED at {len(report.failing())} endpoints"
        print(
            f"  hold {hold * 1e12:5.0f} ps: {status} "
            f"(worst slack {report.worst.slack * 1e12:+.1f} ps at {report.worst.endpoint})"
        )

    # Sanity: min <= max per endpoint.
    max_map = max_result.arrival_map()
    min_map = safe.arrival_map()
    violations = [
        key for key in min_map if key in max_map and min_map[key] > max_map[key] + 1e-12
    ]
    assert not violations, violations
    print("\nEvery earliest-arrival bound precedes its latest-arrival bound.")


if __name__ == "__main__":
    main()
