"""Tests for the autonomous crosstalk-repair optimizer and its service RPC.

The loop's contract: candidates are evaluated warm through the
transactional what-if path, only strict worst-slack improvements are
committed, the slack trajectory is monotone non-worsening, the dont-touch
list is honoured, and the committed design re-analyzes cold
bit-identically to the warm result.
"""

from __future__ import annotations

import pytest

from repro.circuit import s27
from repro.core.modes import StaConfig
from repro.core.netreport import rank_crosstalk_nets
from repro.errors import InputError
from repro.flow import prepare_design
from repro.flow.edits import edit_nets
from repro.flow.optimizer import (
    REPAIR_SCHEMA,
    format_repair,
    propose_edits,
    validate_repair,
)
from repro.obs import Observability
from repro.service import InProcessClient, ServiceCallError, TimingService
from repro.service.session import Session

# s27's iterative bound is ~0.794 ns: 0.78 ns leaves a small negative
# worst slack the optimizer can actually close within a few edits.
TIGHT = {"clock_period": 0.78e-9}
HOPELESS = {"clock_period": 0.4e-9}


@pytest.fixture(scope="module")
def service():
    service = TimingService(workers=2)
    yield service
    service.close()


@pytest.fixture(scope="module")
def client(service):
    with InProcessClient(service) as client:
        yield client


class TestRepairLoop:
    def test_reaches_nonnegative_worst_slack(self, client):
        sid = client.open_session("s27", config=TIGHT)["session"]
        baseline = client.analyze(sid)
        assert baseline["worst_slack"] < 0.0
        transcript = client.repair(sid, max_edits=6, cold_verify=True)
        validate_repair(transcript)
        assert transcript["schema"] == REPAIR_SCHEMA
        assert transcript["final"]["met"]
        assert transcript["final"]["worst_slack"] >= 0.0
        assert transcript["stop_reason"] == "target_reached"
        # Warm evaluation economics: every candidate went through the
        # incremental what-if path; the only cold run is the verify.
        assert transcript["cold_analyses"] == 1
        assert transcript["evaluations"] >= 10 * transcript["cold_analyses"]
        assert transcript["warm"]["reuse_ratio"] > 0.5
        assert transcript["cold_verify"]["identical"]
        # The session now owns the repaired design.
        info = client.session_info(sid)
        assert info["committed_edits"] == transcript["edits_committed"] > 0
        after = client.analyze(sid)
        assert (
            after["worst_slack_hex"] == transcript["final"]["worst_slack_hex"]
        )
        assert "bit-identical" in format_repair(transcript)

    def test_budget_exhaustion_is_monotone(self, client):
        sid = client.open_session("s27", config=HOPELESS)["session"]
        transcript = client.repair(sid, max_edits=3)
        validate_repair(transcript)  # checks the monotone trajectory
        assert not transcript["final"]["met"]
        assert transcript["stop_reason"] in ("budget_exhausted", "no_candidates")
        assert transcript["edits_committed"] <= 3
        values = [p["worst_slack"] for p in transcript["trajectory"]]
        assert values == sorted(values)
        # Committed rounds improved strictly.
        for entry in transcript["rounds"]:
            if entry["committed"] is not None:
                assert entry["worst_slack_after"] > entry["worst_slack_before"]

    def test_dont_touch_is_honoured(self, client):
        sid = client.open_session("s27", config=TIGHT)["session"]
        protected = ["CLK", "G15"]
        transcript = client.repair(sid, max_edits=4, dont_touch=protected)
        validate_repair(transcript)
        for entry in transcript["rounds"]:
            for candidate in entry["candidates"]:
                assert not set(edit_nets(candidate["edit"])) & set(protected)
        for edit in transcript["committed_edits"]:
            assert not set(edit_nets(edit)) & set(protected)

    def test_repair_without_clock_period_rejected(self, client):
        sid = client.open_session("s27")["session"]
        with pytest.raises(ServiceCallError) as excinfo:
            client.repair(sid)
        assert "clock period" in str(excinfo.value)

    def test_unknown_dont_touch_net_rejected(self, client):
        sid = client.open_session("s27", config=TIGHT)["session"]
        with pytest.raises(ServiceCallError):
            client.repair(sid, dont_touch=["no_such_net"])


class TestProposals:
    @pytest.fixture(scope="class")
    def ranked(self):
        design = prepare_design(s27())
        session = Session(
            session_id="t",
            spec="s27",
            design=design,
            config=StaConfig(clock_period=0.4e-9),
            obs=Observability.disabled(),
        )
        result = session.analyze()
        exposures = rank_crosstalk_nets(design, result.final_pass, slack=result.slack)
        return design, exposures

    def test_victim_in_dont_touch_yields_nothing(self, ranked):
        design, exposures = ranked
        victim = exposures[0]
        assert propose_edits(design, victim, frozenset({victim.net})) == []

    def test_proposals_cover_the_action_set(self, ranked):
        design, exposures = ranked
        actions = set()
        for exposure in exposures:
            for edit in propose_edits(design, exposure, frozenset()):
                actions.add(edit["action"])
                assert exposure.net in edit_nets(edit)
        assert "respace" in actions
        assert "drop_coupling" in actions

    def test_dont_touch_neighbour_excluded(self, ranked):
        design, exposures = ranked
        exposure = exposures[0]
        neighbours = set(design.loads[exposure.net].couplings)
        edits = propose_edits(design, exposure, frozenset(neighbours))
        for edit in edits:
            assert not set(edit_nets(edit)) & neighbours - {exposure.net}


class TestTranscriptValidation:
    def _transcript(self, client):
        sid = client.open_session("s27", config=TIGHT)["session"]
        return client.repair(sid, max_edits=2)

    def test_tampered_trajectory_rejected(self, client):
        transcript = self._transcript(client)
        bad = dict(transcript)
        bad["trajectory"] = list(transcript["trajectory"])[::-1]
        if len(bad["trajectory"]) > 1:
            with pytest.raises(ValueError):
                validate_repair(bad)

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError):
            validate_repair({"schema": "something/else"})

    def test_session_validates_before_returning(self):
        design = prepare_design(s27())
        session = Session(
            session_id="t2",
            spec="s27",
            design=design,
            config=StaConfig(clock_period=0.78e-9),
            obs=Observability.disabled(),
        )
        transcript = session.repair(max_edits=2)
        validate_repair(transcript)
        assert session.committed_edits == transcript["committed_edits"]

    def test_direct_session_requires_period(self):
        design = prepare_design(s27())
        session = Session(
            session_id="t3",
            spec="s27",
            design=design,
            config=StaConfig(),
            obs=Observability.disabled(),
        )
        with pytest.raises(InputError):
            session.repair()
