"""Tests for transistor-level cell topologies."""

import pytest

from repro.circuit.transistors import (
    Dev,
    aoi21_topology,
    collapse_width,
    count_devices,
    expand_network,
    inverter_topology,
    nand_topology,
    network_pins,
    nor_topology,
    parallel,
    series,
    stack_depth,
)


class TestNetworkQueries:
    def test_pins_in_order(self):
        net = series(Dev("B"), parallel(Dev("A"), Dev("C")))
        assert network_pins(net) == ["B", "A", "C"]

    def test_count_devices(self):
        assert count_devices(series(Dev("A"), Dev("B"), Dev("C"))) == 3
        assert count_devices(parallel(series(Dev("A"), Dev("B")), Dev("C"))) == 3

    def test_stack_depth(self):
        assert stack_depth(Dev("A")) == 1
        assert stack_depth(series(Dev("A"), Dev("B"))) == 2
        assert stack_depth(parallel(series(Dev("A"), Dev("B")), Dev("C"))) == 2


class TestCollapse:
    def test_single_device(self):
        assert collapse_width(Dev("A"), "A", 2e-6) == pytest.approx(2e-6)

    def test_unrelated_pin_returns_none(self):
        assert collapse_width(Dev("A"), "B", 2e-6) is None

    def test_series_stack_halves(self):
        net = series(Dev("A"), Dev("B"))
        assert collapse_width(net, "A", 2e-6) == pytest.approx(1e-6)

    def test_parallel_takes_conducting_branch(self):
        net = parallel(Dev("A"), Dev("B"))
        assert collapse_width(net, "A", 2e-6) == pytest.approx(2e-6)

    def test_width_scale_applied(self):
        net = series(Dev("A", width_scale=2.0), Dev("B"))
        width = collapse_width(net, "A", 2e-6)
        # 4u in series with 2u -> 4/3 u
        assert width == pytest.approx(4e-6 / 3)

    def test_aoi_collapse_through_parallel_branch(self):
        topo = aoi21_topology()
        # Pull-down: parallel(series(A,B), C); switching C conducts alone.
        width = collapse_width(topo.pull_down, "C", topo.wn_base)
        assert width == pytest.approx(topo.wn_base)
        # Switching A requires B on in series.
        width_a = collapse_width(topo.pull_down, "A", topo.wn_base)
        assert width_a == pytest.approx(topo.wn_base / 2)


class TestExpand:
    def test_series_creates_internal_nodes(self):
        devices = expand_network(series(Dev("A"), Dev("B")), 1, 2e-6, "out", "gnd", "g")
        assert len(devices) == 2
        assert devices[0].drain == "out"
        assert devices[1].source == "gnd"
        assert devices[0].source == devices[1].drain
        assert devices[0].source.startswith("g.")

    def test_parallel_shares_nodes(self):
        devices = expand_network(parallel(Dev("A"), Dev("B")), 1, 2e-6, "out", "gnd", "g")
        assert all(d.drain == "out" and d.source == "gnd" for d in devices)

    def test_flatten_counts(self):
        topo = nand_topology(3)
        devices = topo.flatten("y", "vdd", "gnd", "g1")
        assert len(devices) == 6
        pull_up = [d for d in devices if d.polarity < 0]
        pull_down = [d for d in devices if d.polarity > 0]
        assert len(pull_up) == len(pull_down) == 3
        assert all(d.source == "vdd" for d in pull_up)


class TestTopologies:
    def test_inverter_equivalent_stage(self, process):
        topo = inverter_topology()
        pu, pd = topo.equivalent_stage("A", process)
        assert pu is not None and pd is not None
        assert pu.params.polarity == -1
        assert pd.params.polarity == 1

    def test_nand_stage_per_pin(self, process):
        topo = nand_topology(2)
        pu_a, pd_a = topo.equivalent_stage("A", process)
        pu_b, pd_b = topo.equivalent_stage("B", process)
        assert pd_a.params.width == pytest.approx(pd_b.params.width)
        # NAND pull-down stack is sized up but still collapses below the
        # single-device pull-up strength per leg.
        assert pd_a.params.width < topo.wn_base

    def test_unknown_pin_gives_no_stage(self, process):
        topo = inverter_topology()
        pu, pd = topo.equivalent_stage("Z", process)
        assert pu is None and pd is None

    def test_nor_pmos_stack_wider(self):
        nor = nor_topology(2)
        nand = nand_topology(2)
        assert nor.wp_base > nand.wp_base

    def test_input_cap_counts_both_networks(self, process):
        topo = inverter_topology()
        cap = topo.input_cap("A", process)
        assert cap == pytest.approx(
            process.gate_cap(topo.wp_base) + process.gate_cap(topo.wn_base)
        )

    def test_output_parasitic_counts_full_network(self, process):
        nand3 = nand_topology(3)
        inv = inverter_topology()
        assert nand3.output_parasitic_cap(process) > inv.output_parasitic_cap(process)
