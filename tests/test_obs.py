"""Tests for the observability subsystem (repro.obs)."""

from __future__ import annotations

import json

import pytest

from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode, StaConfig
from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    Observability,
    Tracer,
    diff_snapshots,
    metrics_payload,
    read_jsonl,
    series_key,
    validate_chrome_trace,
    validate_metrics_payload,
    validate_snapshot,
)


class TestNullTracer:
    def test_disabled_flag(self):
        assert not NULL_TRACER.enabled
        assert Tracer().enabled

    def test_span_is_the_shared_noop_singleton(self):
        span = NULL_TRACER.span("anything", key="value")
        assert span is NULL_SPAN
        with span as inner:
            assert inner is NULL_SPAN
            assert inner.set(more=1) is NULL_SPAN

    def test_records_nothing(self):
        with NULL_TRACER.span("a"):
            with NULL_TRACER.span("b"):
                NULL_TRACER.instant("c")
        assert NULL_TRACER.events == []

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("a"):
                raise RuntimeError("boom")


class TestTracer:
    def test_span_nesting_assigns_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        events = {e["name"]: e for e in tracer.events}
        assert events["inner"]["parent_id"] == events["outer"]["span_id"]
        assert events["sibling"]["parent_id"] == events["outer"]["span_id"]
        assert events["outer"]["parent_id"] is None
        # Children close before the parent, so they are recorded first.
        names = [e["name"] for e in tracer.events]
        assert names.index("inner") < names.index("outer")

    def test_attributes_at_open_and_via_set(self):
        tracer = Tracer()
        with tracer.span("work", mode="one_step") as span:
            span.set(arcs=48, waves=3)
        (event,) = tracer.events
        assert event["args"] == {"mode": "one_step", "arcs": 48, "waves": 3}
        assert event["dur"] >= 0.0

    def test_monotonic_timestamps(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.events
        assert b["ts"] >= a["ts"] + a["dur"]

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", design="s27"):
            tracer.instant("marker", level=2)
        path = tmp_path / "events.jsonl"
        written = tracer.write_jsonl(str(path))
        events = read_jsonl(str(path))
        assert written == len(events) == 2
        assert events == tracer.events

    def test_chrome_payload_is_valid(self, tmp_path):
        tracer = Tracer(process_name="unit")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert validate_chrome_trace(tracer.chrome_payload()) == []
        path = tmp_path / "trace.json"
        tracer.write_chrome(str(path))
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_absorb_folds_foreign_events(self):
        a, b = Tracer(), Tracer()
        with b.span("remote"):
            pass
        a.absorb(b.events)
        assert [e["name"] for e in a.events] == ["remote"]


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        assert registry.counter("hits") is counter

    def test_gauge(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("fraction")
        assert gauge.value is None
        gauge.set(0.25)
        assert gauge.value == 0.25

    def test_histogram_bucketing(self):
        registry = MetricsRegistry()
        hist = registry.histogram("iters", boundaries=(10, 20))
        hist.observe_many([5, 10, 15, 25])
        # (-inf,10], (10,20], (20,inf)
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.mean == pytest.approx(13.75)
        assert (hist.vmin, hist.vmax) == (5, 25)

    def test_series_key_labels(self):
        assert series_key("x", {}) == "x"
        assert series_key("x", {"b": 1, "a": 2}) == "x{a=2,b=1}"
        registry = MetricsRegistry()
        assert (
            registry.counter("phase_seconds", phase="merge")
            is not registry.counter("phase_seconds", phase="gather")
        )

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1.5)
        registry.histogram("h", boundaries=(1, 2)).observe(1)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert validate_snapshot(snapshot) == []

    def test_merge_snapshot_across_workers(self):
        # Two "worker" registries, merged into a parent: counters and
        # histogram buckets add, min/max fold, gauges last-write.
        parent = MetricsRegistry()
        parent.counter("solves").inc(10)
        for value, iters in ((5, [100]), (7, [300, 2000])):
            worker = MetricsRegistry()
            worker.counter("solves").inc(value)
            worker.histogram("iters", boundaries=(60, 120, 360)).observe_many(iters)
            worker.gauge("last").set(value)
            parent.merge_snapshot(worker.snapshot())
        assert parent.counter("solves").value == 22
        hist = parent.histogram("iters", boundaries=(60, 120, 360))
        assert hist.count == 3
        assert (hist.vmin, hist.vmax) == (100, 2000)
        assert hist.bucket_counts[-1] == 1  # the 2000 overflow
        assert parent.gauge("last").value == 7

    def test_merge_rejects_mismatched_boundaries(self):
        parent = MetricsRegistry()
        parent.histogram("h", boundaries=(1, 2))
        worker = MetricsRegistry()
        worker.histogram("h", boundaries=(5, 6)).observe(5)
        with pytest.raises(ValueError, match="boundaries"):
            parent.merge_snapshot(worker.snapshot())

    def test_merge_rejects_mismatched_boundaries_on_labeled_series(self):
        # The boundary check keys on the full series key, labels and all.
        parent = MetricsRegistry()
        parent.histogram("lat", boundaries=(0.1, 1.0), method="analyze")
        worker = MetricsRegistry()
        worker.histogram("lat", boundaries=(0.5,), method="analyze").observe(1)
        with pytest.raises(ValueError, match="boundaries"):
            parent.merge_snapshot(worker.snapshot())
        # A different label set is a different series: no clash.
        other = MetricsRegistry()
        other.histogram("lat", boundaries=(0.5,), method="ping").observe(1)
        parent.merge_snapshot(other.snapshot())

    def test_merge_adopts_then_enforces_boundaries_for_new_series(self):
        # First merge of an unseen series adopts the incoming boundaries;
        # from then on they are pinned and a disagreeing worker raises.
        parent = MetricsRegistry()
        first = MetricsRegistry()
        first.histogram("h", boundaries=(10, 20)).observe(15)
        parent.merge_snapshot(first.snapshot())
        assert list(
            parent.histogram("h", boundaries=(10, 20)).boundaries
        ) == [10, 20]
        second = MetricsRegistry()
        second.histogram("h", boundaries=(30,)).observe(35)
        with pytest.raises(ValueError, match="boundaries"):
            parent.merge_snapshot(second.snapshot())

    def test_labeled_worker_merges_roundtrip_through_diff(self):
        # Two workers reporting labeled series fold into a parent that
        # already has history; the diff across the merge equals exactly
        # the workers' combined contribution -- and, being snapshot-
        # shaped, replays into a fresh registry.
        parent = MetricsRegistry()
        parent.counter("rpc", method="analyze").inc(3)
        parent.histogram(
            "lat", boundaries=(0.1, 1.0), method="analyze"
        ).observe(0.05)
        before = parent.snapshot()
        for method, calls, samples in (
            ("analyze", 2, [0.05]),
            ("whatif", 4, [1.5, 0.2]),
        ):
            worker = MetricsRegistry()
            worker.counter("rpc", method=method).inc(calls)
            worker.histogram(
                "lat", boundaries=(0.1, 1.0), method=method
            ).observe_many(samples)
            worker.gauge("depth", method=method).set(calls)
            parent.merge_snapshot(worker.snapshot())
        delta = diff_snapshots(before, parent.snapshot())
        assert delta["counters"] == {
            "rpc{method=analyze}": 2,
            "rpc{method=whatif}": 4,
        }
        assert delta["gauges"] == {
            "depth{method=analyze}": 2,
            "depth{method=whatif}": 4,
        }
        assert delta["histograms"]["lat{method=analyze}"]["count"] == 1
        # (-inf,0.1], (0.1,1.0], (1.0,inf): 0.2 mid, 1.5 overflow.
        assert delta["histograms"]["lat{method=whatif}"]["counts"] == [0, 1, 1]
        replay = MetricsRegistry()
        replay.merge_snapshot(delta)
        assert replay.counter("rpc", method="whatif").value == 4
        assert (
            replay.histogram(
                "lat", boundaries=(0.1, 1.0), method="whatif"
            ).count
            == 2
        )

    def test_diff_snapshots(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.histogram("h", boundaries=(10,)).observe(3)
        before = registry.snapshot()
        registry.counter("a").inc(2)
        registry.counter("b").inc(1)
        registry.histogram("h", boundaries=(10,)).observe(20)
        registry.gauge("g").set(0.5)
        delta = diff_snapshots(before, registry.snapshot())
        assert delta["counters"] == {"a": 2, "b": 1}
        assert delta["gauges"] == {"g": 0.5}
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["counts"] == [0, 1]

    def test_diff_drops_untouched_series(self):
        registry = MetricsRegistry()
        registry.counter("quiet").inc(5)
        registry.histogram("h", boundaries=(10,)).observe(3)
        snapshot = registry.snapshot()
        delta = diff_snapshots(snapshot, snapshot)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}


class TestInstrumentedAnalysis:
    @pytest.fixture(scope="class")
    def traced_run(self, s27_design):
        obs = Observability.tracing()
        sta = CrosstalkSTA(s27_design, StaConfig(), obs=obs)
        result = sta.run(AnalysisMode.ONE_STEP)
        return obs, result

    def test_results_identical_with_and_without_tracing(self, s27_design, traced_run):
        _, traced = traced_run
        plain = CrosstalkSTA(s27_design, StaConfig()).run(AnalysisMode.ONE_STEP)
        assert plain.longest_delay == traced.longest_delay
        assert plain.arrival_map() == traced.arrival_map()

    def test_span_hierarchy(self, traced_run):
        obs, _ = traced_run
        names = [e["name"] for e in obs.tracer.events]
        assert "sta.run" in names
        assert "sta.pass" in names
        assert "sta.level" in names
        assert "phase.base_waveforms" in names
        assert validate_chrome_trace(obs.tracer.chrome_payload()) == []

    def test_run_telemetry_attached(self, traced_run):
        obs, result = traced_run
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry.mode == "one_step"
        assert telemetry.counter("propagation.passes") == 1
        assert telemetry.counter("arc_cache.evaluations") > 0
        newton = telemetry.histogram("newton.iterations_per_arc")
        assert newton is not None
        assert newton["count"] == telemetry.counter("arc_cache.evaluations")
        assert len(telemetry.passes) == result.passes

    def test_metrics_payload_validates(self, traced_run):
        obs, result = traced_run
        payload = metrics_payload(
            result.design_name, {result.mode.value: result.telemetry}, registry=obs.metrics
        )
        assert validate_metrics_payload(payload) == []

    def test_telemetry_without_tracing(self, s27_design):
        # Metrics are always on; only spans are gated behind the tracer.
        result = CrosstalkSTA(s27_design, StaConfig()).run(AnalysisMode.ONE_STEP)
        assert result.telemetry is not None
        assert result.telemetry.counter("propagation.arcs_processed") > 0

    def test_per_mode_deltas_with_shared_cache(self, s27_design):
        # The calculator is shared across modes; each mode's telemetry must
        # report only its own pass counts, not the cumulative ones.
        sta = CrosstalkSTA(s27_design, StaConfig())
        first = sta.run(AnalysisMode.ONE_STEP)
        second = sta.run(AnalysisMode.ONE_STEP)
        assert first.telemetry.counter("propagation.passes") == 1
        assert second.telemetry.counter("propagation.passes") == 1
        # Second run is served from the warm arc cache.
        assert second.telemetry.counter("arc_cache.evaluations") == 0
        assert second.telemetry.counter("arc_cache.hits") > 0
