"""Tests for process parameters and sizing rules."""

import pytest

from repro.devices.params import ProcessParams, SizingRules, default_process, default_sizing


class TestProcessParams:
    def test_paper_thresholds(self):
        """The paper's 0.5 um setup: 0.6 V transistor threshold, 0.2 V
        coupling-model threshold."""
        process = default_process()
        assert process.vtn == pytest.approx(0.6)
        assert process.v_th_model == pytest.approx(0.2)
        assert process.v_th_model < process.vtn

    def test_half_supply(self):
        process = default_process()
        assert process.v_half == pytest.approx(process.vdd / 2)

    def test_thermal_voltage_room_temperature(self):
        assert default_process().thermal_voltage == pytest.approx(0.02585, rel=0.01)

    def test_slew_thresholds_ordered(self):
        lo, hi = default_process().slew_thresholds()
        assert 0 < lo < hi < default_process().vdd

    def test_gate_cap_scales_with_width(self):
        process = default_process()
        assert process.gate_cap(4e-6) == pytest.approx(2 * process.gate_cap(2e-6))

    def test_frozen(self):
        with pytest.raises(AttributeError):
            default_process().vdd = 5.0

    def test_default_is_shared(self):
        assert default_process() is default_process()


class TestSizingRules:
    def test_pmos_wider_than_nmos(self):
        sizing = default_sizing()
        assert sizing.pmos_width() > sizing.nmos_width()

    def test_stacks_widened(self):
        sizing = default_sizing()
        assert sizing.nmos_width(stack_depth=3) > sizing.nmos_width(stack_depth=1)

    def test_drive_scaling(self):
        sizing = default_sizing()
        assert sizing.nmos_width(drive="X4") == pytest.approx(4 * sizing.nmos_width(drive="X1"))

    def test_unknown_drive_rejected(self):
        with pytest.raises(KeyError):
            default_sizing().nmos_width(drive="X3")
