"""Tests for the scalar Newton solver."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.newton import NewtonError, solve_newton


def quadratic(root: float):
    def f(x: float):
        return (x - root) * (x + root + 10.0), 2 * x + 10.0

    return f


class TestNewton:
    def test_finds_linear_root(self):
        result = solve_newton(lambda x: (2 * x - 3, 2.0), x0=0.0)
        assert result.root == pytest.approx(1.5)
        assert not result.used_bisection

    def test_finds_quadratic_root(self):
        result = solve_newton(quadratic(2.0), x0=1.0, lo=0.0, hi=5.0)
        assert result.root == pytest.approx(2.0, abs=1e-6)

    def test_respects_bounds(self):
        result = solve_newton(quadratic(2.0), x0=4.9, lo=0.0, hi=5.0)
        assert 0.0 <= result.root <= 5.0

    def test_transcendental(self):
        result = solve_newton(
            lambda x: (math.cos(x) - x, -math.sin(x) - 1.0), x0=0.5
        )
        assert result.root == pytest.approx(0.7390851332, abs=1e-6)

    def test_zero_derivative_falls_back_to_bisection(self):
        def flat_then_slope(x: float):
            return (x - 1.0, 0.0)  # lies about its derivative

        result = solve_newton(flat_then_slope, x0=0.0, lo=0.0, hi=2.0)
        assert result.root == pytest.approx(1.0, abs=1e-6)
        assert result.used_bisection

    def test_zero_derivative_without_bracket_raises(self):
        with pytest.raises(NewtonError):
            solve_newton(lambda x: (x - 1.0, 0.0), x0=0.0)

    def test_no_bracket_raises(self):
        with pytest.raises(NewtonError, match="bracket"):
            solve_newton(lambda x: (1.0, 0.0), x0=0.5, lo=0.0, hi=1.0)

    def test_root_at_boundary(self):
        result = solve_newton(lambda x: (x, 0.0), x0=0.5, lo=0.0, hi=1.0)
        assert result.root == pytest.approx(0.0, abs=1e-9)

    @given(root=st.floats(min_value=-5.0, max_value=5.0))
    @settings(max_examples=50, deadline=None)
    def test_quadratic_roots_found(self, root):
        result = solve_newton(
            lambda x: ((x - root), 1.0), x0=root + 3.0, lo=root - 10, hi=root + 10
        )
        assert result.root == pytest.approx(root, abs=1e-6)

    def test_iteration_count_reported(self):
        result = solve_newton(lambda x: (2 * x - 3, 2.0), x0=0.0)
        assert result.iterations >= 1
