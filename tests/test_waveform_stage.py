"""Tests for the transistor-level stage solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.mosfet import nmos, pmos
from repro.devices.params import default_process
from repro.devices.tables import StageTable
from repro.waveform.coupling import CouplingLoad
from repro.waveform.pwl import FALLING, RISING
from repro.waveform.stage import InputRamp, StageSolver, StageSolverError

PROCESS = default_process()
VDD = PROCESS.vdd


@pytest.fixture(scope="module")
def solver():
    return StageSolver(StageTable(pmos(4e-6), nmos(2e-6)))


def rising_input(transition=100e-12):
    return InputRamp(direction=RISING, t_start=0.0, transition=transition)


def falling_input(transition=100e-12):
    return InputRamp(direction=FALLING, t_start=0.0, transition=transition)


class TestInputRamp:
    def test_voltage_profile(self):
        ramp = rising_input(100e-12)
        assert ramp.voltage_at(-1e-12, VDD) == 0.0
        assert ramp.voltage_at(50e-12, VDD) == pytest.approx(VDD / 2)
        assert ramp.voltage_at(200e-12, VDD) == VDD

    def test_falling_profile(self):
        ramp = falling_input(100e-12)
        assert ramp.voltage_at(0.0, VDD) == VDD
        assert ramp.voltage_at(100e-12, VDD) == 0.0

    def test_zero_transition_is_step(self):
        ramp = InputRamp(RISING, 1e-9, 0.0)
        assert ramp.voltage_at(1e-9 - 1e-15, VDD) == 0.0
        assert ramp.voltage_at(1e-9, VDD) == VDD


class TestUncoupled:
    def test_inverter_output_falls_for_rising_input(self, solver):
        result = solver.solve(rising_input(), CouplingLoad(c_ground=30e-15))
        assert result.direction == FALLING
        assert not result.coupled
        assert result.waveform.is_monotone()

    def test_markers_ordered(self, solver):
        result = solver.solve(rising_input(), CouplingLoad(c_ground=30e-15))
        assert result.t_early < result.t_cross < result.t_late

    def test_more_load_more_delay(self, solver):
        light = solver.solve(rising_input(), CouplingLoad(c_ground=20e-15))
        heavy = solver.solve(rising_input(), CouplingLoad(c_ground=80e-15))
        assert heavy.t_cross > light.t_cross
        assert heavy.transition > light.transition

    def test_slower_input_slower_output(self, solver):
        fast = solver.solve(rising_input(50e-12), CouplingLoad(c_ground=30e-15))
        slow = solver.solve(rising_input(400e-12), CouplingLoad(c_ground=30e-15))
        assert slow.t_cross > fast.t_cross

    def test_positive_load_required(self, solver):
        with pytest.raises(StageSolverError, match="positive"):
            solver.solve(rising_input(), CouplingLoad(c_ground=0.0))

    def test_rise_and_fall_both_work(self, solver):
        fall_out = solver.solve(rising_input(), CouplingLoad(c_ground=30e-15))
        rise_out = solver.solve(falling_input(), CouplingLoad(c_ground=30e-15))
        assert fall_out.direction == FALLING
        assert rise_out.direction == RISING
        # PMOS is sized 2x for symmetric-ish drive; delays comparable.
        assert rise_out.t_cross == pytest.approx(fall_out.t_cross, rel=0.5)


class TestCoupled:
    def test_coupling_fires_and_delays(self, solver):
        base = solver.solve(rising_input(), CouplingLoad(c_ground=40e-15))
        coupled = solver.solve(
            rising_input(),
            CouplingLoad(c_ground=40e-15, c_couple_active=20e-15),
        )
        assert coupled.coupled
        assert coupled.t_drop is not None
        assert coupled.t_cross > base.t_cross

    def test_reported_waveform_starts_at_restart_voltage(self, solver):
        load = CouplingLoad(c_ground=40e-15, c_couple_active=20e-15)
        result = solver.solve(rising_input(), load)
        assert result.waveform.v_start == pytest.approx(
            load.restart_voltage(FALLING, PROCESS), abs=1e-9
        )
        assert result.waveform.t_start == pytest.approx(result.t_drop)

    def test_waveform_monotone_after_drop(self, solver):
        result = solver.solve(
            rising_input(), CouplingLoad(c_ground=40e-15, c_couple_active=20e-15)
        )
        assert result.waveform.is_monotone()

    def test_active_worse_than_same_passive(self, solver):
        """The active model must delay at least as much as treating the
        same capacitance as grounded (the coupling drop only adds)."""
        passive = solver.solve(
            rising_input(), CouplingLoad(c_ground=60e-15)
        )
        active = solver.solve(
            rising_input(), CouplingLoad(c_ground=40e-15, c_couple_active=20e-15)
        )
        assert active.t_cross >= passive.t_cross - 1e-15

    def test_bigger_coupling_bigger_penalty(self, solver):
        small = solver.solve(
            rising_input(), CouplingLoad(c_ground=40e-15, c_couple_active=5e-15)
        )
        large = solver.solve(
            rising_input(), CouplingLoad(c_ground=40e-15, c_couple_active=30e-15)
        )
        assert large.t_cross > small.t_cross

    def test_rising_victim_coupling(self, solver):
        """Falling input -> rising victim; the restart value is V_th."""
        base = solver.solve(falling_input(), CouplingLoad(c_ground=40e-15))
        coupled = solver.solve(
            falling_input(), CouplingLoad(c_ground=40e-15, c_couple_active=20e-15)
        )
        assert coupled.coupled
        assert coupled.direction == RISING
        assert coupled.t_cross > base.t_cross
        assert coupled.waveform.v_start == pytest.approx(PROCESS.v_th_model, abs=1e-9)

    def test_overwhelming_coupling_still_completes(self, solver):
        """Trigger clamping keeps the solver finishing even when coupling
        dominates the node."""
        result = solver.solve(
            falling_input(), CouplingLoad(c_ground=5e-15, c_couple_active=100e-15)
        )
        assert result.coupled
        assert result.direction == RISING
        assert result.waveform.v_end > 0.9 * VDD

    @given(
        c_gnd=st.floats(min_value=10e-15, max_value=100e-15),
        c_act=st.floats(min_value=1e-15, max_value=50e-15),
        tt=st.floats(min_value=20e-12, max_value=500e-12),
    )
    @settings(max_examples=25, deadline=None)
    def test_coupling_never_speeds_up(self, solver, c_gnd, c_act, tt):
        base = solver.solve(
            InputRamp(RISING, 0.0, tt), CouplingLoad(c_ground=c_gnd + c_act)
        )
        active = solver.solve(
            InputRamp(RISING, 0.0, tt),
            CouplingLoad(c_ground=c_gnd, c_couple_active=c_act),
        )
        assert active.t_cross >= base.t_cross - 1e-14
