"""Tests for the ISCAS89 .bench parser, writer and technology mapping."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.bench import (
    BenchParseError,
    map_to_circuit,
    parse_bench,
    write_bench,
)
from repro.circuit.benchmarks import S27_BENCH, s27, s27_bench


class TestParser:
    def test_s27_shape(self):
        netlist = s27_bench()
        assert len(netlist.inputs) == 4
        assert netlist.outputs == ["G17"]
        assert netlist.flip_flop_count() == 3
        assert len(netlist.gates) == 13

    def test_comments_and_blank_lines_ignored(self):
        netlist = parse_bench("# hi\n\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)  # inline\n")
        assert netlist.inputs == ["a"]
        assert "y" in netlist.gates

    def test_unknown_gate_rejected(self):
        with pytest.raises(BenchParseError, match="unknown gate"):
            parse_bench("INPUT(a)\ny = FROB(a)\n")

    def test_double_driver_rejected(self):
        with pytest.raises(BenchParseError, match="driven twice"):
            parse_bench("INPUT(a)\ny = NOT(a)\ny = NOT(a)\n")

    def test_undriven_signal_rejected(self):
        with pytest.raises(BenchParseError, match="never driven"):
            parse_bench("INPUT(a)\ny = AND(a, ghost)\n")

    def test_not_with_two_inputs_rejected(self):
        with pytest.raises(BenchParseError, match="exactly one"):
            parse_bench("INPUT(a)\nINPUT(b)\ny = NOT(a, b)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(BenchParseError, match="cannot parse"):
            parse_bench("INPUT(a)\nwat\n")

    def test_buf_alias(self):
        netlist = parse_bench("INPUT(a)\ny = BUF(a)\n")
        assert netlist.gates["y"].gtype == "BUFF"

    def test_fanout_count(self):
        netlist = s27_bench()
        fanout = netlist.signal_fanout()
        assert fanout["G8"] == 2  # feeds G15 and G16
        assert fanout["G11"] == 3  # feeds G17, G10 and the DFF G6


class TestLoadFromDisk:
    def test_shipped_s27_file(self):
        from pathlib import Path

        from repro.circuit.bench import load_bench

        path = Path(__file__).parent.parent / "data" / "s27.bench"
        netlist = load_bench(str(path))
        assert netlist.name == "s27"
        assert netlist.flip_flop_count() == 3


class TestRoundTrip:
    def test_s27_roundtrip(self):
        first = s27_bench()
        second = parse_bench(write_bench(first), name="s27")
        assert set(first.inputs) == set(second.inputs)
        assert first.outputs == second.outputs
        assert set(first.gates) == set(second.gates)
        for name, gate in first.gates.items():
            assert second.gates[name].gtype == gate.gtype
            assert second.gates[name].inputs == gate.inputs


def _evaluate_bench(netlist, values):
    """Evaluate the combinational part of a BenchNetlist; DFF outputs are
    taken from ``values`` (pseudo-inputs)."""
    ops = {
        "AND": lambda ins: all(ins),
        "NAND": lambda ins: not all(ins),
        "OR": lambda ins: any(ins),
        "NOR": lambda ins: not any(ins),
        "NOT": lambda ins: not ins[0],
        "BUFF": lambda ins: ins[0],
        "XOR": lambda ins: sum(ins) % 2 == 1,
        "XNOR": lambda ins: sum(ins) % 2 == 0,
    }
    cache = dict(values)

    def value_of(sig):
        if sig in cache:
            return cache[sig]
        gate = netlist.gates[sig]
        result = ops[gate.gtype]([value_of(i) for i in gate.inputs])
        cache[sig] = result
        return result

    return {
        sig: value_of(sig)
        for sig, gate in netlist.gates.items()
        if gate.gtype != "DFF"
    }


def _evaluate_circuit(circuit, values):
    """Evaluate a mapped Circuit; FF outputs come from ``values``."""
    net_values = dict(values)
    for levels in circuit.levelize():
        for cell in levels:
            ins = {
                pin.name: net_values[pin.net.name] for pin in cell.input_pins
            }
            net_values[cell.output_pin.net.name] = cell.ctype.evaluate(ins)
    return net_values


class TestMapping:
    def test_s27_cell_types(self, library):
        circuit = s27()
        bases = {cell.ctype.base_name for cell in circuit.cells.values()}
        assert bases <= {"INV", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3", "NOR4", "DFF"}

    def test_s27_has_clock(self):
        circuit = s27()
        assert circuit.clock_net is not None
        assert len(circuit.flip_flops()) == 3

    @pytest.mark.parametrize("seed", range(8))
    def test_s27_logic_equivalence(self, seed):
        """The mapped circuit computes the same booleans as the source
        netlist on random vectors."""
        netlist = s27_bench()
        circuit = s27()
        rng = random.Random(seed)
        sources = netlist.inputs + [g.output for g in netlist.gates.values() if g.gtype == "DFF"]
        values = {sig: rng.random() < 0.5 for sig in sources}
        expected = _evaluate_bench(netlist, values)
        actual = _evaluate_circuit(circuit, values)
        for sig, value in expected.items():
            assert actual[sig] == value, f"mismatch on {sig}"

    @pytest.mark.parametrize(
        "expr,n_inputs",
        [
            ("y = XOR(a, b)", 2),
            ("y = XNOR(a, b)", 2),
            ("y = AND(a, b, c, d, e)", 5),
            ("y = OR(a, b, c, d, e, f)", 6),
            ("y = NAND(a, b, c, d, e)", 5),
            ("y = XOR(a, b, c)", 3),
            ("y = BUFF(a)", 1),
        ],
    )
    def test_wide_and_exotic_gates_equivalent(self, expr, n_inputs):
        names = [chr(ord("a") + i) for i in range(n_inputs)]
        text = "".join(f"INPUT({n})\n" for n in names) + f"OUTPUT(y)\n{expr}\n"
        netlist = parse_bench(text)
        circuit = map_to_circuit(netlist)
        for vector in range(2**n_inputs):
            values = {n: bool((vector >> i) & 1) for i, n in enumerate(names)}
            expected = _evaluate_bench(netlist, values)["y"]
            assert _evaluate_circuit(circuit, values)["y"] == expected, values

    def test_drive_sizing_by_fanout(self):
        text = (
            "INPUT(a)\n" + "".join(f"OUTPUT(o{i})\n" for i in range(7))
            + "h = NOT(a)\n"
            + "".join(f"o{i} = NOT(h)\n" for i in range(7))
        )
        circuit = map_to_circuit(parse_bench(text))
        hub = circuit.nets["h"].driver_cell()
        assert hub.ctype.drive == "X4"
