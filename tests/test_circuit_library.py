"""Tests for the standard-cell library."""

import pytest

from repro.circuit.library import build_library, default_library


@pytest.fixture(scope="module")
def lib():
    return default_library()


class TestContents:
    def test_expected_cells_present(self, lib):
        for base in ("INV", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3", "NOR4",
                     "AOI21", "OAI21", "DFF"):
            for drive in ("X1", "X2", "X4"):
                assert f"{base}_{drive}" in lib

    def test_lookup_error_lists_available(self, lib):
        with pytest.raises(KeyError, match="available"):
            lib["XOR9_X1"]

    def test_iteration_and_len(self, lib):
        assert len(lib) == len(list(lib)) == 30

    def test_duplicate_add_rejected(self, lib):
        with pytest.raises(ValueError, match="duplicate"):
            lib.add(lib["INV_X1"])


class TestFunctions:
    def test_inv(self, lib):
        f = lib["INV_X1"].function
        assert f({"A": False}) is True
        assert f({"A": True}) is False

    def test_nand3(self, lib):
        f = lib["NAND3_X1"].function
        assert f({"A": True, "B": True, "C": True}) is False
        assert f({"A": True, "B": False, "C": True}) is True

    def test_nor2(self, lib):
        f = lib["NOR2_X1"].function
        assert f({"A": False, "B": False}) is True
        assert f({"A": True, "B": False}) is False

    def test_aoi21(self, lib):
        f = lib["AOI21_X1"].function
        assert f({"A": True, "B": True, "C": False}) is False
        assert f({"A": True, "B": False, "C": False}) is True
        assert f({"A": False, "B": False, "C": True}) is False

    def test_oai21(self, lib):
        f = lib["OAI21_X1"].function
        assert f({"A": False, "B": False, "C": True}) is True
        assert f({"A": True, "B": False, "C": True}) is False

    def test_dff_has_no_function(self, lib):
        assert lib["DFF_X1"].function is None
        with pytest.raises(ValueError, match="sequential"):
            lib["DFF_X1"].evaluate({})


class TestElectrical:
    def test_input_caps_positive(self, lib, process):
        for cell in lib:
            for pin in cell.inputs:
                assert cell.input_cap(pin, process) > 0

    def test_higher_drive_means_larger_input_cap(self, lib, process):
        assert lib["INV_X4"].input_cap("A", process) > lib["INV_X1"].input_cap("A", process)

    def test_nand_input_cap_below_nor(self, lib, process):
        """NOR gates stack PMOS (wide); their inputs are heavier."""
        assert lib["NOR2_X1"].input_cap("A", process) > lib["NAND2_X1"].input_cap("A", process)

    def test_output_parasitic_positive(self, lib, process):
        for cell in lib:
            assert cell.output_parasitic_cap(process) > 0

    def test_transistor_counts(self, lib):
        assert lib["INV_X1"].transistor_count() == 2
        assert lib["NAND2_X1"].transistor_count() == 4
        assert lib["AOI21_X1"].transistor_count() == 6
        assert lib["DFF_X1"].transistor_count() > 10


class TestMeta:
    def test_negative_unate_gates(self, lib):
        for name in ("INV_X1", "NAND2_X1", "NOR3_X1", "AOI21_X1"):
            assert all(u == -1 for u in lib[name].unate.values())

    def test_base_name_and_drive(self, lib):
        cell = lib["NAND3_X2"]
        assert cell.base_name == "NAND3"
        assert cell.drive == "X2"

    def test_dff_clk_to_q_positive(self, lib):
        assert lib["DFF_X1"].clk_to_q > 0

    def test_build_library_fresh_instance(self):
        assert build_library() is not default_library()
