"""Tests for the SVG layout renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.circuit import s27
from repro.layout.placement import place
from repro.layout.routing import route
from repro.layout.svgplot import SvgStyle, render_layout, save_layout_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture(scope="module")
def layout():
    circuit = s27()
    placement = place(circuit)
    routing = route(circuit, placement)
    return circuit, placement, routing


class TestRendering:
    def test_well_formed_xml(self, layout):
        _, placement, routing = layout
        svg = render_layout(placement, routing, title="s27")
        root = ET.fromstring(svg)
        assert root.tag == f"{SVG_NS}svg"

    def test_one_rect_per_cell(self, layout):
        circuit, placement, routing = layout
        root = ET.fromstring(render_layout(placement, routing))
        rects = root.findall(f"{SVG_NS}rect")
        # background + rows + cells
        expected = 1 + placement.n_rows + len(circuit.cells)
        assert len(rects) == expected

    def test_one_line_per_segment(self, layout):
        _, placement, routing = layout
        root = ET.fromstring(render_layout(placement, routing))
        lines = root.findall(f"{SVG_NS}line")
        assert len(lines) == len(routing.all_segments())

    def test_highlight_changes_stroke(self, layout):
        _, placement, routing = layout
        net = next(iter(routing.routes))
        style = SvgStyle()
        svg = render_layout(placement, routing, highlight_nets={net}, style=style)
        assert style.highlight_color in svg

    def test_placement_only(self, layout):
        _, placement, _ = layout
        root = ET.fromstring(render_layout(placement))
        assert not root.findall(f"{SVG_NS}line")

    def test_save_to_file(self, layout, tmp_path):
        _, placement, routing = layout
        target = tmp_path / "layout.svg"
        save_layout_svg(str(target), placement, routing)
        assert target.exists()
        ET.parse(target)  # parses cleanly

    def test_titles_escaped(self, layout):
        _, placement, routing = layout
        svg = render_layout(placement, routing, title="a <b> & c")
        assert "a &lt;b&gt; &amp; c" in svg
