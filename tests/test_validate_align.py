"""Unit tests for aggressor alignment mechanics."""

import pytest

from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode
from repro.validate.align import align_aggressors, quiet_simulation, simulate_path
from repro.validate.pathsim import build_path_circuit


@pytest.fixture(scope="module")
def circuit_setup(s27_design):
    sta = CrosstalkSTA(s27_design)
    result = sta.run(AnalysisMode.ITERATIVE)
    path = sta.critical_path(result)
    circuit = build_path_circuit(s27_design, path, result.final_pass.state)
    return s27_design, result, circuit


class TestQuietSimulation:
    def test_restores_aggressor_times(self, circuit_setup):
        _, _, circuit = circuit_setup
        saved = [h.t_switch for h in circuit.aggressors]
        quiet_simulation(circuit, steps=800)
        assert [h.t_switch for h in circuit.aggressors] == saved

    def test_quiet_below_aligned(self, circuit_setup):
        _, _, circuit = circuit_setup
        quiet = quiet_simulation(circuit, steps=1200)
        aligned = align_aggressors(circuit, steps=1200, max_iterations=3)
        assert quiet.path_delay <= aligned.path_delay + 1e-12


class TestAlignment:
    def test_history_recorded(self, circuit_setup):
        _, _, circuit = circuit_setup
        outcome = align_aggressors(circuit, steps=1200, max_iterations=3)
        assert 1 <= len(outcome.history) <= 3
        assert outcome.history[0].iteration == 1

    def test_alignment_improves_over_first_iteration(self, circuit_setup):
        """The fixed point cannot end below the first simulate (best is
        tracked across iterations)."""
        _, _, circuit = circuit_setup
        outcome = align_aggressors(circuit, steps=1200, max_iterations=3)
        first = outcome.history[0].endpoint_arrival
        assert outcome.endpoint_arrival >= first - 1e-12

    def test_window_constraint_never_exceeds_unconstrained(self, circuit_setup):
        _, result, circuit = circuit_setup
        unconstrained = align_aggressors(circuit, steps=1200, max_iterations=3)
        constrained = align_aggressors(
            circuit,
            steps=1200,
            max_iterations=3,
            windows=result.final_pass.state.window_snapshot(),
        )
        assert constrained.path_delay <= unconstrained.path_delay + 1e-12

    def test_simulate_path_measures_stimulus(self, circuit_setup):
        _, _, circuit = circuit_setup
        outcome = simulate_path(circuit, steps=800)
        assert outcome.stimulus_cross >= circuit.stimulus_t_start
        assert outcome.endpoint_arrival > outcome.stimulus_cross
