"""Tests for the SPICE deck exporter."""

import pytest

from repro.devices.mosfet import nmos, pmos
from repro.spice.elements import PwlSource
from repro.spice.netlist import SimCircuit
from repro.spice.writer import write_spice


@pytest.fixture()
def inverter_deck():
    circuit = SimCircuit("inv")
    circuit.add_vdc("vdd", 3.3)
    circuit.add_source(PwlSource("in", "0", [(0.1e-9, 0.0), (0.2e-9, 3.3)]))
    circuit.add_mosfet("mp", "out", "in", "vdd", pmos(4e-6))
    circuit.add_mosfet("mn", "out", "in", "0", nmos(2e-6))
    circuit.add_capacitor("out", "0", 30e-15)
    circuit.add_resistor("out", "load", 100.0)
    return circuit, write_spice(circuit, probes=["out"])


class TestWriter:
    def test_model_cards_present(self, inverter_deck):
        _, deck = inverter_deck
        assert ".MODEL NMOS1 NMOS" in deck
        assert ".MODEL PMOS1 PMOS" in deck
        assert "VTO=0.600" in deck

    def test_element_counts(self, inverter_deck):
        circuit, deck = inverter_deck
        lines = deck.splitlines()
        assert sum(1 for l in lines if l.startswith("M")) == len(circuit.mosfets)
        assert sum(1 for l in lines if l.startswith("C")) == len(circuit.capacitors)
        assert sum(1 for l in lines if l.startswith("R")) == len(circuit.resistors)
        assert sum(1 for l in lines if l.startswith("V")) == len(circuit.sources)

    def test_pwl_points_serialised(self, inverter_deck):
        _, deck = inverter_deck
        assert "PWL(" in deck
        assert "1e-10 0" in deck.replace(".1e-09", "1e-10") or "1e-10" in deck

    def test_tran_and_probe(self, inverter_deck):
        _, deck = inverter_deck
        assert ".TRAN" in deck
        assert ".PRINT TRAN V(out)" in deck
        assert deck.rstrip().endswith(".END")

    def test_node_sanitisation(self):
        circuit = SimCircuit("weird")
        circuit.add_capacitor("a/b::c", "0", 1e-15)
        deck = write_spice(circuit)
        assert "a_b__c" in deck
        assert "a/b" not in deck

    def test_path_circuit_exports(self, s27_design):
        """The real validation circuits serialise cleanly."""
        from repro.core.analyzer import CrosstalkSTA
        from repro.core.modes import AnalysisMode
        from repro.validate import build_path_circuit

        sta = CrosstalkSTA(s27_design)
        result = sta.run(AnalysisMode.ITERATIVE)
        path = sta.critical_path(result)
        circuit = build_path_circuit(s27_design, path, result.final_pass.state)
        deck = write_spice(circuit.sim, probes=[circuit.endpoint_node])
        assert deck.count("\nM") == len(circuit.sim.mosfets)
        assert ".END" in deck
