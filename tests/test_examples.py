"""Smoke tests: the fast example scripts run end to end.

The examples double as integration tests of the public API; the two
quickest run here in full (each carries internal assertions).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart")
        out = capsys.readouterr().out
        assert "Bound ordering verified" in out
        assert "Critical path" in out

    def test_coupling_demo(self, capsys):
        run_example("coupling_demo")
        out = capsys.readouterr().out
        assert "crosstalk delay penalty" in out
        assert "active coupling model" in out

    def test_plot_layout(self, tmp_path, capsys):
        target = tmp_path / "layout.svg"
        run_example("plot_layout", [str(target)])
        assert target.exists()
        assert "<svg" in target.read_text()
