"""Tests for parasitic extraction."""

import pytest

from repro.circuit import s27
from repro.circuit.generators import GeneratorSpec, generate_circuit
from repro.layout.extraction import extract
from repro.layout.placement import place
from repro.layout.routing import NetRoute, RoutingResult, route
from repro.layout.geometry import TrackSegment
from repro.layout.technology import Technology, default_technology


@pytest.fixture(scope="module")
def extracted():
    spec = GeneratorSpec(
        name="ex", seed=3, n_inputs=5, n_outputs=5, n_ff=10, n_gates=120, depth=8
    )
    circuit = generate_circuit(spec)
    placement = place(circuit)
    routing = route(circuit, placement)
    return circuit, routing, extract(routing)


def hand_routing(segments_by_net):
    """Build a RoutingResult with explicit trunk segments only."""
    result = RoutingResult()
    for net, seg in segments_by_net.items():
        result.routes[net] = NetRoute(
            net=net,
            trunk=seg,
            trunk_y=seg.track * 1.5,
            driver_tap=(f"{net}_drv", seg.lo, None),
            sink_taps=[(f"{net}_snk", seg.hi, None)],
        )
    return result


class TestCouplingExtraction:
    def test_adjacent_track_coupling_value(self):
        """Two parallel 100 um runs on adjacent tracks couple with
        exactly c_couple_per_um * overlap."""
        tech = default_technology()
        routing = hand_routing({
            "a": TrackSegment("a", 1, 10, 0.0, 100.0),
            "b": TrackSegment("b", 1, 11, 20.0, 80.0),
        })
        result = extract(routing, tech)
        expected = 60.0 * tech.coupling_cap_per_um(1)
        assert result.nets["a"].couplings["b"] == pytest.approx(expected)

    def test_coupling_symmetric(self):
        routing = hand_routing({
            "a": TrackSegment("a", 1, 10, 0.0, 100.0),
            "b": TrackSegment("b", 1, 11, 0.0, 100.0),
        })
        result = extract(routing)
        assert result.nets["a"].couplings["b"] == pytest.approx(
            result.nets["b"].couplings["a"]
        )

    def test_second_neighbour_weaker(self):
        tech = default_technology()
        routing = hand_routing({
            "a": TrackSegment("a", 1, 10, 0.0, 100.0),
            "b": TrackSegment("b", 1, 11, 0.0, 100.0),
            "c": TrackSegment("c", 1, 12, 0.0, 100.0),
        })
        result = extract(routing, tech)
        near = result.nets["a"].couplings["b"]
        far = result.nets["a"].couplings["c"]
        assert far < near

    def test_different_layers_do_not_couple(self):
        routing = hand_routing({
            "a": TrackSegment("a", 1, 10, 0.0, 100.0),
            "b": TrackSegment("b", 2, 11, 0.0, 100.0),
        })
        result = extract(routing)
        assert result.nets["a"].couplings == {}

    def test_disjoint_spans_do_not_couple(self):
        routing = hand_routing({
            "a": TrackSegment("a", 1, 10, 0.0, 40.0),
            "b": TrackSegment("b", 1, 11, 50.0, 90.0),
        })
        result = extract(routing)
        assert result.nets["a"].couplings == {}

    def test_full_design_symmetry_and_positivity(self, extracted):
        _, _, result = extracted
        for name, pnet in result.nets.items():
            for other, cap in pnet.couplings.items():
                assert cap > 0
                assert result.nets[other].couplings[name] == pytest.approx(cap)
                assert other != name


class TestRcTrees:
    def test_tree_terminals_cover_sinks(self, extracted):
        circuit, routing, result = extracted
        for net_name, pnet in result.nets.items():
            route_obj = routing.routes[net_name]
            terminals = set(pnet.rc_tree.terminal_names())
            for sink_name, _, _ in route_obj.sink_taps:
                assert sink_name in terminals

    def test_tree_cap_covers_wirelength(self, extracted):
        """The tree accounts for at least the drawn metal (residual lumped
        at the root; tap-span excess kept, conservatively)."""
        _, routing, result = extracted
        tech = default_technology()
        for net_name, pnet in result.nets.items():
            wl = routing.routes[net_name].wirelength()
            assert pnet.rc_tree.total_cap() >= wl * tech.c_ground_per_um * (1 - 1e-9)
            assert pnet.rc_tree.total_cap() <= wl * tech.c_ground_per_um * 1.25 + 1e-18

    def test_wire_ground_cap_equals_tree_cap(self, extracted):
        _, _, result = extracted
        for pnet in result.nets.values():
            assert pnet.c_wire_ground == pytest.approx(pnet.rc_tree.total_cap(), rel=1e-6, abs=1e-21)

    def test_resistance_nonnegative(self, extracted):
        _, _, result = extracted
        for pnet in result.nets.values():
            assert pnet.r_total >= 0

    def test_longer_wire_more_resistance(self):
        tech = default_technology()
        short = hand_routing({"a": TrackSegment("a", 1, 0, 0.0, 10.0)})
        long = hand_routing({"a": TrackSegment("a", 1, 0, 0.0, 1000.0)})
        r_short = extract(short, tech).nets["a"].r_total
        r_long = extract(long, tech).nets["a"].r_total
        assert r_long > r_short

    def test_coupling_pairs_deduplicated(self, extracted):
        _, _, result = extracted
        pairs = result.coupling_pairs()
        keys = [(a, b) for a, b, _ in pairs]
        assert len(keys) == len(set(keys))
        assert all(a < b for a, b in keys)
