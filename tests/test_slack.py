"""Tests for the graph-wide slack engine (backward required-time pass).

The invariants pinned here are the tentpole's acceptance criteria:
per-arc slacks telescope bit-exactly onto the endpoint slack in every
analysis mode, and the vectorized columnar sweep is ``float.hex()``-
identical to the object-graph reference sweep.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import s27
from repro.core.analyzer import CrosstalkSTA
from repro.core.constraints import check_hold, check_setup
from repro.core.minpath import MinAnalysisMode, MinPropagator
from repro.core.modes import AnalysisMode, Core, StaConfig
from repro.core.slack import (
    SLACK_SCHEMA,
    compute_slack,
    format_slack,
    slack_payload,
    validate_slack,
)
from repro.errors import InputError
from repro.flow import prepare_design

ALL_MODES = list(AnalysisMode)


@pytest.fixture(scope="module")
def design():
    return prepare_design(s27())


@pytest.fixture(scope="module")
def results(design):
    """One forward run per (mode, core); slack passes reuse them."""
    out = {}
    for core in (Core.OBJECT, Core.COLUMNAR):
        sta = CrosstalkSTA(design, StaConfig(core=core))
        for mode in ALL_MODES:
            out[(mode, core)] = sta.run(mode)
    return out


def _slack_hexes(slack):
    return (
        float(slack.worst_slack).hex(),
        {k: float(v).hex() for k, v in slack.net_slack.items()},
        {k: float(v).hex() for k, v in slack.arc_slack.items()},
    )


class TestCrossCoreIdentity:
    @pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: m.value)
    @pytest.mark.parametrize("period", [1.2e-9, 0.4e-9], ids=["met", "violated"])
    def test_columnar_matches_object_bitwise(self, design, results, mode, period):
        obj = compute_slack(design, results[(mode, Core.OBJECT)], period)
        col = compute_slack(design, results[(mode, Core.COLUMNAR)], period)
        assert obj.core is Core.OBJECT and col.core is Core.COLUMNAR
        assert _slack_hexes(obj) == _slack_hexes(col)
        assert obj.violations == col.violations
        assert (
            float(obj.total_negative_slack).hex()
            == float(col.total_negative_slack).hex()
        )

    @pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: m.value)
    def test_payload_telescopes_bit_exactly(self, design, results, mode):
        result = results[(mode, Core.COLUMNAR)]
        slack = compute_slack(design, result, 0.4e-9)
        payload = slack_payload(design.circuit, result, slack, k=2)
        assert payload["schema"] == SLACK_SCHEMA
        validate_slack(payload)  # raises on any bit mismatch
        assert "worst slack" in format_slack(payload)


class TestSlackSemantics:
    def test_worst_endpoint_matches_setup_check(self, design, results):
        result = results[(AnalysisMode.ITERATIVE, Core.OBJECT)]
        slack = compute_slack(design, result, 0.4e-9)
        report = check_setup(result, 0.4e-9)
        assert slack.worst_slack == report.worst.slack
        assert slack.worst_endpoint == report.worst.endpoint
        assert slack.violations == len(report.failing())
        assert not slack.met and slack.worst_slack < 0.0

    def test_net_slack_bounded_by_fanout_arc_slacks(self, design, results):
        """A net's slack is the min over its fanout arcs' slacks --
        exactly, because both sides share the same float subtractions."""
        result = results[(AnalysisMode.ITERATIVE, Core.OBJECT)]
        slack = compute_slack(design, result, 0.4e-9)
        by_input: dict[tuple[str, str], list[float]] = {}
        for (cell_name, pin_name, direction), value in slack.arc_slack.items():
            cell = design.circuit.cells[cell_name]
            # Flip-flop arcs are keyed by the compiled synthetic pin name;
            # the gate-arc invariant is what this test pins.
            pin = cell.pins.get(pin_name)
            if cell.is_sequential or pin is None or pin.net is None:
                continue
            by_input.setdefault((pin.net.name, direction), []).append(value)
        checked = 0
        for key, arc_values in by_input.items():
            net_value = slack.net_slack.get(key)
            if net_value is None:
                continue
            assert min(arc_values) >= net_value
            checked += 1
        assert checked > 10

    def test_total_negative_slack_accumulates_failures(self, design, results):
        result = results[(AnalysisMode.WORST_CASE, Core.COLUMNAR)]
        slack = compute_slack(design, result, 0.4e-9)
        expected = sum(s.slack for s in slack.endpoints.slacks if s.slack < 0.0)
        assert slack.total_negative_slack == pytest.approx(expected, abs=1e-18)
        assert slack.violations == sum(
            1 for s in slack.endpoints.slacks if s.slack < 0.0
        )

    def test_met_period_has_no_violations(self, design, results):
        slack = compute_slack(
            design, results[(AnalysisMode.BEST_CASE, Core.OBJECT)], 1.5e-9
        )
        assert slack.met
        assert slack.violations == 0
        assert slack.total_negative_slack == 0.0
        assert all(v >= 0.0 for v in slack.net_slack.values())


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(period_ps=st.floats(min_value=300.0, max_value=2000.0))
def test_property_telescoping_and_core_invariance(design, results, period_ps):
    """For any clock period: per-arc slacks telescope onto the endpoint
    slack bit-exactly and the two cores agree ``float.hex()``-wise."""
    period = period_ps * 1e-12
    result_obj = results[(AnalysisMode.ITERATIVE, Core.OBJECT)]
    result_col = results[(AnalysisMode.ITERATIVE, Core.COLUMNAR)]
    obj = compute_slack(design, result_obj, period)
    col = compute_slack(design, result_col, period)
    assert _slack_hexes(obj) == _slack_hexes(col)
    payload = slack_payload(design.circuit, result_col, col, k=1)
    validate_slack(payload)
    # The reported worst endpoint tracks the minimum over all nets (to
    # rounding: the seed subtracts the terminal's Elmore delta in a
    # different association than the endpoint check, so the two floats
    # may differ in the last ulp).
    finite = [v for v in obj.net_slack.values() if math.isfinite(v)]
    assert min(finite) == pytest.approx(obj.worst_slack, abs=1e-15)


class TestConstraintConfig:
    def test_bad_clock_period_rejected(self):
        with pytest.raises(InputError):
            StaConfig(clock_period=0.0)
        with pytest.raises(InputError):
            StaConfig(clock_period=-1e-9)

    def test_negative_requirements_rejected(self):
        with pytest.raises(InputError):
            StaConfig(setup_time=-1e-12)
        with pytest.raises(InputError):
            StaConfig(hold_time=-1e-12)

    def test_check_hold_defaults_from_config(self, design):
        min_result = MinPropagator(design).run(MinAnalysisMode.WORST)
        defaulted = check_hold(min_result)
        explicit = check_hold(min_result, StaConfig().hold_time)
        assert defaulted.hold_time == explicit.hold_time
        assert [s.slack for s in defaulted.slacks] == [
            s.slack for s in explicit.slacks
        ]

    def test_analyzer_attaches_slack_only_with_period(self, design):
        with_period = CrosstalkSTA(
            design, StaConfig(clock_period=1.2e-9)
        ).run(AnalysisMode.BEST_CASE)
        assert with_period.slack is not None
        assert with_period.worst_slack == with_period.slack.worst_slack
        without = CrosstalkSTA(design, StaConfig()).run(AnalysisMode.BEST_CASE)
        assert without.slack is None
        assert without.worst_slack is None

    def test_columnar_core_requires_columnar_state(self, design, results):
        with pytest.raises(InputError):
            compute_slack(
                design,
                results[(AnalysisMode.ITERATIVE, Core.OBJECT)],
                1.0e-9,
                core=Core.COLUMNAR,
            )
