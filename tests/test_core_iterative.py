"""Tests for the iterative refinement algorithm and Esperance."""

import pytest

from repro.core.iterative import (
    IterationRecord,
    esperance_recalc_cells,
    run_iterative,
)
from repro.core.modes import AnalysisMode, StaConfig
from repro.core.propagation import Propagator


class TestIterationRecordGuards:
    def _record(self, **overrides) -> IterationRecord:
        base = dict(
            index=1,
            longest_delay=1e-9,
            waveform_evaluations=10,
            seconds=0.1,
            recalculated_cells=5,
            total_cells=10,
            cache_evaluations=8,
            cache_hits=2,
        )
        base.update(overrides)
        return IterationRecord(**base)

    def test_recalc_fraction(self):
        assert self._record().recalc_fraction == 0.5

    def test_recalc_fraction_zero_cells(self):
        record = self._record(recalculated_cells=0, total_cells=0)
        assert record.recalc_fraction == 0.0

    def test_cache_hit_rate(self):
        assert self._record().cache_hit_rate == 0.2

    def test_cache_hit_rate_zero_lookups(self):
        record = self._record(cache_evaluations=0, cache_hits=0)
        assert record.cache_hit_rate == 0.0

    def test_to_dict_round_trips_guards(self):
        import json

        record = self._record(cache_evaluations=0, cache_hits=0, total_cells=0)
        data = json.loads(json.dumps(record.to_dict()))
        assert data["recalc_fraction"] == 0.0
        assert data["cache_hit_rate"] == 0.0
        assert data["longest_delay_ns"] == pytest.approx(1.0)


@pytest.fixture(scope="module")
def iterative_result(small_design):
    propagator = Propagator(small_design, StaConfig(mode=AnalysisMode.ITERATIVE))
    return run_iterative(propagator)


class TestConvergence:
    def test_at_least_two_passes(self, iterative_result):
        """The do-while runs the one-step STA at least twice (paper 5.2)."""
        assert iterative_result.passes >= 2

    def test_monotone_non_increasing(self, iterative_result):
        delays = [r.longest_delay for r in iterative_result.history]
        for earlier, later in zip(delays, delays[1:]):
            assert later <= earlier + 1e-12

    def test_final_is_minimum(self, iterative_result):
        delays = [r.longest_delay for r in iterative_result.history]
        assert iterative_result.final.longest_delay == pytest.approx(min(delays))

    def test_stops_when_not_improving(self, iterative_result):
        """The last pass did not improve (that is why the loop ended),
        unless the pass budget ran out first."""
        history = iterative_result.history
        if len(history) < StaConfig().max_iterations:
            assert history[-1].longest_delay >= history[-2].longest_delay - 1e-12

    def test_iteration_budget_respected(self, small_design):
        config = StaConfig(mode=AnalysisMode.ITERATIVE, max_iterations=2)
        propagator = Propagator(small_design, config)
        result = run_iterative(propagator)
        assert result.passes <= 2
        metrics = propagator.obs.metrics
        assert metrics.gauge("iterative.passes").value == result.passes
        assert metrics.gauge("iterative.coupling_waves").value > 0

    def test_second_pass_not_above_first(self, iterative_result):
        """Stored quiescent times can only remove coupling assumptions."""
        first, second = iterative_result.history[0], iterative_result.history[1]
        assert second.longest_delay <= first.longest_delay + 1e-12


class TestEsperance:
    def test_recalc_set_is_subset_of_cells(self, small_design, iterative_result):
        propagator = Propagator(small_design, StaConfig(mode=AnalysisMode.ITERATIVE))
        pass_result = propagator.run_pass()
        recalc = esperance_recalc_cells(small_design, propagator, pass_result, 0.15)
        all_cells = set(small_design.circuit.cells)
        assert recalc <= all_cells
        assert len(recalc) < len(all_cells)

    def test_critical_driver_always_recalculated(self, small_design):
        propagator = Propagator(small_design, StaConfig(mode=AnalysisMode.ITERATIVE))
        pass_result = propagator.run_pass()
        recalc = esperance_recalc_cells(small_design, propagator, pass_result, 0.10)
        from repro.core.paths import extract_critical_path

        path = extract_critical_path(small_design.circuit, pass_result)
        assert path.steps[-1].cell in recalc

    def test_larger_slack_threshold_recalculates_more(self, small_design):
        propagator = Propagator(small_design, StaConfig(mode=AnalysisMode.ITERATIVE))
        pass_result = propagator.run_pass()
        narrow = esperance_recalc_cells(small_design, propagator, pass_result, 0.05)
        wide = esperance_recalc_cells(small_design, propagator, pass_result, 0.50)
        assert narrow <= wide

    def test_esperance_result_still_an_upper_bound(self, small_design, iterative_result):
        """Esperance trades work for (possibly) looser convergence but
        never reports below a full iterative pass set's floor unsafely:
        its final delay stays >= the exact iterative final."""
        config = StaConfig(mode=AnalysisMode.ITERATIVE, esperance=True)
        esperance = run_iterative(Propagator(small_design, config))
        exact = iterative_result
        assert esperance.final.longest_delay >= exact.final.longest_delay - 1e-12
        # And it still improves on the plain one-step first pass.
        assert esperance.final.longest_delay <= esperance.history[0].longest_delay + 1e-12

    def test_esperance_recomputes_fewer_cells(self, small_design):
        config = StaConfig(mode=AnalysisMode.ITERATIVE, esperance=True)
        result = run_iterative(Propagator(small_design, config))
        later = [r for r in result.history if r.index >= 2]
        assert later, "esperance needs at least two passes"
        assert any(r.recalculated_cells < r.total_cells for r in later)
