"""Tests for placement, routing, technology and geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import s27
from repro.circuit.generators import GeneratorSpec, generate_circuit
from repro.layout.geometry import Point, TrackOccupancy, TrackSegment, interval_overlaps
from repro.layout.placement import place
from repro.layout.routing import route
from repro.layout.technology import Technology, default_technology


@pytest.fixture(scope="module")
def placed_s27():
    circuit = s27()
    return circuit, place(circuit)


@pytest.fixture(scope="module")
def routed_medium():
    spec = GeneratorSpec(
        name="med", seed=11, n_inputs=5, n_outputs=5, n_ff=10, n_gates=120, depth=8
    )
    circuit = generate_circuit(spec)
    placement = place(circuit)
    return circuit, placement, route(circuit, placement)


class TestGeometry:
    def test_point_manhattan(self):
        assert Point(0, 0).manhattan(Point(3, 4)) == 7

    def test_segment_validation(self):
        with pytest.raises(ValueError, match="layer"):
            TrackSegment("n", 3, 0, 0.0, 1.0)
        with pytest.raises(ValueError, match="hi < lo"):
            TrackSegment("n", 1, 0, 2.0, 1.0)

    def test_segment_overlap(self):
        a = TrackSegment("a", 1, 0, 0.0, 10.0)
        b = TrackSegment("b", 1, 1, 5.0, 15.0)
        assert a.overlap(b) == 5.0
        assert b.overlap(a) == 5.0

    def test_occupancy_first_fit(self):
        occ = TrackOccupancy()
        occ.add(0.0, 10.0)
        assert not occ.fits(5.0, 15.0)
        assert occ.fits(11.0, 20.0)
        assert not occ.fits(9.0, 20.0, clearance=2.0)

    @given(
        lo_a=st.floats(0, 100), len_a=st.floats(0.1, 50),
        lo_b=st.floats(0, 100), len_b=st.floats(0.1, 50),
    )
    @settings(max_examples=50, deadline=None)
    def test_interval_overlap_symmetric(self, lo_a, len_a, lo_b, len_b):
        assert interval_overlaps(lo_a, lo_a + len_a, lo_b, lo_b + len_b) == \
            interval_overlaps(lo_b, lo_b + len_b, lo_a, lo_a + len_a)


class TestTechnology:
    def test_coupling_decays_with_distance(self):
        tech = default_technology()
        assert tech.coupling_cap_per_um(1) > tech.coupling_cap_per_um(2)

    def test_coupling_zero_beyond_radius(self):
        tech = default_technology()
        assert tech.coupling_cap_per_um(tech.max_coupling_tracks + 1) == 0.0

    def test_coupling_distance_validated(self):
        with pytest.raises(ValueError):
            default_technology().coupling_cap_per_um(0)

    def test_cell_width_grows_with_transistors(self):
        tech = default_technology()
        assert tech.cell_width(8) > tech.cell_width(2)


class TestPlacement:
    def test_all_cells_placed(self, placed_s27):
        circuit, placement = placed_s27
        assert set(placement.cell_pos) == set(circuit.cells)

    def test_cells_inside_die(self, placed_s27):
        _, placement = placed_s27
        for point in placement.cell_pos.values():
            assert 0 <= point.x <= placement.die_width + 1e-9
            assert 0 <= point.y <= placement.die_height + 1e-9

    def test_cells_on_row_centres(self, placed_s27):
        _, placement = placed_s27
        pitch = placement.row_pitch or placement.technology.row_height
        for point in placement.cell_pos.values():
            frac = (point.y / pitch) % 1.0
            assert frac == pytest.approx(0.5, abs=1e-6)

    def test_no_overlaps_within_rows(self, routed_medium):
        circuit, placement, _ = routed_medium
        tech = placement.technology
        by_row = {}
        for name, point in placement.cell_pos.items():
            width = tech.cell_width(circuit.cells[name].ctype.transistor_count())
            by_row.setdefault(round(point.y, 3), []).append((point.x - width / 2, point.x + width / 2))
        for intervals in by_row.values():
            intervals.sort()
            for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
                assert hi1 <= lo2 + 1e-6

    def test_ports_on_edges(self, placed_s27):
        circuit, placement = placed_s27
        for name in circuit.inputs:
            assert placement.port_pos[name].x == 0.0
        for name in circuit.outputs:
            assert placement.port_pos[name].x == pytest.approx(placement.die_width)

    def test_refinement_reduces_wirelength(self):
        circuit = s27()
        rough = place(circuit, refine_iterations=0)
        refined = place(circuit, refine_iterations=8)
        assert refined.total_wirelength_estimate() <= rough.total_wirelength_estimate() * 1.05

    def test_unknown_terminal_raises(self, placed_s27):
        _, placement = placed_s27
        with pytest.raises(KeyError):
            placement.location("nonsense")

    def test_row_pitch_at_least_technology_height(self, routed_medium):
        _, placement, _ = routed_medium
        assert placement.row_pitch >= placement.technology.row_height - 1e-9

    def test_channel_stretch_scales_with_demand(self):
        """Bigger designs need taller channels: the realised row pitch
        grows with circuit size."""
        small = place(generate_circuit(GeneratorSpec(
            name="s", seed=5, n_inputs=4, n_outputs=4, n_ff=6, n_gates=60, depth=5
        )))
        large = place(generate_circuit(GeneratorSpec(
            name="l", seed=5, n_inputs=8, n_outputs=8, n_ff=60, n_gates=900, depth=10
        )))
        assert large.row_pitch >= small.row_pitch

    def test_stretch_keeps_cells_on_pitch_grid(self, routed_medium):
        _, placement, _ = routed_medium
        for point in placement.cell_pos.values():
            frac = (point.y / placement.row_pitch) % 1.0
            assert frac == pytest.approx(0.5, abs=1e-6)


class TestRouting:
    def test_every_driven_net_routed(self, routed_medium):
        circuit, _, routing = routed_medium
        expected = {
            n.name for n in circuit.nets.values() if n.driver is not None and n.sinks
        }
        assert set(routing.routes) == expected

    def test_no_same_track_overlaps(self, routed_medium):
        """The router's core guarantee: one net per (layer, track)
        interval."""
        _, _, routing = routed_medium
        by_track = {}
        for seg in routing.all_segments():
            by_track.setdefault((seg.layer, seg.track), []).append(seg)
        for segs in by_track.values():
            segs.sort(key=lambda s: s.lo)
            for a, b in zip(segs, segs[1:]):
                assert a.hi <= b.lo + 1e-9, (a, b)

    def test_route_connects_all_terminals(self, routed_medium):
        circuit, placement, routing = routed_medium
        for net_name, route_obj in routing.routes.items():
            net = circuit.nets[net_name]
            assert len(route_obj.sink_taps) == len(net.sinks)

    def test_branches_touch_trunk(self, routed_medium):
        _, _, routing = routed_medium
        for route_obj in routing.routes.values():
            for _, _, branch in [route_obj.driver_tap] + route_obj.sink_taps:
                if branch is None:
                    continue
                assert branch.lo <= route_obj.trunk_y + 1e-6
                assert branch.hi >= route_obj.trunk_y - 1e-6

    def test_deterministic(self):
        circuit = s27()
        placement = place(circuit)
        first = route(circuit, placement)
        second = route(circuit, placement)
        assert first.total_wirelength() == second.total_wirelength()

    def test_wirelength_positive(self, routed_medium):
        _, _, routing = routed_medium
        assert routing.total_wirelength() > 0
