"""Tests for simulator elements and the circuit container."""

import pytest

from repro.devices.mosfet import nmos
from repro.spice.elements import Capacitor, PwlSource, Resistor
from repro.spice.netlist import SimCircuit


class TestElements:
    def test_resistor_conductance(self):
        assert Resistor("a", "b", 100.0).conductance == pytest.approx(0.01)

    def test_resistor_positive(self):
        with pytest.raises(ValueError):
            Resistor("a", "b", 0.0)

    def test_capacitor_nonnegative(self):
        with pytest.raises(ValueError):
            Capacitor("a", "b", -1e-15)


class TestPwlSource:
    def test_interpolation(self):
        src = PwlSource("a", "0", [(1.0, 0.0), (2.0, 3.3)])
        assert src.voltage_at(0.0) == 0.0
        assert src.voltage_at(1.5) == pytest.approx(1.65)
        assert src.voltage_at(5.0) == pytest.approx(3.3)

    def test_times_must_not_decrease(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            PwlSource("a", "0", [(2.0, 0.0), (1.0, 1.0)])

    def test_needs_points(self):
        with pytest.raises(ValueError, match="at least one"):
            PwlSource("a", "0", [])

    def test_step_factory(self):
        src = PwlSource.step("a", 0.0, 3.3, 1e-9, 100e-12)
        assert src.voltage_at(0.0) == 0.0
        assert src.voltage_at(1.05e-9) == pytest.approx(1.65)
        assert src.voltage_at(2e-9) == pytest.approx(3.3)

    def test_dc_factory(self):
        src = PwlSource.dc("a", 2.5)
        assert src.voltage_at(0.0) == 2.5
        assert src.voltage_at(1.0) == 2.5

    def test_vertical_step(self):
        src = PwlSource("a", "0", [(1.0, 0.0), (1.0, 3.3)])
        assert src.voltage_at(0.999999) == 0.0
        assert src.voltage_at(1.000001) == pytest.approx(3.3)


class TestSimCircuit:
    def test_ground_aliases(self):
        circuit = SimCircuit()
        assert circuit.node("0") == -1
        assert circuit.node("gnd") == -1
        assert circuit.node("GND") == -1

    def test_node_indices_stable(self):
        circuit = SimCircuit()
        a = circuit.node("a")
        b = circuit.node("b")
        assert circuit.node("a") == a
        assert a != b
        assert circuit.node_count == 2

    def test_element_factories_register_nodes(self):
        circuit = SimCircuit()
        circuit.add_resistor("x", "y", 10.0)
        circuit.add_capacitor("y", "0", 1e-15)
        circuit.add_mosfet("m1", "d", "g", "0", nmos(2e-6))
        assert set(circuit.node_names) == {"x", "y", "d", "g"}
        stats = circuit.stats()
        assert stats["resistors"] == 1
        assert stats["capacitors"] == 1
        assert stats["mosfets"] == 1
