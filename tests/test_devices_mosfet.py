"""Tests for the analytic MOSFET model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.mosfet import (
    Mosfet,
    MosfetParams,
    ids_generic,
    nmos,
    parallel_equivalent_width,
    pmos,
    series_equivalent_width,
)
from repro.devices.params import default_process

VDD = default_process().vdd

voltages = st.floats(min_value=-0.3, max_value=VDD + 0.3)


class TestPolarity:
    def test_nmos_on_current_positive(self):
        assert nmos(2e-6).ids(VDD, VDD) > 0

    def test_pmos_on_current_negative(self):
        assert pmos(4e-6).ids(-VDD, -VDD) < 0

    def test_nmos_off_current_negligible(self):
        device = nmos(2e-6)
        assert abs(device.ids(0.0, VDD)) < 1e-9 * device.saturation_current()

    def test_pmos_off_current_negligible(self):
        device = pmos(4e-6)
        assert abs(device.ids(0.0, -VDD)) < 1e-9 * device.saturation_current()

    def test_invalid_polarity_rejected(self):
        with pytest.raises(ValueError, match="polarity"):
            MosfetParams(polarity=0, width=1e-6, length=0.5e-6)

    def test_nonpositive_width_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            MosfetParams(polarity=1, width=0.0, length=0.5e-6)


class TestScaling:
    def test_current_scales_with_width(self):
        narrow = nmos(1e-6)
        wide = nmos(4e-6)
        ratio = wide.saturation_current() / narrow.saturation_current()
        assert ratio == pytest.approx(4.0, rel=1e-6)

    def test_pmos_weaker_than_nmos_at_equal_width(self):
        assert pmos(2e-6).saturation_current() < nmos(2e-6).saturation_current()

    def test_zero_vds_zero_current(self):
        assert nmos(2e-6).ids(VDD, 0.0) == pytest.approx(0.0, abs=1e-15)


class TestMonotonicity:
    @given(vgs=voltages, vds=st.floats(min_value=0.0, max_value=VDD), dv=st.floats(min_value=1e-3, max_value=0.5))
    @settings(max_examples=60, deadline=None)
    def test_nmos_monotone_in_vgs(self, vgs, vds, dv):
        device = nmos(2e-6)
        assert device.ids(vgs + dv, vds) >= device.ids(vgs, vds) - 1e-15

    @given(vgs=voltages, vds=st.floats(min_value=0.0, max_value=VDD - 0.5), dv=st.floats(min_value=1e-3, max_value=0.5))
    @settings(max_examples=60, deadline=None)
    def test_nmos_monotone_in_vds(self, vgs, vds, dv):
        device = nmos(2e-6)
        assert device.ids(vgs, vds + dv) >= device.ids(vgs, vds) - 1e-15

    @given(vgs=voltages, vds=voltages)
    @settings(max_examples=60, deadline=None)
    def test_channel_symmetry(self, vgs, vds):
        """Swapping drain and source negates the current: I(vgs, vds) =
        -I(vgs - vds, -vds)."""
        device = nmos(2e-6)
        forward = device.ids(vgs, vds)
        swapped = device.ids(vgs - vds, -vds)
        scale = max(abs(forward), device.saturation_current() * 1e-6)
        assert forward == pytest.approx(-swapped, rel=1e-9, abs=scale * 1e-9)


class TestDerivatives:
    def test_gm_positive_in_strong_inversion(self):
        assert nmos(2e-6).gm(2.0, 2.0) > 0

    def test_gds_positive(self):
        assert nmos(2e-6).gds(2.0, 1.0) > 0

    def test_derivatives_continuous_near_threshold(self):
        """The smooth model has no kink at V_t: gm changes gradually
        (bounded ratio per millivolt) across the threshold."""
        device = nmos(2e-6)
        vt = default_process().vtn
        previous = device.gm(vt - 0.02, 1.0)
        for step in range(1, 41):
            current = device.gm(vt - 0.02 + step * 1e-3, 1.0)
            assert current / previous < 1.05
            previous = current


class TestGeneric:
    def test_vectorised_matches_scalar(self):
        device = nmos(2e-6)
        vgs = np.linspace(-0.2, VDD, 23)
        vds = np.linspace(-0.2, VDD, 23)
        grid_g, grid_d = np.meshgrid(vgs, vds)
        vec = device.ids_array(grid_g, grid_d)
        for i in range(0, 23, 7):
            for j in range(0, 23, 7):
                assert vec[i, j] == pytest.approx(
                    device.ids(grid_g[i, j], grid_d[i, j]), rel=1e-12, abs=1e-18
                )

    def test_ids_generic_broadcasts(self):
        out = ids_generic(
            np.array([0.0, VDD]),
            np.array([VDD, VDD]),
            polarity=1.0,
            beta=1e-4,
            vt=0.6,
            lam=0.06,
            n_vt=0.04,
        )
        assert out.shape == (2,)
        assert out[1] > out[0]


class TestEquivalentWidths:
    def test_series_two_equal(self):
        assert series_equivalent_width([2e-6, 2e-6]) == pytest.approx(1e-6)

    def test_series_reduces_below_minimum(self):
        width = series_equivalent_width([2e-6, 4e-6])
        assert width < 2e-6

    def test_parallel_sums(self):
        assert parallel_equivalent_width([2e-6, 3e-6]) == pytest.approx(5e-6)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            series_equivalent_width([])

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            parallel_equivalent_width([1e-6, -1e-6])

    @given(widths=st.lists(st.floats(min_value=1e-7, max_value=1e-5), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_series_not_exceeding_smallest(self, widths):
        assert series_equivalent_width(widths) <= min(widths) + 1e-18
