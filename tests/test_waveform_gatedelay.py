"""Tests for the caching gate-delay calculator."""

import pytest

from repro.waveform.coupling import CouplingLoad
from repro.waveform.gatedelay import GateDelayCalculator
from repro.waveform.pwl import FALLING, RISING
from repro.waveform.ramp import RampEvent


@pytest.fixture()
def calc():
    return GateDelayCalculator()


LOAD = CouplingLoad(c_ground=30e-15)


class TestCaching:
    def test_identical_calls_hit_cache(self, calc, library):
        inv = library["INV_X1"]
        calc.compute_arc_relative(inv, "A", RISING, 100e-12, LOAD)
        assert calc.evaluations == 1
        calc.compute_arc_relative(inv, "A", RISING, 100e-12, LOAD)
        assert calc.evaluations == 1
        assert calc.cache_hits == 1

    def test_quantization_buckets_nearby_loads(self, calc, library):
        inv = library["INV_X1"]
        calc.compute_arc_relative(inv, "A", RISING, 100e-12, CouplingLoad(30.05e-15))
        calc.compute_arc_relative(inv, "A", RISING, 100e-12, CouplingLoad(30.15e-15))
        assert calc.evaluations == 1

    def test_distinct_loads_not_merged(self, calc, library):
        inv = library["INV_X1"]
        calc.compute_arc_relative(inv, "A", RISING, 100e-12, CouplingLoad(30e-15))
        calc.compute_arc_relative(inv, "A", RISING, 100e-12, CouplingLoad(45e-15))
        assert calc.evaluations == 2

    def test_quantization_rounds_load_up(self, calc, library):
        """Quantizing up can only slow the modelled arc (conservative)."""
        inv = library["INV_X1"]
        exact = GateDelayCalculator(cap_grid=1e-21).compute_arc_relative(
            inv, "A", RISING, 100e-12, CouplingLoad(30.05e-15)
        )
        quantized = calc.compute_arc_relative(
            inv, "A", RISING, 100e-12, CouplingLoad(30.05e-15)
        )
        assert quantized.t_cross >= exact.t_cross - 1e-15

    def test_stats_reporting(self, calc, library):
        calc.compute_arc_relative(library["INV_X1"], "A", RISING, 100e-12, LOAD)
        stats = calc.cache_stats()
        assert stats["evaluations"] == 1
        assert stats["cached_arcs"] == 1
        assert stats["stage_tables"] == 1
        calc.reset_counters()
        assert calc.cache_stats()["evaluations"] == 0


class TestArcs:
    def test_all_library_arcs_compute(self, calc, library):
        """Every (cell, pin, direction) arc yields a sane event."""
        for cell in library:
            pins = ["A"] if cell.is_sequential else list(cell.inputs)
            for pin in pins:
                for direction in (RISING, FALLING):
                    arc = calc.compute_arc_relative(cell, pin, direction, 120e-12, LOAD)
                    assert arc.t_cross > 0
                    assert arc.transition > 0
                    assert arc.t_early < arc.t_late

    def test_event_shift_matches_input_timing(self, calc, library):
        inv = library["INV_X1"]
        base = RampEvent(RISING, 1e-9, 100e-12, 0.95e-9, 1.05e-9)
        out = calc.compute_arc(inv, "A", base, LOAD)
        later = calc.compute_arc(inv, "A", base.shifted(1e-9), LOAD)
        assert later.t_cross == pytest.approx(out.t_cross + 1e-9)

    def test_output_direction_inverted(self, calc, library):
        inv = library["INV_X1"]
        event = RampEvent(RISING, 1e-9, 100e-12, 0.95e-9, 1.05e-9)
        assert calc.compute_arc(inv, "A", event, LOAD).direction == FALLING

    def test_unknown_pin_rejected(self, calc, library):
        with pytest.raises(ValueError, match="no transistor"):
            calc.compute_arc_relative(library["INV_X1"], "Z", RISING, 100e-12, LOAD)

    def test_stronger_drive_faster_at_same_load(self, calc, library):
        weak = calc.compute_arc_relative(library["INV_X1"], "A", RISING, 120e-12, LOAD)
        strong = calc.compute_arc_relative(library["INV_X4"], "A", RISING, 120e-12, LOAD)
        assert strong.t_cross < weak.t_cross

    def test_stack_sizing_equalizes_nand_drive(self, calc, library):
        """The sizing rules widen stacks so a NAND2 leg matches the
        inverter's drive at equal external load (within a few percent)."""
        nand = calc.compute_arc_relative(library["NAND2_X1"], "A", RISING, 120e-12, LOAD)
        inv = calc.compute_arc_relative(library["INV_X1"], "A", RISING, 120e-12, LOAD)
        assert nand.t_cross == pytest.approx(inv.t_cross, rel=0.10)

    def test_coupled_flag_propagates(self, calc, library):
        arc = calc.compute_arc_relative(
            library["INV_X1"], "A", RISING, 100e-12,
            CouplingLoad(c_ground=30e-15, c_couple_active=15e-15),
        )
        assert arc.coupled

    def test_raw_solve_returns_waveform(self, calc, library):
        from repro.waveform.stage import InputRamp

        result = calc.solve_stage_raw(
            library["INV_X1"], "A", InputRamp(RISING, 0.0, 100e-12), LOAD
        )
        assert result.waveform.is_monotone()
