"""Property tests for input-fault containment.

Whatever garbage arrives at the parsers and table loaders, the only
exception allowed out is the taxonomy's :class:`InputError` (or a
subclass such as :class:`BenchParseError`) -- never a bare
``KeyError``/``IndexError``/``AttributeError`` from deep inside.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit.bench import BenchParseError, parse_bench
from repro.circuit.benchmarks import S27_BENCH
from repro.devices.tables import _BilinearGrid
from repro.errors import InputError

_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestBenchFuzz:
    @given(st.text(alphabet=st.characters(max_codepoint=0x7F), max_size=300))
    @_settings
    def test_arbitrary_text_only_raises_bench_parse_error(self, text):
        try:
            parse_bench(text, name="fuzz")
        except BenchParseError:
            pass  # the only acceptable failure, and it is an InputError

    @given(
        st.integers(min_value=0, max_value=len(S27_BENCH) - 1),
        st.integers(min_value=1, max_value=40),
        st.sampled_from(["delete", "duplicate", "garble"]),
    )
    @_settings
    def test_mutated_s27_only_raises_bench_parse_error(self, pos, length, op):
        text = S27_BENCH
        if op == "delete":
            mutated = text[:pos] + text[pos + length :]
        elif op == "duplicate":
            mutated = text[:pos] + text[pos : pos + length] + text[pos:]
        else:
            mutated = text[:pos] + "(,)=" * (length // 4 + 1) + text[pos + length :]
        try:
            parse_bench(mutated, name="mutated")
        except BenchParseError:
            pass

    def test_bench_parse_error_is_input_error(self):
        with pytest.raises(InputError):
            parse_bench("G1 = FROB(G2)", name="bad")


class TestNonFiniteTables:
    @given(
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=8),
        st.sampled_from([np.nan, np.inf, -np.inf]),
    )
    @_settings
    def test_single_poisoned_value_rejected(self, i, j, poison):
        axis = np.linspace(0.0, 3.3, 9)
        values = np.ones((9, 9))
        values[i, j] = poison
        with pytest.raises(InputError):
            _BilinearGrid(axis, axis, values)

    @given(
        st.integers(min_value=0, max_value=8),
        st.sampled_from([np.nan, np.inf, -np.inf]),
    )
    @_settings
    def test_poisoned_axis_rejected(self, i, poison):
        axis = np.linspace(0.0, 3.3, 9).copy()
        axis[i] = poison
        values = np.ones((9, 9))
        with pytest.raises(InputError):
            _BilinearGrid(axis, axis, values)

    def test_finite_table_accepted(self):
        axis = np.linspace(0.0, 3.3, 9)
        grid = _BilinearGrid(axis, axis, np.ones((9, 9)))
        assert grid.lookup(1.0, 1.0) == pytest.approx(1.0)
