"""Service observability plane: request ids and spans, JSONL access
log, queue-wait histograms, stats RPC, Prometheus exposition, explain
RPC, and per-request trace-export uniqueness under concurrency."""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.core.explain import validate_explain
from repro.core.modes import AnalysisMode, StaConfig
from repro.obs import Observability, parse_prometheus, render_prometheus
from repro.obs.tracer import read_jsonl
from repro.service import (
    InProcessClient,
    ServiceClient,
    TimingServer,
    TimingService,
)

ONE_STEP = StaConfig(mode=AnalysisMode.ONE_STEP)


def _service(obs: Observability | None = None) -> TimingService:
    return TimingService(config=ONE_STEP, workers=2, queue_limit=4, obs=obs)


def _start_server(service, **server_kwargs):
    server = TimingServer(service, host="127.0.0.1", port=0, **server_kwargs)
    ready = threading.Event()

    def run():
        async def main():
            await server.start()
            ready.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10)
    return server, thread


class TestExplainRpc:
    def test_explain_in_process(self):
        service = _service()
        client = InProcessClient(service)
        try:
            sid = client.open_session("s27")["session"]
            payload = client.explain(sid, paths=2, top=5)
            validate_explain(payload)
            assert payload["session"] == sid
            assert payload["mode"] == "one_step"
            summary = client.analyze(sid)
            assert payload["longest_delay_hex"] == summary["longest_delay_hex"]
        finally:
            service.close()

    def test_explain_respects_mode_param(self):
        service = _service()
        client = InProcessClient(service)
        try:
            sid = client.open_session("s27")["session"]
            payload = client.explain(sid, mode="worst_case")
            validate_explain(payload)
            assert payload["mode"] == "worst_case"
        finally:
            service.close()

    def test_provenance_override_disables_explain(self):
        service = _service()
        client = InProcessClient(service)
        try:
            sid = client.open_session("s27", config={"provenance": False})[
                "session"
            ]
            from repro.service import ServiceCallError

            with pytest.raises(ServiceCallError) as exc:
                client.explain(sid)
            assert "provenance" in str(exc.value)
        finally:
            service.close()


class TestStatsRpc:
    def test_stats_reports_sessions_and_executor(self):
        service = _service()
        client = InProcessClient(service)
        try:
            sid = client.open_session("s27")["session"]
            client.analyze(sid)
            stats = client.stats()
            assert stats["executor"]["workers"] == 2
            assert stats["executor"]["capacity"] == 6
            assert len(stats["sessions"]) == 1
            entry = stats["sessions"][0]
            assert entry["session"] == sid
            assert entry["memo_arcs"].get("one_step", 0) > 0
            assert entry["ledger_rows"].get("one_step", 0) > 0
            assert "arc_cache" in entry
            assert stats["uptime_seconds"] >= 0
        finally:
            service.close()

    def test_stats_does_not_disturb_lru_order(self):
        service = TimingService(config=ONE_STEP, max_sessions=2, workers=2)
        client = InProcessClient(service)
        try:
            first = client.open_session("s27")["session"]
            second = client.open_session("s27")["session"]
            client.stats()
            third = client.open_session("s27")["session"]
            ids = client.list_sessions()
            assert first not in ids  # LRU evicted the oldest, not a stats victim
            assert {second, third} <= set(ids)
        finally:
            service.close()


class TestMetricsRpc:
    def test_prometheus_exposition_parses(self):
        service = _service()
        client = InProcessClient(service)
        try:
            sid = client.open_session("s27")["session"]
            client.analyze(sid)
            text = client.metrics_text()
            parsed = parse_prometheus(text)
            names = {s["name"] for s in parsed["samples"]}
            assert "service_requests" in names
            assert "service_latency_seconds_bucket" in names
            assert "service_queue_wait_seconds_bucket" in names
            assert parsed["types"]["service_latency_seconds"] == "histogram"
        finally:
            service.close()

    def test_json_format_still_default(self):
        service = _service()
        client = InProcessClient(service)
        try:
            snapshot = client.metrics()
            assert set(snapshot) == {"counters", "gauges", "histograms"}
        finally:
            service.close()

    def test_unknown_format_rejected(self):
        service = _service()
        client = InProcessClient(service)
        try:
            from repro.service import ServiceCallError

            with pytest.raises(ServiceCallError):
                client.call("metrics", {"format": "xml"})
        finally:
            service.close()

    def test_queue_wait_histogram_recorded_per_method(self):
        service = _service()
        client = InProcessClient(service)
        try:
            client.ping()
            snapshot = service.obs.metrics.snapshot()
            key = "service.queue_wait_seconds{method=ping}"
            assert snapshot["histograms"][key]["count"] >= 1
        finally:
            service.close()


class TestRenderParseRoundtrip:
    def test_counter_gauge_histogram(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("a.count", method="x").inc(3)
        registry.gauge("b.depth").set(7)
        hist = registry.histogram("c.seconds", boundaries=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = render_prometheus(registry.snapshot())
        parsed = parse_prometheus(text)
        samples = {
            (s["name"], tuple(sorted(s["labels"].items()))): s["value"]
            for s in parsed["samples"]
        }
        assert samples[("a_count", (("method", "x"),))] == 3
        assert samples[("b_depth", ())] == 7
        assert samples[("c_seconds_count", ())] == 2
        assert samples[("c_seconds_bucket", (("le", "+Inf"),))] == 2
        assert samples[("c_seconds_bucket", (("le", "0.1"),))] == 1

    def test_parser_rejects_noncumulative_histogram(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_count 3\n"
        )
        with pytest.raises(ValueError):
            parse_prometheus(text)

    def test_parser_rejects_missing_inf(self):
        text = "# TYPE h histogram\n" 'h_bucket{le="1"} 5\n' "h_count 5\n"
        with pytest.raises(ValueError):
            parse_prometheus(text)

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("!!! not a metric line\n")

    def test_name_sanitization(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("sta.run/total", design="s27.bench").inc()
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        assert parsed["samples"][0]["name"] == "sta_run_total"
        assert parsed["samples"][0]["labels"] == {"design": "s27.bench"}


class TestAccessLog:
    def test_jsonl_records_over_tcp(self, tmp_path):
        log_path = str(tmp_path / "access.jsonl")
        service = _service()
        server, thread = _start_server(service, access_log=log_path)
        try:
            with ServiceClient(server.address, timeout=60) as client:
                sid = client.open_session("s27")["session"]
                client.analyze(sid)
                client.call("nonsense_method_name", {})
        except Exception:
            pass
        finally:
            with ServiceClient(server.address, timeout=30) as admin:
                admin.shutdown()
            thread.join(timeout=30)
        records = [
            json.loads(line)
            for line in open(log_path)
            if line.strip()
        ]
        by_method = {r["method"]: r for r in records}
        assert by_method["open_session"]["outcome"] == "ok"
        analyze = by_method["analyze"]
        assert analyze["outcome"] == "ok"
        assert analyze["session"] == sid
        assert analyze["queue_wait_s"] >= 0
        assert analyze["solve_s"] > 0
        assert analyze["request_id"].startswith("req-")
        bad = by_method["nonsense_method_name"]
        assert bad["outcome"] == "error"
        assert bad["code"] == 405
        assert len({r["request_id"] for r in records}) == len(records)


class TestPerRequestTraces:
    def test_two_pipelined_clients_get_disjoint_trace_files(self, tmp_path):
        """Two concurrent clients; every request gets its own span file,
        no interleaving or clobbering between them."""
        trace_dir = tmp_path / "traces"
        service = _service(obs=Observability.tracing())
        server, thread = _start_server(service, trace_dir=str(trace_dir))
        sids: dict[str, str] = {}
        errors: list[Exception] = []

        def drive(tag: str, mode: str):
            try:
                with ServiceClient(server.address, timeout=120) as client:
                    sid = client.open_session("s27")["session"]
                    sids[tag] = sid
                    client.analyze(sid, mode=mode)
                    client.query_path(sid, mode=mode)
            except Exception as exc:  # surfaces in the main thread
                errors.append(exc)

        try:
            threads = [
                threading.Thread(target=drive, args=("a", "one_step")),
                threading.Thread(target=drive, args=("b", "best_case")),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        finally:
            with ServiceClient(server.address, timeout=30) as admin:
                admin.shutdown()
            thread.join(timeout=30)
        assert not errors
        files = sorted(trace_dir.glob("req-*.jsonl"))
        assert len(files) >= 6  # 2 clients x (open/analyze/query_path)
        seen_span_ids: set[int] = set()
        for path in files:
            events = read_jsonl(str(path))
            assert events, f"{path.name} is empty"
            rid = path.stem
            roots = [
                e
                for e in events
                if e.get("args", {}).get("request_id") == rid
            ]
            assert len(roots) == 1, f"{path.name}: exactly one request root"
            assert roots[0]["name"] == "service.request"
            ids = {e["span_id"] for e in events}
            # Every non-root span's parent is inside the same file: the
            # subtree is complete and self-contained.
            for event in events:
                if event is not roots[0] and event.get("parent_id") is not None:
                    assert event["parent_id"] in ids
            # Disjointness: a span never leaks into another request's file.
            assert not (ids & seen_span_ids), f"{path.name} shares spans"
            seen_span_ids |= ids

    def test_analysis_spans_nest_under_request(self, tmp_path):
        trace_dir = tmp_path / "traces"
        service = _service(obs=Observability.tracing())
        server, thread = _start_server(service, trace_dir=str(trace_dir))
        try:
            with ServiceClient(server.address, timeout=120) as client:
                sid = client.open_session("s27")["session"]
                client.analyze(sid)
        finally:
            with ServiceClient(server.address, timeout=30) as admin:
                admin.shutdown()
            thread.join(timeout=30)
        analyzed = None
        for path in trace_dir.glob("req-*.jsonl"):
            events = read_jsonl(str(path))
            names = {e["name"] for e in events}
            if "sta.run" in names:
                analyzed = events
        assert analyzed is not None, "analyze request should carry sta.run spans"
