"""Tests for MNA assembly and the vectorised device bank."""

import numpy as np
import pytest

from repro.devices.mosfet import nmos, pmos
from repro.spice.mna import FetBank, build_mna
from repro.spice.netlist import SimCircuit


class TestStamps:
    def test_resistor_stamp(self):
        circuit = SimCircuit()
        circuit.add_resistor("a", "b", 100.0)
        system = build_mna(circuit)
        g = system.g_matrix
        a, b = circuit.node("a"), circuit.node("b")
        assert g[a, a] == pytest.approx(0.01, rel=1e-6)
        assert g[a, b] == pytest.approx(-0.01)
        assert g[b, a] == pytest.approx(-0.01)

    def test_grounded_resistor_stamp(self):
        circuit = SimCircuit()
        circuit.add_resistor("a", "0", 50.0)
        system = build_mna(circuit)
        a = circuit.node("a")
        assert system.g_matrix[a, a] == pytest.approx(0.02, rel=1e-6)

    def test_capacitor_stamp_symmetric(self):
        circuit = SimCircuit()
        circuit.add_capacitor("a", "b", 1e-15)
        system = build_mna(circuit)
        a, b = circuit.node("a"), circuit.node("b")
        c = system.c_matrix
        assert c[a, a] == pytest.approx(1e-15)
        assert c[a, b] == pytest.approx(-1e-15)
        assert np.allclose(c, c.T)

    def test_source_branch_rows(self):
        circuit = SimCircuit()
        circuit.add_vdc("a", 2.5)
        system = build_mna(circuit)
        a = circuit.node("a")
        row = system.n_nodes
        assert system.g_matrix[row, a] == 1.0
        assert system.g_matrix[a, row] == 1.0
        assert system.source_vector(0.0)[row] == pytest.approx(2.5)

    def test_gmin_on_diagonal(self):
        circuit = SimCircuit()
        circuit.node("floating")
        system = build_mna(circuit)
        assert system.g_matrix[0, 0] > 0


class TestFetBank:
    def _bank(self):
        circuit = SimCircuit()
        circuit.add_mosfet("mn", "out", "in", "0", nmos(2e-6))
        circuit.add_mosfet("mp", "out", "in", "vdd", pmos(4e-6))
        return circuit, FetBank(circuit)

    def test_matches_single_device_model(self):
        circuit, bank = self._bank()
        v = np.zeros(circuit.node_count)
        v[circuit.node("in")] = 2.0
        v[circuit.node("out")] = 1.0
        v[circuit.node("vdd")] = 3.3
        ids, gm, gds = bank.evaluate(v)
        expected_n = nmos(2e-6).ids(2.0, 1.0)
        expected_p = pmos(4e-6).ids(2.0 - 3.3, 1.0 - 3.3)
        assert ids[0] == pytest.approx(expected_n, rel=1e-9)
        assert ids[1] == pytest.approx(expected_p, rel=1e-9)

    def test_derivative_signs(self):
        circuit, bank = self._bank()
        v = np.zeros(circuit.node_count)
        v[circuit.node("in")] = 2.0
        v[circuit.node("out")] = 1.0
        v[circuit.node("vdd")] = 3.3
        _, gm, gds = bank.evaluate(v)
        assert gm[0] > 0  # NMOS transconductance
        assert gds[0] > 0

    def test_empty_bank(self):
        circuit = SimCircuit()
        bank = FetBank(circuit)
        ids, gm, gds = bank.evaluate(np.zeros(0))
        assert ids.size == 0

    def test_ground_terminals_handled(self):
        circuit = SimCircuit()
        circuit.add_mosfet("m", "d", "g", "0", nmos(2e-6))
        bank = FetBank(circuit)
        v = np.zeros(circuit.node_count)
        v[circuit.node("g")] = 3.3
        v[circuit.node("d")] = 1.0
        ids, _, _ = bank.evaluate(v)
        assert ids[0] == pytest.approx(nmos(2e-6).ids(3.3, 1.0), rel=1e-9)


class TestNonlinearStamping:
    def test_kcl_sign_convention(self):
        """The NMOS pulls current out of its drain node."""
        circuit = SimCircuit()
        circuit.add_vdc("g", 3.3)
        circuit.add_vdc("d", 1.0)
        circuit.add_mosfet("m", "d", "g", "0", nmos(2e-6))
        system = build_mna(circuit)
        x = np.zeros(system.size)
        x[circuit.node("g")] = 3.3
        x[circuit.node("d")] = 1.0
        jacobian = system.g_matrix.copy()
        residual = np.zeros(system.size)
        system.stamp_nonlinear(x, jacobian, residual)
        assert residual[circuit.node("d")] > 0  # current leaving the node
