"""Tests for trace measurements."""

import numpy as np
import pytest

from repro.spice.measure import (
    crossing,
    delay_between,
    glitch_amplitude,
    last_crossing,
    slew,
)
from repro.spice.transient import TransientResult
from repro.waveform.pwl import FALLING, RISING


def make_result(times, traces: dict) -> TransientResult:
    names = list(traces)
    voltages = np.column_stack([traces[n] for n in names])
    return TransientResult(
        times=np.asarray(times, float),
        voltages=voltages,
        node_index={n: i for i, n in enumerate(names)},
    )


class TestCrossing:
    def test_linear_interpolation(self):
        result = make_result([0, 1, 2], {"a": [0.0, 2.0, 2.0]})
        assert crossing(result, "a", 1.0, RISING) == pytest.approx(0.5)

    def test_falling(self):
        result = make_result([0, 1, 2], {"a": [2.0, 0.0, 0.0]})
        assert crossing(result, "a", 1.0, FALLING) == pytest.approx(0.5)

    def test_first_vs_last_crossing_with_glitch(self):
        values = [0.0, 2.0, 0.5, 2.0, 2.0]
        result = make_result([0, 1, 2, 3, 4], {"a": values})
        first = crossing(result, "a", 1.0, RISING)
        last = last_crossing(result, "a", 1.0, RISING)
        assert first < last
        assert last == pytest.approx(2.0 + 0.5 / 1.5)

    def test_missing_crossing_raises(self):
        result = make_result([0, 1], {"a": [0.0, 0.5]})
        with pytest.raises(ValueError, match="never crosses"):
            crossing(result, "a", 1.0, RISING)

    def test_ground_trace(self):
        result = make_result([0, 1], {"a": [0.0, 1.0]})
        assert np.all(result.trace("0") == 0.0)


class TestDelay:
    def test_delay_between_uses_last_crossing(self):
        result = make_result(
            [0, 1, 2, 3, 4],
            {
                "in": [0.0, 2.0, 2.0, 2.0, 2.0],
                "out": [2.0, 2.0, 0.5, 2.0, 0.0],  # glitch then final fall
            },
        )
        d = delay_between(result, "in", RISING, "out", FALLING, 1.0)
        assert d.t_from == pytest.approx(0.5)
        assert d.t_to > 3.0
        assert d.delay == pytest.approx(d.t_to - d.t_from)


class TestAmplitudes:
    def test_glitch_amplitude(self):
        result = make_result([0, 1, 2], {"a": [0.0, 0.7, 0.1]})
        assert glitch_amplitude(result, "a", 0.0) == pytest.approx(0.7)

    def test_slew_of_linear_ramp(self):
        times = np.linspace(0, 1, 101)
        values = times * 3.3
        result = make_result(times, {"a": values})
        assert slew(result, "a", RISING, 3.3) == pytest.approx(1.0, rel=0.02)

    def test_slew_falling(self):
        times = np.linspace(0, 2, 201)
        values = 3.3 * (1 - times / 2)
        result = make_result(times, {"a": values})
        assert slew(result, "a", FALLING, 3.3) == pytest.approx(2.0, rel=0.02)
