"""Tests for NLDM characterization, the Liberty writer/reader and the
table-lookup delay calculator."""

import numpy as np
import pytest

from repro.characterize import (
    NldmDelayCalculator,
    characterize_cell,
    characterize_library,
    parse_liberty,
    write_liberty,
)
from repro.characterize.liberty import LibertyParseError, parse_groups
from repro.waveform import CouplingLoad, GateDelayCalculator
from repro.waveform.pwl import FALLING, RISING

SLEWS = [50e-12, 150e-12, 400e-12]
LOADS = [10e-15, 40e-15, 120e-15]


@pytest.fixture(scope="module")
def char(library):
    return characterize_library(
        library, cells=["INV_X1", "NAND2_X1", "DFF_X1"], slews=SLEWS, loads=LOADS
    )


class TestCharacterize:
    def test_arc_count(self, char):
        # INV: 1 pin x 2 dirs; NAND2: 2 x 2; DFF output driver: 1 x 2.
        assert char.arc_count() == 2 + 4 + 2

    def test_tables_positive(self, char):
        for cell in char.cells.values():
            for arc in cell.arcs.values():
                assert np.all(arc.delay > 0)
                assert np.all(arc.transition > 0)

    def test_delay_monotone_in_load(self, char):
        for cell in char.cells.values():
            for arc in cell.arcs.values():
                assert arc.monotone_in_load(), (arc.cell, arc.pin)

    def test_lookup_exact_on_grid(self, char):
        arc = char.cell("INV_X1").arc("A", RISING)
        delay, transition = arc.lookup(SLEWS[1], LOADS[1])
        assert delay == pytest.approx(arc.delay[1, 1])
        assert transition == pytest.approx(arc.transition[1, 1])

    def test_lookup_clamps_outside_grid(self, char):
        arc = char.cell("INV_X1").arc("A", RISING)
        low = arc.lookup(1e-15, 1e-18)
        assert low[0] == pytest.approx(arc.delay[0, 0])
        high = arc.lookup(1.0, 1.0)
        assert high[0] == pytest.approx(arc.delay[-1, -1])

    def test_interpolation_between_grid_points(self, char):
        arc = char.cell("INV_X1").arc("A", RISING)
        mid, _ = arc.lookup(
            0.5 * (SLEWS[0] + SLEWS[1]), 0.5 * (LOADS[0] + LOADS[1])
        )
        corners = arc.delay[0:2, 0:2]
        assert corners.min() <= mid <= corners.max()

    def test_output_direction_inverted(self, char):
        arc = char.cell("INV_X1").arc("A", RISING)
        assert arc.output_direction == FALLING


class TestDefaultGrids:
    def test_grids_sorted_and_positive(self):
        from repro.characterize import default_load_grid, default_slew_grid

        for grid in (default_slew_grid(), default_load_grid()):
            assert all(v > 0 for v in grid)
            assert grid == sorted(grid)

    def test_grids_cover_routed_design_range(self, s27_design):
        """The default grids bracket the loads/slews real designs hit, so
        the NLDM calculator interpolates instead of clamping."""
        from repro.characterize import default_load_grid

        loads = [
            load.c_fixed + load.c_coupling_total
            for load in s27_design.loads.values()
        ]
        assert max(loads) <= default_load_grid()[-1]


class TestLiberty:
    def test_roundtrip_preserves_everything(self, char):
        back = parse_liberty(write_liberty(char))
        assert sorted(back.cells) == sorted(char.cells)
        assert np.allclose(back.slews, char.slews)
        assert np.allclose(back.loads, char.loads)
        for name, cell in char.cells.items():
            for key, arc in cell.arcs.items():
                other = back.cells[name].arcs[key]
                assert np.allclose(other.delay, arc.delay, rtol=1e-4)
                assert np.allclose(other.transition, arc.transition, rtol=1e-4)

    def test_generic_parser_tree(self):
        tree = parse_groups(
            'library (x) { foo : "bar"; cell (a) { pin (Y) { direction : output; } } }'
        )
        assert tree.name == "library"
        assert tree.attrs["foo"] == "bar"
        assert tree.find("cell")[0].find("pin")[0].attrs["direction"] == "output"

    def test_comments_stripped(self):
        tree = parse_groups("library (x) { /* note */ a : 1; // eol\n }")
        assert tree.attrs["a"] == "1"

    def test_unbalanced_rejected(self):
        with pytest.raises(LibertyParseError):
            parse_groups("library (x) {")

    def test_wrong_top_group_rejected(self, char):
        with pytest.raises(LibertyParseError, match="library"):
            parse_liberty("cell (a) { }")

    def test_wrong_value_count_rejected(self, char):
        text = write_liberty(char)
        broken = text.replace('values ( \\', 'values ( "1, 2", \\', 1)
        with pytest.raises(LibertyParseError, match="expected"):
            parse_liberty(broken)


class TestNldmCalculator:
    def test_matches_transistor_level_on_grid(self, char, library):
        nldm = NldmDelayCalculator(char, coupling_factor=1.0)
        exact = GateDelayCalculator()
        for slew in SLEWS:
            for load in LOADS:
                approx = nldm.compute_arc_relative(
                    library["INV_X1"], "A", RISING, slew, CouplingLoad(load)
                )
                reference = exact.compute_arc_relative(
                    library["INV_X1"], "A", RISING, slew, CouplingLoad(load)
                )
                assert approx.t_cross == pytest.approx(reference.t_cross, rel=0.05)

    def test_coupling_factor_folds_active_cap(self, char, library):
        doubled = NldmDelayCalculator(char, coupling_factor=2.0)
        ignored = NldmDelayCalculator(char, coupling_factor=1.0)
        load = CouplingLoad(c_ground=20e-15, c_couple_active=20e-15)
        slow = doubled.compute_arc_relative(library["INV_X1"], "A", RISING, 100e-12, load)
        fast = ignored.compute_arc_relative(library["INV_X1"], "A", RISING, 100e-12, load)
        assert slow.t_cross > fast.t_cross

    def test_cannot_express_active_model(self, char, library):
        """The table model underestimates the paper's active coupling:
        its doubled-cap answer sits below the transistor-level drop
        model's, for the same situation."""
        nldm = NldmDelayCalculator(char, coupling_factor=2.0)
        exact = GateDelayCalculator()
        load = CouplingLoad(c_ground=20e-15, c_couple_active=25e-15)
        table_answer = nldm.compute_arc_relative(
            library["INV_X1"], "A", RISING, 100e-12, load
        )
        active_answer = exact.compute_arc_relative(
            library["INV_X1"], "A", RISING, 100e-12, load
        )
        assert table_answer.t_cross < active_answer.t_cross

    def test_invalid_factor(self, char):
        with pytest.raises(ValueError):
            NldmDelayCalculator(char, coupling_factor=-1.0)

    def test_interface_parity(self, char, library):
        nldm = NldmDelayCalculator(char)
        stats = nldm.cache_stats()
        assert set(stats) == {"evaluations", "cache_hits", "cached_arcs", "stage_tables"}
