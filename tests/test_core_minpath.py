"""Tests for the min-delay (hold) analysis extension."""

import pytest

from repro.core.analyzer import CrosstalkSTA
from repro.core.constraints import check_hold
from repro.core.minpath import MinAnalysisMode, MinPropagator, merge_earliest
from repro.core.modes import AnalysisMode
from repro.waveform.pwl import FALLING, RISING
from repro.waveform.ramp import RampEvent


@pytest.fixture(scope="module")
def min_results(small_design):
    propagator = MinPropagator(small_design)
    return {mode: propagator.run(mode) for mode in MinAnalysisMode}


@pytest.fixture(scope="module")
def max_result(small_design):
    return CrosstalkSTA(small_design).run(AnalysisMode.BEST_CASE)


class TestMergeEarliest:
    def _event(self, t_cross, transition=100e-12, t_early=None, t_late=None):
        t_early = t_early if t_early is not None else t_cross - 40e-12
        t_late = t_late if t_late is not None else t_cross + 40e-12
        return RampEvent(RISING, t_cross, transition, t_early, t_late)

    def test_envelope(self):
        a = self._event(1e-9, transition=50e-12)
        b = self._event(2e-9, transition=80e-12)
        merged = merge_earliest(a, b)
        assert merged.t_cross == 1e-9
        assert merged.transition == 50e-12
        assert merged.t_early == a.t_early
        assert merged.t_late == b.t_late

    def test_none_handling(self):
        ev = self._event(1e-9)
        assert merge_earliest(None, ev) is ev
        assert merge_earliest(ev, None) is ev

    def test_direction_mismatch(self):
        with pytest.raises(ValueError):
            merge_earliest(
                self._event(1e-9),
                RampEvent(FALLING, 1e-9, 1e-12, 0.9e-9, 1.1e-9),
            )


class TestModeOrdering:
    """WORST (all helping) <= ITERATIVE <= ONE_STEP ... wait: more help ->
    earlier.  The safe bound is the *smallest*; refinement raises it."""

    def test_worst_is_smallest(self, min_results):
        worst = min_results[MinAnalysisMode.WORST].shortest_delay
        for mode in (MinAnalysisMode.ONE_STEP, MinAnalysisMode.ITERATIVE):
            assert worst <= min_results[mode].shortest_delay + 1e-12

    def test_iterative_at_least_one_step(self, min_results):
        one_step = min_results[MinAnalysisMode.ONE_STEP].shortest_delay
        iterative = min_results[MinAnalysisMode.ITERATIVE].shortest_delay
        assert iterative >= one_step - 1e-12

    def test_no_coupling_is_largest(self, min_results):
        """Helping can only make arrivals earlier than the grounded case."""
        no_coupling = min_results[MinAnalysisMode.NO_COUPLING].shortest_delay
        for mode in MinAnalysisMode:
            assert min_results[mode].shortest_delay <= no_coupling + 1e-12

    def test_per_endpoint_ordering(self, min_results):
        worst = min_results[MinAnalysisMode.WORST].arrival_map()
        iterative = min_results[MinAnalysisMode.ITERATIVE].arrival_map()
        for key, value in worst.items():
            assert value <= iterative[key] + 1e-12, key


class TestAgainstMaxAnalysis:
    def test_min_below_max_everywhere(self, min_results, max_result):
        """Every guaranteed-earliest arrival precedes the corresponding
        guaranteed-latest arrival."""
        min_map = min_results[MinAnalysisMode.WORST].arrival_map()
        max_map = max_result.arrival_map()
        for key in min_map:
            if key in max_map:
                assert min_map[key] <= max_map[key] + 1e-12, key

    def test_min_delays_positive(self, min_results):
        for result in min_results.values():
            assert result.shortest_delay > 0


class TestIterativeBehaviour:
    def test_refinement_is_monotone_upward(self, small_design):
        propagator = MinPropagator(small_design)
        first = propagator.run_pass(MinAnalysisMode.ITERATIVE)
        second = propagator.run_pass(
            MinAnalysisMode.ITERATIVE, prev_windows=first.state.window_snapshot()
        )
        assert second.shortest_delay >= first.shortest_delay - 1e-12

    def test_run_reports_passes(self, min_results):
        assert min_results[MinAnalysisMode.ITERATIVE].passes >= 2
        assert min_results[MinAnalysisMode.WORST].passes == 1


class TestHoldCheck:
    def test_hold_report(self, min_results):
        report = check_hold(min_results[MinAnalysisMode.WORST], hold_time=50e-12)
        assert report.slacks
        # Only flip-flop D inputs are checked.
        assert all("/" in s.endpoint for s in report.slacks)
        worst = report.worst
        assert worst.slack == pytest.approx(worst.earliest_arrival - 50e-12)

    def test_hold_met_flag(self, min_results):
        result = min_results[MinAnalysisMode.WORST]
        generous = check_hold(result, hold_time=1e-15)
        assert generous.met
        brutal = check_hold(result, hold_time=1.0)
        assert not brutal.met
        assert brutal.failing()
