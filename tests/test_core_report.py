"""Tests for result table formatting and the ordering checker."""

import pytest

from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode
from repro.core.report import (
    MODE_LABELS,
    check_mode_ordering,
    format_table,
    result_rows,
)


@pytest.fixture(scope="module")
def results(small_design):
    return CrosstalkSTA(small_design).run_all_modes()


class TestFormatting:
    def test_table_has_all_rows(self, results):
        text = format_table("tiny", results, cell_count=123)
        for label in MODE_LABELS.values():
            assert label in text
        assert "(123 cells)" in text

    def test_simulation_row_optional(self, results):
        without = format_table("tiny", results)
        with_sim = format_table("tiny", results, simulation_ns=1.234)
        assert "Simulation" not in without
        assert "1.234" in with_sim

    def test_rows_in_paper_order(self, results):
        rows = result_rows(results)
        assert [r.label for r in rows] == [
            "Best case",
            "Static doubled",
            "Worst case",
            "One step",
            "Iterative",
        ]

    def test_partial_results(self, results):
        partial = {AnalysisMode.BEST_CASE: results[AnalysisMode.BEST_CASE]}
        rows = result_rows(partial)
        assert len(rows) == 1


class TestOrderingChecker:
    def test_valid_results_have_no_violations(self, results):
        assert check_mode_ordering(results) == []

    def test_violation_detected(self, results):
        import copy

        broken = dict(results)
        fake = copy.copy(results[AnalysisMode.ITERATIVE])
        fake.longest_delay = results[AnalysisMode.BEST_CASE].longest_delay * 0.5
        broken[AnalysisMode.ITERATIVE] = fake
        violations = check_mode_ordering(broken)
        assert violations
        assert "Best case" in violations[0]

    def test_static_doubled_vs_worst_not_checked(self, results):
        """Not an invariant (see report docstring); the checker stays
        silent regardless of how the two compare."""
        import copy

        tweaked = dict(results)
        fake = copy.copy(results[AnalysisMode.STATIC_DOUBLED])
        fake.longest_delay = results[AnalysisMode.WORST_CASE].longest_delay * 2.0
        tweaked[AnalysisMode.STATIC_DOUBLED] = fake
        violations = check_mode_ordering(tweaked)
        assert all("Static doubled" not in v or "Best case" in v for v in violations)
