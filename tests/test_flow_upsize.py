"""Tests for the driver-upsizing repair move."""

import pytest

from repro.circuit.validate import validate_circuit
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode
from repro.core.netreport import rank_crosstalk_nets
from repro.flow import upsize_drivers


@pytest.fixture(scope="module")
def upsized(s27_design):
    result = CrosstalkSTA(s27_design).run(AnalysisMode.ITERATIVE)
    victims = [e.net for e in rank_crosstalk_nets(s27_design, result.final_pass, top=4)]
    return s27_design, victims, upsize_drivers(s27_design, victims)


class TestUpsize:
    def test_drivers_strengthened(self, upsized):
        original, victims, design = upsized
        strengthened = 0
        for net_name in victims:
            before = original.circuit.nets[net_name].driver_cell()
            after = design.circuit.nets[net_name].driver_cell()
            if before is None or after is None:
                continue
            order = {"X1": 0, "X2": 1, "X4": 2}
            assert order[after.ctype.drive] >= order[before.ctype.drive]
            if after.ctype.drive != before.ctype.drive:
                strengthened += 1
        assert strengthened > 0

    def test_other_cells_untouched(self, upsized):
        original, victims, design = upsized
        victim_drivers = {
            original.circuit.nets[n].driver_cell().name
            for n in victims
            if original.circuit.nets[n].driver_cell() is not None
        }
        for name, cell in original.circuit.cells.items():
            if name in victim_drivers:
                continue
            assert design.circuit.cells[name].ctype.name == cell.ctype.name

    def test_clone_structurally_valid(self, upsized):
        _, _, design = upsized
        report = validate_circuit(design.circuit)
        assert report.ok, report.errors[:3]

    def test_connectivity_preserved(self, upsized):
        original, _, design = upsized
        assert set(design.circuit.nets) == set(original.circuit.nets)
        for name, net in original.circuit.nets.items():
            assert design.circuit.nets[name].fanout == net.fanout

    def test_clock_marking_preserved(self, upsized):
        original, _, design = upsized
        for name, net in original.circuit.nets.items():
            assert design.circuit.nets[name].is_clock == net.is_clock

    def test_x4_saturates(self, s27_design):
        """Upsizing an already-maximal driver is a no-op, not an error."""
        all_nets = list(s27_design.circuit.nets)
        design = upsize_drivers(s27_design, all_nets, steps=5)
        for cell in design.circuit.cells.values():
            assert cell.ctype.drive in ("X1", "X2", "X4")

    def test_analysis_still_runs(self, upsized):
        _, _, design = upsized
        result = CrosstalkSTA(design).run(AnalysisMode.ONE_STEP)
        assert result.longest_delay > 0
