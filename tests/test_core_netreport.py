"""Tests for the crosstalk net ranking."""

import pytest

from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode
from repro.core.netreport import format_net_report, rank_crosstalk_nets


@pytest.fixture(scope="module")
def ranked(small_design):
    result = CrosstalkSTA(small_design).run(AnalysisMode.ITERATIVE)
    return small_design, result, rank_crosstalk_nets(small_design, result.final_pass, top=None)


class TestRanking:
    def test_only_coupled_nets_listed(self, ranked):
        design, _, exposures = ranked
        for exposure in exposures:
            assert design.loads[exposure.net].couplings

    def test_sorted_by_score(self, ranked):
        _, _, exposures = ranked
        scores = [e.score for e in exposures]
        assert scores == sorted(scores, reverse=True)

    def test_top_limits(self, ranked):
        design, result, _ = ranked
        top5 = rank_crosstalk_nets(design, result.final_pass, top=5)
        assert len(top5) == 5

    def test_slack_consistent_with_horizon(self, ranked):
        _, result, exposures = ranked
        for e in exposures:
            assert e.slack == pytest.approx(result.longest_delay - e.worst_arrival)

    def test_divider_fraction_in_unit_interval(self, ranked):
        _, _, exposures = ranked
        for e in exposures:
            assert 0.0 < e.divider_fraction < 1.0

    def test_score_bounded_by_divider_fraction(self, ranked):
        """Weighting only attenuates: divider_fraction/4 <= score <=
        divider_fraction, with the upper end reached at zero slack."""
        _, _, exposures = ranked
        for e in exposures:
            assert 0.25 * e.divider_fraction - 1e-12 <= e.score <= e.divider_fraction + 1e-12


class TestFormatting:
    def test_report_renders(self, ranked):
        _, _, exposures = ranked
        text = format_net_report(exposures[:6])
        assert "C_c [fF]" in text
        assert len(text.splitlines()) == 2 + min(6, len(exposures))
