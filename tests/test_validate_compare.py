"""Tests for the table-comparison harness."""

import pytest

from repro.core.modes import AnalysisMode
from repro.validate.compare import run_table_comparison


class TestRunTableComparison:
    def test_without_simulation(self, small_design):
        comparison = run_table_comparison(small_design, simulate=False)
        assert comparison.sim_quiet_delay is None
        assert comparison.sim_worst_delay is None
        assert set(comparison.results) == set(AnalysisMode)
        assert comparison.cell_count == small_design.circuit.cell_count()

    def test_mode_subset(self, small_design):
        modes = [AnalysisMode.BEST_CASE, AnalysisMode.ITERATIVE]
        comparison = run_table_comparison(
            small_design, simulate=False, modes=modes,
            reference_mode=AnalysisMode.ITERATIVE,
        )
        assert set(comparison.results) == set(modes)
        assert comparison.path.steps

    def test_coupling_impact_requires_both_extremes(self, small_design):
        comparison = run_table_comparison(small_design, simulate=False)
        assert comparison.coupling_impact == pytest.approx(
            comparison.results[AnalysisMode.WORST_CASE].longest_delay
            - comparison.results[AnalysisMode.BEST_CASE].longest_delay
        )

    def test_delays_ns_excludes_missing_sims(self, small_design):
        comparison = run_table_comparison(small_design, simulate=False)
        table = comparison.delays_ns()
        assert "simulation_quiet" not in table
        assert "iterative" in table
