"""Tests for netlist data structures."""

import pytest

from repro.circuit.netlist import Circuit, NetlistError


def inv_chain(n: int) -> Circuit:
    circuit = Circuit("chain")
    circuit.add_input("in")
    prev = "in"
    for i in range(n):
        out = f"n{i}"
        circuit.add_cell("INV_X1", f"inv{i}", {"A": prev, "Y": out})
        prev = out
    circuit.add_output("out", net_name=prev)
    return circuit


class TestConstruction:
    def test_nets_created_on_demand(self):
        circuit = inv_chain(3)
        assert "n1" in circuit.nets
        assert circuit.nets["n1"].driver_cell().name == "inv1"

    def test_duplicate_cell_rejected(self):
        circuit = Circuit("c")
        circuit.add_cell("INV_X1", "g", {"A": "a", "Y": "y"})
        with pytest.raises(NetlistError, match="duplicate cell"):
            circuit.add_cell("INV_X1", "g", {"A": "a2", "Y": "y2"})

    def test_double_driver_rejected(self):
        circuit = Circuit("c")
        circuit.add_cell("INV_X1", "g1", {"A": "a", "Y": "y"})
        with pytest.raises(NetlistError, match="already driven"):
            circuit.add_cell("INV_X1", "g2", {"A": "b", "Y": "y"})

    def test_wrong_pins_rejected(self):
        circuit = Circuit("c")
        with pytest.raises(NetlistError, match="expected pins"):
            circuit.add_cell("INV_X1", "g", {"X": "a", "Y": "y"})

    def test_missing_pin_rejected(self):
        circuit = Circuit("c")
        with pytest.raises(NetlistError, match="expected pins"):
            circuit.add_cell("NAND2_X1", "g", {"A": "a", "Y": "y"})

    def test_duplicate_port_rejected(self):
        circuit = Circuit("c")
        circuit.add_input("p")
        with pytest.raises(NetlistError, match="duplicate port"):
            circuit.add_output("p")

    def test_unknown_cell_type(self):
        circuit = Circuit("c")
        with pytest.raises(KeyError, match="unknown cell type"):
            circuit.add_cell("MAGIC", "g", {})

    def test_clock_marks_net(self):
        circuit = Circuit("c")
        circuit.add_clock("CLK")
        assert circuit.clock_net is not None
        assert circuit.clock_net.is_clock


class TestQueries:
    def test_fanout(self):
        circuit = Circuit("c")
        circuit.add_input("a")
        circuit.add_cell("INV_X1", "g1", {"A": "a", "Y": "y1"})
        circuit.add_cell("INV_X1", "g2", {"A": "a", "Y": "y2"})
        assert circuit.nets["a"].fanout == 2

    def test_flip_flops_listed(self):
        circuit = Circuit("c")
        circuit.add_clock()
        circuit.add_input("d")
        circuit.add_cell("DFF_X1", "ff", {"D": "d", "CLK": "CLK", "Q": "q"})
        assert [c.name for c in circuit.flip_flops()] == ["ff"]
        assert circuit.combinational_cells() == []

    def test_timing_sources_excludes_clock(self):
        circuit = Circuit("c")
        circuit.add_clock()
        circuit.add_input("d")
        circuit.add_cell("DFF_X1", "ff", {"D": "d", "CLK": "CLK", "Q": "q"})
        names = {net.name for net in circuit.timing_sources()}
        assert names == {"d", "q"}

    def test_timing_endpoints(self):
        circuit = Circuit("c")
        circuit.add_clock()
        circuit.add_input("d")
        circuit.add_cell("DFF_X1", "ff", {"D": "d", "CLK": "CLK", "Q": "q"})
        circuit.add_output("po", net_name="q")
        names = {
            e.full_name if hasattr(e, "cell") else e.name
            for e in circuit.timing_endpoints()
        }
        assert names == {"po", "ff/D"}


class TestLevelize:
    def test_chain_depth(self):
        assert inv_chain(5).depth() == 5

    def test_level_assignment(self):
        circuit = Circuit("c")
        circuit.add_input("a")
        circuit.add_cell("INV_X1", "g0", {"A": "a", "Y": "y0"})
        circuit.add_cell("NAND2_X1", "g1", {"A": "a", "B": "y0", "Y": "y1"})
        levels = circuit.levelize()
        assert [c.name for c in levels[0]] == ["g0"]
        assert [c.name for c in levels[1]] == ["g1"]

    def test_cycle_detected(self):
        circuit = Circuit("c")
        circuit.add_cell("INV_X1", "g0", {"A": "y1", "Y": "y0"})
        circuit.add_cell("INV_X1", "g1", {"A": "y0", "Y": "y1"})
        with pytest.raises(NetlistError, match="cycle"):
            circuit.levelize()

    def test_ff_breaks_cycle(self):
        circuit = Circuit("c")
        circuit.add_clock()
        circuit.add_cell("DFF_X1", "ff", {"D": "y", "CLK": "CLK", "Q": "q"})
        circuit.add_cell("INV_X1", "g", {"A": "q", "Y": "y"})
        assert circuit.depth() == 1

    def test_stats(self):
        stats = inv_chain(4).stats()
        assert stats.cells == 4
        assert stats.depth == 4
        assert stats.inputs == 1
        assert stats.outputs == 1
        assert "chain" in str(stats)
