"""Tests for JSON result export."""

import json

import pytest

from repro.core.analyzer import CrosstalkSTA
from repro.core.export import (
    load_json,
    path_to_dict,
    results_to_dict,
    save_json,
    sta_result_to_dict,
)
from repro.core.modes import AnalysisMode


@pytest.fixture(scope="module")
def analysis(s27_design):
    sta = CrosstalkSTA(s27_design)
    results = sta.run_all_modes()
    path = sta.critical_path(results[AnalysisMode.ITERATIVE])
    return results, path


class TestExport:
    def test_result_dict_fields(self, analysis):
        results, _ = analysis
        payload = sta_result_to_dict(results[AnalysisMode.ITERATIVE])
        assert payload["mode"] == "iterative"
        assert payload["longest_delay"] > 0
        assert payload["passes"] == len(payload["history"])
        assert payload["arrivals"]

    def test_json_serializable(self, analysis):
        results, path = analysis
        payload = results_to_dict(results, {AnalysisMode.ITERATIVE: path})
        text = json.dumps(payload)
        assert "iterative" in text

    def test_path_dict(self, analysis):
        _, path = analysis
        payload = path_to_dict(path)
        assert len(payload["steps"]) == len(path)
        assert payload["delay"] == pytest.approx(path.delay)

    def test_save_and_load_roundtrip(self, analysis, tmp_path):
        results, _ = analysis
        payload = results_to_dict(results)
        target = tmp_path / "out.json"
        save_json(payload, str(target))
        restored = load_json(str(target))
        assert restored == json.loads(json.dumps(payload))

    def test_all_modes_present(self, analysis):
        results, _ = analysis
        payload = results_to_dict(results)
        assert set(payload["modes"]) == {m.value for m in AnalysisMode}

    def test_arrival_markers_ordered(self, analysis):
        results, _ = analysis
        payload = sta_result_to_dict(results[AnalysisMode.WORST_CASE])
        for arrival in payload["arrivals"]:
            assert arrival["t_early"] <= arrival["t_cross"] <= arrival["t_late"]
