"""End-to-end property tests: random circuits through the whole flow.

Hypothesis drives the synthetic generator with random shapes; each
generated circuit runs the complete pipeline (map -> place -> route ->
extract -> analyze) and the pipeline's invariants are checked.  Sizes are
kept small so each example stays sub-second.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit.generators import GeneratorSpec, generate_circuit
from repro.circuit.validate import validate_circuit
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode, StaConfig
from repro.core.propagation import Propagator
from repro.flow import prepare_design
from repro.waveform.pwl import FALLING, RISING

spec_strategy = st.builds(
    GeneratorSpec,
    name=st.just("prop"),
    seed=st.integers(min_value=0, max_value=2**31),
    n_inputs=st.integers(min_value=2, max_value=6),
    n_outputs=st.integers(min_value=1, max_value=5),
    n_ff=st.integers(min_value=2, max_value=10),
    n_gates=st.integers(min_value=20, max_value=80),
    depth=st.integers(min_value=3, max_value=8),
)

_slow = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestFlowInvariants:
    @given(spec=spec_strategy)
    @_slow
    def test_generated_circuits_survive_the_flow(self, spec):
        circuit = generate_circuit(spec)
        report = validate_circuit(circuit)
        assert report.ok, report.errors[:3]
        design = prepare_design(circuit)
        # Every driven net with sinks is routed, extracted and loaded.
        for name, net in circuit.nets.items():
            assert name in design.loads
            if net.driver is not None and net.sinks:
                assert name in design.routing.routes
        # Coupling symmetry survives the pipeline.
        for name, load in design.loads.items():
            for other, cap in load.couplings.items():
                assert design.loads[other].couplings[name] == pytest.approx(cap)

    @given(spec=spec_strategy)
    @_slow
    def test_mode_bounds_on_random_circuits(self, spec):
        """best <= one-step <= worst per endpoint on arbitrary designs.

        The ordering holds up to the cache-quantization guard band: the
        modes quantize each arc's input slew independently, and the few
        femtofarads / picoseconds of rounding can shuffle arrivals by a
        grid step or two (exactly the error ``StaConfig.guard`` exists to
        absorb), so the comparisons use that guard as tolerance.
        """
        design = prepare_design(generate_circuit(spec))
        sta = CrosstalkSTA(design)
        guard = StaConfig().guard
        best = sta.run(AnalysisMode.BEST_CASE).arrival_map()
        one_step = sta.run(AnalysisMode.ONE_STEP).arrival_map()
        worst = sta.run(AnalysisMode.WORST_CASE).arrival_map()
        assert set(best) == set(one_step) == set(worst)
        for key in best:
            assert best[key] <= one_step[key] + guard, key
            assert one_step[key] <= worst[key] + guard, key

    @given(spec=spec_strategy)
    @_slow
    def test_event_marker_sanity_on_random_circuits(self, spec):
        design = prepare_design(generate_circuit(spec))
        result = Propagator(design, StaConfig(mode=AnalysisMode.ONE_STEP)).run_pass()
        for slot in result.state.events.values():
            for event in slot.values():
                if event is None:
                    continue
                assert event.t_early <= event.t_cross <= event.t_late
                assert event.transition > 0
