"""Tests for the coupling delay model (paper, Section 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.params import default_process
from repro.waveform.coupling import (
    CouplingLoad,
    CouplingTreatment,
    aggregate_load,
    model_threshold,
)
from repro.waveform.pwl import FALLING, RISING

PROCESS = default_process()
caps = st.floats(min_value=0.0, max_value=1e-12)


class TestDividerDrop:
    def test_capacitive_divider_formula(self):
        """dV = V_DD * C_c / (C_c + C_gnd) -- the model's core equation."""
        load = CouplingLoad(c_ground=30e-15, c_couple_active=10e-15)
        assert load.divider_drop() == pytest.approx(PROCESS.vdd * 10.0 / 40.0)

    def test_no_active_coupling_no_drop(self):
        load = CouplingLoad(c_ground=30e-15, c_couple_passive=20e-15)
        assert load.divider_drop() == 0.0
        assert not load.has_active_coupling

    def test_passive_caps_absorb_the_drop(self):
        """More passive capacitance at the node -> smaller glitch."""
        bare = CouplingLoad(c_ground=30e-15, c_couple_active=10e-15)
        padded = CouplingLoad(
            c_ground=30e-15, c_couple_active=10e-15, c_couple_passive=40e-15
        )
        assert padded.divider_drop() < bare.divider_drop()

    @given(c_gnd=caps, c_act=caps, c_pas=caps)
    @settings(max_examples=60, deadline=None)
    def test_drop_bounded_by_vdd(self, c_gnd, c_act, c_pas):
        if c_gnd + c_act + c_pas == 0:
            return
        load = CouplingLoad(c_gnd, c_act, c_pas)
        assert 0.0 <= load.divider_drop() <= PROCESS.vdd

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            CouplingLoad(c_ground=-1e-15)


class TestTriggerAndRestart:
    def test_rising_trigger_above_restart_by_drop(self):
        load = CouplingLoad(c_ground=30e-15, c_couple_active=10e-15)
        trigger = load.trigger_voltage(RISING)
        restart = load.restart_voltage(RISING)
        assert restart == pytest.approx(PROCESS.v_th_model)
        assert trigger == pytest.approx(restart + load.divider_drop())

    def test_falling_symmetric(self):
        load = CouplingLoad(c_ground=30e-15, c_couple_active=10e-15)
        trigger = load.trigger_voltage(FALLING)
        restart = load.restart_voltage(FALLING)
        assert restart == pytest.approx(PROCESS.vdd - PROCESS.v_th_model)
        assert trigger == pytest.approx(restart - load.divider_drop())

    def test_invalid_direction(self):
        load = CouplingLoad(c_ground=1e-15)
        with pytest.raises(ValueError):
            load.trigger_voltage("up")

    @given(c_gnd=st.floats(min_value=1e-16, max_value=1e-12), c_act=caps)
    @settings(max_examples=40, deadline=None)
    def test_rise_fall_mirror_symmetry(self, c_gnd, c_act):
        load = CouplingLoad(c_gnd, c_act)
        rise_trig = load.trigger_voltage(RISING)
        fall_trig = load.trigger_voltage(FALLING)
        assert rise_trig + fall_trig == pytest.approx(PROCESS.vdd)


class TestAggregate:
    def test_treatment_buckets(self):
        load = aggregate_load(
            10e-15,
            [
                (5e-15, CouplingTreatment.ACTIVE),
                (3e-15, CouplingTreatment.GROUNDED),
                (2e-15, CouplingTreatment.GROUNDED_DOUBLED),
            ],
        )
        assert load.c_ground == pytest.approx(10e-15)
        assert load.c_couple_active == pytest.approx(5e-15)
        assert load.c_couple_passive == pytest.approx(3e-15 + 4e-15)

    def test_c_total_includes_everything(self):
        load = aggregate_load(10e-15, [(5e-15, CouplingTreatment.ACTIVE)])
        assert load.c_total == pytest.approx(15e-15)

    def test_negative_coupling_rejected(self):
        with pytest.raises(ValueError):
            aggregate_load(1e-15, [(-1e-15, CouplingTreatment.ACTIVE)])

    def test_empty_couplings(self):
        load = aggregate_load(7e-15, [])
        assert load.c_total == pytest.approx(7e-15)
        assert not load.has_active_coupling


class TestModelThreshold:
    def test_paper_values(self):
        assert model_threshold(RISING) == pytest.approx(0.2)
        assert model_threshold(FALLING) == pytest.approx(PROCESS.vdd - 0.2)

    def test_invalid(self):
        with pytest.raises(ValueError):
            model_threshold("nope")
