"""Tests for process corners."""

import pytest

from repro.devices.corners import make_corner, standard_corners
from repro.devices.mosfet import Mosfet, MosfetParams


def on_current(process) -> float:
    device = Mosfet(MosfetParams(polarity=1, width=2e-6, length=0.5e-6), process)
    return abs(device.ids(process.vdd, process.vdd))


class TestCorners:
    def test_standard_triple(self):
        corners = standard_corners()
        assert set(corners) == {"typical", "fast", "slow"}

    def test_drive_ordering(self):
        corners = standard_corners()
        fast = on_current(corners["fast"].process)
        typical = on_current(corners["typical"].process)
        slow = on_current(corners["slow"].process)
        assert fast > typical > slow

    def test_model_threshold_tracks_supply(self):
        corners = standard_corners()
        for corner in corners.values():
            p = corner.process
            assert p.v_th_model / p.vdd == pytest.approx(0.2 / 3.3, rel=1e-6)

    def test_vt_shift_symmetric(self):
        corner = make_corner("x", vt_shift=0.05)
        base = standard_corners()["typical"].process
        assert corner.process.vtn == pytest.approx(base.vtn + 0.05)
        assert corner.process.vtp == pytest.approx(base.vtp - 0.05)

    def test_str_mentions_vdd(self):
        assert "VDD" in str(standard_corners()["fast"])


class TestCornersThroughTiming:
    def test_slow_corner_slower_gate(self):
        """A single inverter arc orders fast < typical < slow."""
        from repro.circuit.library import build_library
        from repro.waveform import CouplingLoad, GateDelayCalculator
        from repro.waveform.pwl import RISING

        delays = {}
        for name, corner in standard_corners().items():
            lib = build_library(process=corner.process)
            calc = GateDelayCalculator(process=corner.process)
            arc = calc.compute_arc_relative(
                lib["INV_X1"], "A", RISING, 100e-12, CouplingLoad(40e-15)
            )
            delays[name] = arc.t_cross
        assert delays["fast"] < delays["typical"] < delays["slow"]
