"""Quantization conservatism property (the arc cache's contract).

``GateDelayCalculator`` buckets arcs by rounding the input slew and the
load capacitances *up* to the cache grids.  A slower input and a heavier
load can only delay the output, so the cached (quantized) arc must never
report an earlier ``t_cross`` or ``t_late`` than the exact, unquantized
solve of the same situation -- that is precisely why rounding up is the
conservative direction for the max-delay bound.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.waveform.coupling import CouplingLoad
from repro.waveform.gatedelay import ArcRequest, GateDelayCalculator
from repro.waveform.pwl import FALLING, RISING
from repro.waveform.stage import InputRamp

# Small float slack for solver round-off between two independent
# integrations (time steps differ between the quantized and raw solves).
EPS = 1e-15

ARCS = [("INV_X1", "A"), ("NAND2_X1", "B"), ("NOR2_X1", "A"), ("NAND3_X2", "C")]

arc_strategy = st.sampled_from(ARCS)
direction_strategy = st.sampled_from([RISING, FALLING])
transition_strategy = st.floats(min_value=15e-12, max_value=240e-12)
cap_strategy = st.floats(min_value=1.5e-15, max_value=25e-15)
couple_strategy = st.floats(min_value=0.0, max_value=5e-15)

_prop = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestQuantizationIsConservative:
    @given(
        arc=arc_strategy,
        direction=direction_strategy,
        transition=transition_strategy,
        c_ground=cap_strategy,
        c_active=couple_strategy,
    )
    @_prop
    def test_rounding_up_never_decreases_late_markers(
        self, library, arc, direction, transition, c_ground, c_active
    ):
        calc = GateDelayCalculator()
        name, pin = arc
        ctype = library[name]
        load = CouplingLoad(c_ground=c_ground, c_couple_active=c_active)

        quantized = calc.compute_arc_relative(ctype, pin, direction, transition, load)
        raw = calc.solve_stage_raw(
            ctype,
            pin,
            InputRamp(direction=direction, t_start=0.0, transition=transition),
            load,
        )

        assert quantized.t_cross >= raw.t_cross - EPS
        assert quantized.t_late >= raw.t_late - EPS

    @given(
        arc=arc_strategy,
        direction=direction_strategy,
        transition=transition_strategy,
        c_ground=cap_strategy,
    )
    @_prop
    def test_cached_arc_is_the_exact_solve_at_the_key(
        self, library, arc, direction, transition, c_ground
    ):
        """The cached arc is not an approximation of the quantized point:
        it equals, bitwise, the raw solve at exactly the slew and load the
        cache key records."""
        calc = GateDelayCalculator()
        name, pin = arc
        ctype = library[name]
        load = CouplingLoad(c_ground=c_ground)

        cached = calc.compute_arc_relative(ctype, pin, direction, transition, load)
        request = ArcRequest(
            ctype=ctype,
            pin=pin,
            input_direction=direction,
            input_transition=transition,
            load=load,
        )
        _, _, q_tt, q_passive, q_active, _ = calc._quantized_key(request)
        raw = calc.solve_stage_raw(
            ctype,
            pin,
            InputRamp(direction=direction, t_start=0.0, transition=q_tt),
            CouplingLoad(c_ground=q_passive, c_couple_active=q_active),
        )
        assert cached.t_cross == raw.t_cross
        assert cached.t_late == raw.t_late
        assert cached.t_early == raw.t_early
        assert cached.transition == raw.transition


class TestCanonicalSignatures:
    """Signature canonicalization is exact sharing, never an approximation.

    Two (cell, pin) arcs whose topologies collapse to the same pull-up /
    pull-down device parameters build bit-identical stage tables, so
    letting them share one cache row cannot move any marker: the shared
    result *is* the per-pin solve.  (Conservatism is therefore inherited
    unchanged from the quantization tests above.)
    """

    @given(
        arc=arc_strategy,
        direction=direction_strategy,
        transition=transition_strategy,
        c_ground=cap_strategy,
        c_active=couple_strategy,
    )
    @_prop
    def test_shared_entry_equals_isolated_per_pin_solve(
        self, library, arc, direction, transition, c_ground, c_active
    ):
        shared = GateDelayCalculator()
        name, pin = arc
        ctype = library[name]
        load = CouplingLoad(c_ground=c_ground, c_couple_active=c_active)

        # Warm the shared calculator through every arc in the pool first,
        # so if any pair aliases to the same signature, this request is
        # served from the other pin's cache row.
        for other_name, other_pin in ARCS:
            shared.compute_arc_relative(
                library[other_name], other_pin, direction, transition, load
            )
        via_shared = shared.compute_arc_relative(
            ctype, pin, direction, transition, load
        )

        isolated = GateDelayCalculator()
        via_isolated = isolated.compute_arc_relative(
            ctype, pin, direction, transition, load
        )
        assert via_shared == via_isolated

    def test_aliased_pins_share_one_cache_row(self, library):
        """Pins that collapse to the same devices share signature, table
        and cache entry, and the alias counter sees them."""
        calc = GateDelayCalculator()
        nand = library["NAND2_X1"]
        # Both NAND2 inputs gate identically sized devices: series pull-
        # down collapse and the single pull-up are the same per pin.
        sig_a = calc.signature(nand, "A")
        sig_b = calc.signature(nand, "B")
        assert sig_a == sig_b
        assert calc._c_sig_aliases.value == 1
        load = CouplingLoad(c_ground=4e-15)
        first = calc.compute_arc_relative(nand, "A", RISING, 40e-12, load)
        evaluations = calc.evaluations
        second = calc.compute_arc_relative(nand, "B", RISING, 40e-12, load)
        assert second == first
        assert calc.evaluations == evaluations  # dedup: no second solve
        assert calc._c_dedup_hits.value == 1
