"""Property tests for serialisation round-trips (Liberty, .bench)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.characterize.characterize import (
    ArcTable,
    CellCharacterization,
    LibraryCharacterization,
)
from repro.characterize.liberty import parse_liberty, write_liberty
from repro.circuit.bench import parse_bench, write_bench
from repro.circuit.generators import GeneratorSpec, generate_bench
from repro.waveform.pwl import FALLING, RISING

_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

positive_times = st.floats(min_value=1e-12, max_value=1e-9)


@st.composite
def characterizations(draw):
    n_slews = draw(st.integers(min_value=2, max_value=4))
    n_loads = draw(st.integers(min_value=2, max_value=4))
    slews = sorted(
        draw(
            st.lists(
                st.floats(min_value=1e-11, max_value=1e-9),
                min_size=n_slews,
                max_size=n_slews,
                unique=True,
            )
        )
    )
    loads = sorted(
        draw(
            st.lists(
                st.floats(min_value=1e-15, max_value=1e-12),
                min_size=n_loads,
                max_size=n_loads,
                unique=True,
            )
        )
    )
    char = LibraryCharacterization(name="prop", slews=slews, loads=loads)
    n_cells = draw(st.integers(min_value=1, max_value=3))
    for c in range(n_cells):
        cell = CellCharacterization(cell=f"CELL{c}_X1")
        pins = draw(st.integers(min_value=1, max_value=2))
        for p in range(pins):
            pin = chr(ord("A") + p)
            for direction in (RISING, FALLING):
                delay = np.array(
                    draw(
                        st.lists(
                            st.lists(positive_times, min_size=n_loads, max_size=n_loads),
                            min_size=n_slews,
                            max_size=n_slews,
                        )
                    )
                )
                transition = delay * draw(st.floats(min_value=0.5, max_value=2.0))
                cell.arcs[(pin, direction)] = ArcTable(
                    cell=cell.cell,
                    pin=pin,
                    input_direction=direction,
                    slews=slews,
                    loads=loads,
                    delay=delay,
                    transition=transition,
                )
        char.cells[cell.cell] = cell
    return char


class TestLibertyRoundtrip:
    @given(char=characterizations())
    @_settings
    def test_roundtrip(self, char):
        restored = parse_liberty(write_liberty(char))
        assert sorted(restored.cells) == sorted(char.cells)
        assert np.allclose(restored.slews, char.slews, rtol=1e-5)
        assert np.allclose(restored.loads, char.loads, rtol=1e-5)
        for name, cell in char.cells.items():
            for key, arc in cell.arcs.items():
                other = restored.cells[name].arcs[key]
                assert np.allclose(other.delay, arc.delay, rtol=1e-4)
                assert np.allclose(other.transition, arc.transition, rtol=1e-4)


class TestBenchRoundtrip:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        n_gates=st.integers(min_value=10, max_value=60),
        depth=st.integers(min_value=2, max_value=6),
    )
    @_settings
    def test_generated_netlists_roundtrip(self, seed, n_gates, depth):
        spec = GeneratorSpec(
            name="rt", seed=seed, n_inputs=3, n_outputs=3, n_ff=4,
            n_gates=n_gates, depth=depth,
        )
        first = generate_bench(spec)
        second = parse_bench(write_bench(first), name="rt")
        assert set(first.inputs) == set(second.inputs)
        assert first.outputs == second.outputs
        assert set(first.gates) == set(second.gates)
        for name, gate in first.gates.items():
            assert second.gates[name].gtype == gate.gtype
            assert second.gates[name].inputs == gate.inputs
