"""Tests for the CrosstalkSTA facade."""

import pytest

from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode, StaConfig


class TestRun:
    def test_default_mode_is_iterative(self, s27_design):
        result = CrosstalkSTA(s27_design).run()
        assert result.mode is AnalysisMode.ITERATIVE
        assert result.passes >= 2

    def test_explicit_mode_overrides(self, s27_design):
        sta = CrosstalkSTA(s27_design, StaConfig(mode=AnalysisMode.BEST_CASE))
        result = sta.run(AnalysisMode.WORST_CASE)
        assert result.mode is AnalysisMode.WORST_CASE

    def test_result_metadata(self, s27_design):
        result = CrosstalkSTA(s27_design).run(AnalysisMode.ONE_STEP)
        assert result.design_name == "s27"
        assert result.longest_delay > 0
        assert result.longest_delay_ns == pytest.approx(result.longest_delay * 1e9)
        assert result.runtime_seconds > 0
        assert result.critical_endpoint
        assert "s27" in str(result)

    def test_run_all_modes_covers_every_mode(self, s27_design):
        results = CrosstalkSTA(s27_design).run_all_modes()
        assert set(results) == set(AnalysisMode)

    def test_arrival_lookup(self, s27_design):
        result = CrosstalkSTA(s27_design).run(AnalysisMode.BEST_CASE)
        endpoint = result.critical_endpoint
        direction = result.critical_direction
        assert result.arrival(endpoint, direction) == pytest.approx(result.longest_delay)
        with pytest.raises(KeyError):
            result.arrival("nonexistent", "rise")

    def test_shared_calculator_reused(self, s27_design):
        sta = CrosstalkSTA(s27_design)
        sta.run(AnalysisMode.BEST_CASE)
        evals_first = sta.calculator.evaluations
        sta.run(AnalysisMode.BEST_CASE)
        # Second identical run is served from the arc cache.
        assert sta.calculator.evaluations == evals_first

    def test_history_recorded_for_iterative(self, s27_design):
        result = CrosstalkSTA(s27_design).run(AnalysisMode.ITERATIVE)
        assert len(result.history) == result.passes
        assert result.history[0].index == 1

    def test_critical_path_available(self, s27_design):
        sta = CrosstalkSTA(s27_design)
        result = sta.run(AnalysisMode.ITERATIVE)
        path = sta.critical_path(result)
        assert len(path) > 0


class TestConfig:
    def test_with_mode_preserves_other_fields(self):
        config = StaConfig(guard=7e-12)
        new = config.with_mode(AnalysisMode.WORST_CASE)
        assert new.mode is AnalysisMode.WORST_CASE
        assert new.guard == 7e-12

    def test_window_based_flag(self):
        assert AnalysisMode.ONE_STEP.is_window_based
        assert AnalysisMode.ITERATIVE.is_window_based
        assert not AnalysisMode.WORST_CASE.is_window_based
        assert not AnalysisMode.BEST_CASE.is_window_based
        assert not AnalysisMode.STATIC_DOUBLED.is_window_based

    def test_guard_band_tightens_conservatively(self, s27_design):
        """A larger guard band forces more coupling -> a larger bound."""
        small = CrosstalkSTA(
            s27_design, StaConfig(mode=AnalysisMode.ONE_STEP, guard=1e-12)
        ).run()
        large = CrosstalkSTA(
            s27_design, StaConfig(mode=AnalysisMode.ONE_STEP, guard=200e-12)
        ).run()
        assert large.longest_delay >= small.longest_delay - 1e-15
