"""Performance smoke checks for the delta-driven iterative engine.

Run in CI on tiny inputs: after the first pass has paid for the full
propagation, the delta-driven memo must keep later passes cheap -- the
second pass may issue at most 30% of the first pass's waveform
evaluations.  A regression here (an over-eager fingerprint, a memo that
never matches) would silently return the iterative mode to quadratic
cost without changing any result.
"""

import pytest

from repro.circuit.benchmarks import s27, s35932_like
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode, SolverTier, StaConfig
from repro.flow import prepare_design

PASS2_BUDGET = 0.30

# Screened-tier smoke budget: at most half of the arcs an uncoupled
# screenable mode sees may fall back to full Newton.
ESCALATION_BUDGET = 0.50
SCREEN_TOLERANCE = 100e-12


def _iterative_history(circuit, **config):
    design = prepare_design(circuit)
    sta = CrosstalkSTA(design, StaConfig(mode=AnalysisMode.ITERATIVE, **config))
    result = sta.run()
    assert len(result.history) >= 2, "iterative mode converged in one pass"
    return result


class TestDeltaDrivenReuse:
    def test_s27_second_pass_free(self):
        """On the paper's example circuit the windows stabilize after one
        pass: the convergence pass reuses every arc."""
        result = _iterative_history(s27())
        second = result.history[1]
        assert second.waveform_evaluations == 0
        assert second.dirty_arcs == 0
        assert second.reused_arcs > 0

    def test_tiny_s35932_pass2_within_budget(self):
        """Scaled-down Table 1 circuit: real coupling churn between the
        passes, still >= 70% of the waveform work avoided."""
        result = _iterative_history(s35932_like(scale=0.02))
        first, second = result.history[0], result.history[1]
        assert first.waveform_evaluations > 0
        ratio = second.waveform_evaluations / first.waveform_evaluations
        assert ratio <= PASS2_BUDGET, (
            f"pass 2 issued {second.waveform_evaluations} of "
            f"{first.waveform_evaluations} evaluations ({ratio:.1%} > "
            f"{PASS2_BUDGET:.0%} budget)"
        )
        # The reuse accounting must corroborate: most arcs were clean.
        assert second.reused_arcs > second.dirty_arcs

    def test_incremental_off_pays_full_passes(self):
        """The control: with the memo disabled, pass 2 repeats roughly
        pass 1's work, so the budget above is meaningful."""
        result = _iterative_history(s27(), incremental=False)
        first, second = result.history[0], result.history[1]
        assert second.waveform_evaluations >= 0.5 * first.waveform_evaluations
        assert second.reused_arcs == 0


class TestScreenedBudget:
    """CI budget for the two-tier solver: on the smoke circuit the
    screen must actually absorb work (escalation fraction bounded) and
    the bound it reports must dominate exact."""

    @pytest.mark.parametrize(
        "mode", [AnalysisMode.BEST_CASE, AnalysisMode.STATIC_DOUBLED]
    )
    def test_escalation_fraction_within_budget(self, mode):
        """Uncoupled-screenable modes: with refinement disabled the
        screen should answer at least half the queries itself."""
        design = prepare_design(s35932_like(scale=0.02))
        sta = CrosstalkSTA(
            design,
            StaConfig(
                mode=mode,
                solver_tier=SolverTier.SCREENED,
                screen_tolerance=SCREEN_TOLERANCE,
                screen_slack_margin=0.0,
            ),
        )
        result = sta.run()
        tiers = result.cache_stats["tier_counts"]
        total = sum(tiers.values())
        assert total > 0, "screened run answered no queries"
        fraction = tiers["newton"] / total
        assert fraction <= ESCALATION_BUDGET, (
            f"{mode.value}: {tiers['newton']} of {total} queries escalated "
            f"to Newton ({fraction:.1%} > {ESCALATION_BUDGET:.0%} budget)"
        )
        # The screen paid for itself: cheap-tier answers outnumber the
        # anchor + coarse solves that built the bank.
        stats = result.cache_stats
        cheap = tiers["surface"] + tiers["analytical"]
        assert cheap > stats["anchor_solves"] + stats["coarse_solves"]

    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_screened_bound_dominates_exact(self, mode):
        """Conservatism on the smoke circuit in every mode, with the
        default slack refinement keeping the delta inside tolerance."""
        circuit = s35932_like(scale=0.02)
        exact = CrosstalkSTA(
            prepare_design(circuit), StaConfig(mode=mode)
        ).run()
        screened = CrosstalkSTA(
            prepare_design(circuit),
            StaConfig(
                mode=mode,
                solver_tier=SolverTier.SCREENED,
                screen_tolerance=SCREEN_TOLERANCE,
            ),
        ).run()
        delta = screened.longest_delay - exact.longest_delay
        assert delta >= -1e-15
        assert delta <= SCREEN_TOLERANCE + 1e-15


class TestColumnarBudget:
    """CI budgets for the columnar core: the one-time design compile
    must amortize, and the full-scale run recorded in the committed
    benchmark JSON must fit the CI runner's RAM."""

    # Ubuntu CI runners expose ~7 GB to the job; leave generous headroom.
    RUNNER_RAM_BUDGET_MB = 4096.0
    COMPILE_BUDGET_FRACTION = 0.10
    SMOKE_SCALE = 0.05

    def test_compile_within_budget_of_solve(self):
        """At the benchmark's default scale the columnar compile costs
        at most 10% of a single one-step solve."""
        import time

        from repro.core.modes import Core, Engine

        design = prepare_design(s35932_like(scale=self.SMOKE_SCALE))
        sta = CrosstalkSTA(
            design,
            StaConfig(
                mode=AnalysisMode.ONE_STEP,
                engine=Engine.BATCH,
                core=Core.COLUMNAR,
            ),
        )
        t0 = time.perf_counter()
        result = sta.run()
        seconds = time.perf_counter() - t0
        assert result.compile_seconds > 0.0, "columnar run recorded no compile"
        assert result.compile_seconds <= self.COMPILE_BUDGET_FRACTION * seconds, (
            f"compile {result.compile_seconds:.3f}s exceeds "
            f"{self.COMPILE_BUDGET_FRACTION:.0%} of the {seconds:.3f}s solve"
        )

    def test_full_scale_memory_within_runner_budget(self):
        """The committed core-sweep row for scale 1.0 (regenerated by
        benchmarks/bench_perf_baseline.py) must stay under the CI
        runner's RAM, so the full-size benchmark remains runnable."""
        import json
        from pathlib import Path

        bench = Path(__file__).parent.parent / "BENCH_sta_runtime.json"
        payload = json.loads(bench.read_text())
        sweep = payload.get("core_sweep")
        assert sweep, "BENCH_sta_runtime.json has no core_sweep section"
        full = [row for row in sweep["scales"] if row["scale"] >= 1.0]
        assert full, "core sweep has no scale-1.0 row"
        rss = full[0]["cores"]["columnar"]["peak_rss_mb"]
        assert rss <= self.RUNNER_RAM_BUDGET_MB, (
            f"recorded scale-1.0 peak RSS {rss:.0f} MB exceeds the "
            f"{self.RUNNER_RAM_BUDGET_MB:.0f} MB runner budget"
        )
