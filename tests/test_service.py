"""Tests for the timing-query service (protocol, sessions, execution,
clients, socket server)."""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time

import pytest

from repro.core.modes import AnalysisMode, StaConfig
from repro.core.netreport import validate_net_report
from repro.errors import DegradationBudgetError, InputError
from repro.service import (
    ERR_BAD_REQUEST,
    ERR_BUSY,
    ERR_DEADLINE,
    ERR_DEGRADED,
    ERR_INPUT,
    ERR_INTERNAL,
    ERR_UNKNOWN_METHOD,
    ERR_UNKNOWN_SESSION,
    PROTOCOL_VERSION,
    InProcessClient,
    RequestExecutor,
    ServiceCallError,
    ServiceClient,
    ServiceError,
    SessionManager,
    TimingServer,
    TimingService,
    apply_edit,
    error_payload,
)
from repro.service.protocol import (
    decode_request,
    decode_response,
    encode_error,
    encode_request,
    encode_response,
)
from repro.service.session import design_digest, session_config

ONE_STEP = StaConfig(mode=AnalysisMode.ONE_STEP)


class TestProtocol:
    def test_request_roundtrip(self):
        line = encode_request(7, "analyze", {"session": "abc", "mode": "one_step"})
        assert line.endswith(b"\n") and b"\n" not in line[:-1]
        request_id, method, params = decode_request(line)
        assert request_id == 7
        assert method == "analyze"
        assert params == {"session": "abc", "mode": "one_step"}

    def test_response_roundtrip(self):
        line = encode_response("id-1", {"ok": True})
        response_id, result = decode_response(line)
        assert response_id == "id-1"
        assert result == {"ok": True}

    def test_decode_request_rejects_garbage(self):
        for bad in (b"not json\n", b"[1,2]\n", b'{"params": {}}\n', b'{"method": 5}\n'):
            with pytest.raises(ServiceError) as exc:
                decode_request(bad)
            assert exc.value.code == ERR_BAD_REQUEST

    def test_error_taxonomy_mapping(self):
        payload = error_payload(InputError("bad net"))
        assert payload["code"] == ERR_INPUT
        assert payload["kind"] == "input_error"
        assert payload["data"]["exit_code"] == 2

        payload = error_payload(DegradationBudgetError(degraded=5, budget=2))
        assert payload["code"] == ERR_DEGRADED
        assert payload["data"]["exit_code"] == 3
        assert payload["data"]["degraded"] == 5

        payload = error_payload(ValueError("boom"))
        assert payload["code"] == ERR_INTERNAL
        assert payload["data"]["exception"] == "ValueError"
        assert payload["data"]["exit_code"] == 4

    def test_error_response_raises_call_error(self):
        line = encode_error(3, ServiceError(ERR_BUSY, "busy", retry_after=1.5))
        with pytest.raises(ServiceCallError) as exc:
            decode_response(line)
        assert exc.value.code == ERR_BUSY
        assert exc.value.kind == "busy"
        assert exc.value.retry_after == 1.5


class TestWhatifEdits:
    def test_unknown_action(self, s27_design):
        with pytest.raises(InputError):
            apply_edit(s27_design, {"action": "teleport", "nets": ["G15"]})

    def test_unknown_net(self, s27_design):
        with pytest.raises(InputError):
            apply_edit(s27_design, {"action": "respace", "nets": ["NOPE"]})

    def test_bad_cap(self, s27_design):
        with pytest.raises(InputError):
            apply_edit(
                s27_design,
                {"action": "set_coupling", "net": "G15", "neighbour": "G11", "cap": -1},
            )

    def test_drop_coupling_is_symmetric(self, s27_design):
        victim = next(
            net for net, load in s27_design.loads.items() if load.couplings
        )
        neighbour = next(iter(s27_design.loads[victim].couplings))
        edited, normalized = apply_edit(
            s27_design,
            {"action": "drop_coupling", "net": victim, "neighbour": neighbour},
        )
        assert normalized["action"] == "drop_coupling"
        assert neighbour not in edited.loads[victim].couplings
        assert victim not in edited.loads[neighbour].couplings
        # Source design untouched (rollback is "drop the copy").
        assert neighbour in s27_design.loads[victim].couplings

    def test_set_coupling_updates_both_sides(self, s27_design):
        victim = next(
            net for net, load in s27_design.loads.items() if load.couplings
        )
        neighbour = next(iter(s27_design.loads[victim].couplings))
        edited, _ = apply_edit(
            s27_design,
            {
                "action": "set_coupling",
                "net": victim,
                "neighbour": neighbour,
                "cap": 1e-16,
            },
        )
        assert edited.loads[victim].couplings[neighbour] == 1e-16
        assert edited.loads[neighbour].couplings[victim] == 1e-16

    def test_digest_tracks_edits(self, s27_design):
        victim = next(
            net for net, load in s27_design.loads.items() if load.couplings
        )
        neighbour = next(iter(s27_design.loads[victim].couplings))
        edited, _ = apply_edit(
            s27_design,
            {"action": "drop_coupling", "net": victim, "neighbour": neighbour},
        )
        assert design_digest(edited) != design_digest(s27_design)
        assert design_digest(s27_design) == design_digest(s27_design)


class TestSessionConfig:
    def test_overrides(self):
        config = session_config(
            ONE_STEP, {"mode": "iterative", "workers": 2, "strict": True}
        )
        assert config.mode is AnalysisMode.ITERATIVE
        assert config.workers == 2
        assert config.strict

    def test_core_override(self):
        from repro.core.modes import Core

        config = session_config(ONE_STEP, {"core": "object"})
        assert config.core is Core.OBJECT
        assert session_config(ONE_STEP, {"core": "columnar"}).core is Core.COLUMNAR

    def test_unknown_key(self):
        with pytest.raises(InputError):
            session_config(ONE_STEP, {"turbo": True})

    def test_bad_value(self):
        with pytest.raises(InputError):
            session_config(ONE_STEP, {"mode": "warp_speed"})


class TestSessionManager:
    def test_open_get_close(self):
        manager = SessionManager(config=ONE_STEP)
        session = manager.open("s27")
        assert manager.get(session.session_id) is session
        stats = manager.close(session.session_id)
        assert stats["design"] == "s27"
        assert len(manager) == 0

    def test_unknown_session(self):
        manager = SessionManager(config=ONE_STEP)
        with pytest.raises(ServiceError) as exc:
            manager.get("nope")
        assert exc.value.code == ERR_UNKNOWN_SESSION

    def test_lru_eviction(self):
        manager = SessionManager(config=ONE_STEP, max_sessions=2)
        first = manager.open("s27")
        second = manager.open("s27")
        # Touch the oldest so the *other* one becomes LRU.
        manager.get(first.session_id)
        third = manager.open("s27")
        assert len(manager) == 2
        ids = manager.ids()
        assert first.session_id in ids
        assert third.session_id in ids
        assert second.session_id not in ids

    def test_unknown_netlist(self):
        manager = SessionManager(config=ONE_STEP)
        with pytest.raises(InputError):
            manager.open("gen:s99999")


@pytest.fixture(scope="module")
def service():
    service = TimingService(config=ONE_STEP, workers=2, queue_limit=4)
    yield service
    service.close()


@pytest.fixture(scope="module")
def client(service):
    return InProcessClient(service)


@pytest.fixture(scope="module")
def sid(client):
    return client.open_session("s27")["session"]


class TestInProcessService:
    def test_ping(self, client):
        payload = client.ping()
        assert payload["protocol"] == PROTOCOL_VERSION
        assert payload["version"]

    def test_open_session_info(self, client, sid):
        info = client.session_info(sid)
        assert info["design"] == "s27"
        assert info["cells"] == 16
        assert info["coupling_pairs"] > 0

    def test_analyze_is_cached(self, client, sid):
        first = client.analyze(sid, mode="one_step")
        second = client.analyze(sid, mode="one_step")
        assert first == second
        assert first["longest_delay_hex"] == float(first["longest_delay"]).hex()

    def test_query_net(self, client, sid):
        report = client.net_report(sid, mode="one_step", top=3)
        net = report["nets"][0]["net"]
        payload = client.query_net(sid, net, mode="one_step")
        assert payload["net"] == net
        assert payload["rank"] == 1
        assert payload["couplings"]
        assert payload["exposure"]["score"] > 0
        json.dumps(payload)  # strictly JSON-safe (no infinities)

    def test_query_net_unknown(self, client, sid):
        with pytest.raises(ServiceCallError) as exc:
            client.query_net(sid, "NOT_A_NET")
        assert exc.value.code == ERR_INPUT
        assert exc.value.data["exit_code"] == 2

    def test_net_report_schema(self, client, sid):
        payload = client.net_report(sid, mode="one_step", top=5)
        assert validate_net_report(payload) == []
        assert payload["session"] == sid
        assert len(payload["nets"]) <= 5

    def test_query_path(self, client, sid):
        analysis = client.analyze(sid, mode="one_step")
        path = client.query_path(sid, mode="one_step")
        assert path["endpoint"] == analysis["critical_endpoint"]
        assert path["steps"]
        assert path["delay_hex"] == float(path["delay"]).hex()

    def test_whatif_uncommitted_rolls_back(self, client, sid):
        before = client.analyze(sid, mode="one_step")
        report = client.net_report(sid, mode="one_step", top=1)
        victim = report["nets"][0]["net"]
        payload = client.whatif(
            sid,
            {"action": "respace", "nets": [victim], "guard_tracks": 1},
            mode="one_step",
        )
        assert not payload["committed"]
        assert payload["before"]["longest_delay_hex"] == before["longest_delay_hex"]
        # Session state untouched: the baseline answer is unchanged.
        assert client.analyze(sid, mode="one_step") == before

    def test_whatif_bad_edit_cheap_reject(self, client, sid):
        with pytest.raises(ServiceCallError) as exc:
            client.whatif(sid, {"action": "respace", "nets": []})
        assert exc.value.code == ERR_INPUT

    def test_whatif_commit_swaps_design(self, client):
        sid = client.open_session("s27")["session"]
        report = client.net_report(sid, mode="one_step", top=1)
        victim = report["nets"][0]["net"]
        neighbour = next(
            iter(client.query_net(sid, victim, mode="one_step")["couplings"])
        )
        payload = client.whatif(
            sid,
            {"action": "drop_coupling", "net": victim, "neighbour": neighbour},
            mode="one_step",
            commit=True,
        )
        assert payload["committed"]
        # The committed result *is* the session's answer now.
        after = client.analyze(sid, mode="one_step")
        assert after["longest_delay_hex"] == payload["after"]["longest_delay_hex"]
        assert neighbour not in client.query_net(sid, victim, mode="one_step")["couplings"]
        client.close_session(sid)

    def test_unknown_method(self, client):
        with pytest.raises(ServiceCallError) as exc:
            client.call("bogus")
        assert exc.value.code == ERR_UNKNOWN_METHOD

    def test_metrics_exposes_service_series(self, client, sid):
        snapshot = client.metrics()
        assert any(
            key.startswith("service.requests") for key in snapshot["counters"]
        )
        assert "service.sessions" in snapshot["gauges"]

    def test_close_session(self, client):
        sid = client.open_session("s27")["session"]
        stats = client.close_session(sid)
        assert stats["session"] == sid
        with pytest.raises(ServiceCallError) as exc:
            client.analyze(sid)
        assert exc.value.code == ERR_UNKNOWN_SESSION


class TestSessionCheckpoints:
    def test_checkpoint_written_and_dropped_on_commit(self, tmp_path):
        manager = SessionManager(
            config=StaConfig(mode=AnalysisMode.ITERATIVE),
            checkpoint_dir=str(tmp_path),
        )
        session = manager.open("s27")
        assert session.checkpoint_path is not None
        session.analyze()
        assert os.path.exists(session.checkpoint_path)
        victim = next(
            net for net, load in session.design.loads.items() if load.couplings
        )
        neighbour = next(iter(session.design.loads[victim].couplings))
        stale = session.checkpoint_path
        session.whatif(
            {"action": "drop_coupling", "net": victim, "neighbour": neighbour},
            commit=True,
        )
        assert session.checkpoint_path is None
        assert not os.path.exists(stale)

    def test_checkpoint_keyed_by_design(self, tmp_path):
        manager = SessionManager(
            config=StaConfig(mode=AnalysisMode.ITERATIVE),
            checkpoint_dir=str(tmp_path),
        )
        a = manager.open("s27")
        b = manager.open("gen:s35932", scale=0.01)
        assert a.checkpoint_path != b.checkpoint_path


class TestExecutor:
    def test_backpressure_rejects_with_retry_after(self):
        executor = RequestExecutor(workers=1, queue_limit=0)
        release = threading.Event()

        async def scenario():
            first = asyncio.ensure_future(
                executor.submit(lambda: release.wait(5), method="slow")
            )
            await asyncio.sleep(0.05)  # let the worker occupy its slot
            with pytest.raises(ServiceError) as exc:
                await executor.submit(lambda: None, method="fast")
            assert exc.value.code == ERR_BUSY
            assert exc.value.data["retry_after"] > 0
            release.set()
            await first

        asyncio.run(scenario())
        assert executor.pending == 0
        executor.shutdown()

    def test_deadline_answers_without_cancelling(self):
        executor = RequestExecutor(workers=1, queue_limit=0)
        finished = threading.Event()

        def slow():
            time.sleep(0.3)
            finished.set()

        async def scenario():
            with pytest.raises(ServiceError) as exc:
                await executor.submit(slow, method="slow", deadline=0.05)
            assert exc.value.code == ERR_DEADLINE
            # The thread was not killed; while the loop is still alive it
            # finishes and frees its slot.
            deadline = time.monotonic() + 2.0
            while executor.pending and time.monotonic() < deadline:
                await asyncio.sleep(0.01)

        asyncio.run(scenario())
        assert finished.wait(2.0)
        assert executor.pending == 0
        executor.shutdown()

    def test_run_sync_admission(self):
        executor = RequestExecutor(workers=1, queue_limit=0)
        assert executor.run_sync(lambda: 41 + 1) == 42
        assert executor.pending == 0
        executor.shutdown()


def _start_server(service):
    server = TimingServer(service, host="127.0.0.1", port=0)
    ready = threading.Event()

    def run():
        async def main():
            await server.start()
            ready.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10)
    return server, thread


class TestSocketServer:
    def test_full_session_over_tcp(self):
        service = TimingService(config=ONE_STEP, workers=2, queue_limit=4)
        server, thread = _start_server(service)
        with ServiceClient(server.address) as client:
            assert client.ping()["protocol"] == PROTOCOL_VERSION
            sid = client.open_session("s27")["session"]
            analysis = client.analyze(sid, mode="one_step")
            assert analysis["longest_delay"] > 0
            report = client.net_report(sid, mode="one_step", top=3)
            assert validate_net_report(report) == []
            victim = report["nets"][0]["net"]
            payload = client.whatif(
                sid,
                {"action": "respace", "nets": [victim], "guard_tracks": 1},
                mode="one_step",
            )
            assert payload["after"]["longest_delay_hex"]
            with pytest.raises(ServiceCallError) as exc:
                client.analyze("nope")
            assert exc.value.code == ERR_UNKNOWN_SESSION
            assert client.shutdown()["stopping"]
        thread.join(20)
        assert not thread.is_alive()
        with pytest.raises(OSError):
            ServiceClient(server.address, timeout=2.0)

    def test_unix_socket(self, tmp_path):
        service = TimingService(config=ONE_STEP, workers=1, queue_limit=2)
        path = str(tmp_path / "svc.sock")
        server = TimingServer(service, socket_path=path)
        ready = threading.Event()

        def run():
            async def main():
                await server.start()
                ready.set()
                await server.serve_until_shutdown()

            asyncio.run(main())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(10)
        with ServiceClient(f"unix:{path}") as client:
            assert client.ping()["protocol"] == PROTOCOL_VERSION
            client.shutdown()
        thread.join(20)
        assert not thread.is_alive()

    def test_malformed_line_answered_not_disconnected(self):
        service = TimingService(config=ONE_STEP, workers=1, queue_limit=2)
        server, thread = _start_server(service)
        client = ServiceClient(server.address)
        try:
            client._file.write(b"this is not json\n")
            client._file.flush()
            line = client._file.readline()
            with pytest.raises(ServiceCallError) as exc:
                decode_response(line)
            assert exc.value.code == ERR_BAD_REQUEST
            # The connection survived the bad line.
            assert client.ping()["protocol"] == PROTOCOL_VERSION
            client.shutdown()
        finally:
            client.close()
        thread.join(20)

    def test_concurrent_overload_never_drops_silently(self):
        # 1 worker, no queue: most of a concurrent burst must be rejected
        # -- and every rejection must carry retry_after.
        service = TimingService(config=ONE_STEP, workers=1, queue_limit=0)
        server, thread = _start_server(service)
        results, errors = [], []

        def hammer():
            try:
                with ServiceClient(server.address) as c:
                    sid = c.open_session("s27")["session"]
                    results.append(c.analyze(sid, mode="iterative", force=True))
            except ServiceCallError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert results  # some made it through
        for exc in errors:
            assert exc.code == ERR_BUSY
            assert exc.retry_after is not None and exc.retry_after > 0
        with ServiceClient(server.address) as c:
            c.call_with_retry("shutdown")
        thread.join(20)
