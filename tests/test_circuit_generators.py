"""Tests for the synthetic benchmark generator and clock tree insertion."""

import pytest

from repro.circuit.bench import map_to_circuit
from repro.circuit.generators import (
    S35932_SPEC,
    GeneratorSpec,
    add_clock_tree,
    generate_bench,
    generate_circuit,
    s35932_like,
    s38417_like,
    s38584_like,
)
from repro.circuit.validate import validate_circuit


def small_spec(**overrides) -> GeneratorSpec:
    params = dict(
        name="gen", seed=7, n_inputs=6, n_outputs=5, n_ff=12, n_gates=150, depth=9
    )
    params.update(overrides)
    return GeneratorSpec(**params)


class TestGenerator:
    def test_deterministic(self):
        a = generate_bench(small_spec())
        b = generate_bench(small_spec())
        assert list(a.gates) == list(b.gates)
        assert all(a.gates[k].inputs == b.gates[k].inputs for k in a.gates)

    def test_seed_changes_output(self):
        a = generate_bench(small_spec())
        b = generate_bench(small_spec(seed=8))
        assert any(
            a.gates[k].inputs != b.gates[k].inputs
            for k in a.gates
            if k in b.gates and a.gates[k].gtype != "DFF"
        )

    def test_counts(self):
        spec = small_spec()
        netlist = generate_bench(spec)
        assert len(netlist.inputs) == spec.n_inputs
        assert netlist.flip_flop_count() == spec.n_ff
        comb = len(netlist.gates) - spec.n_ff
        assert comb == pytest.approx(spec.n_gates, abs=spec.depth)

    def test_depth_respected(self):
        circuit = generate_circuit(small_spec(depth=12))
        assert 10 <= circuit.depth() <= 16  # mapping adds local stages

    def test_valid_circuit(self):
        circuit = generate_circuit(small_spec())
        report = validate_circuit(circuit)
        assert report.ok, report.errors

    def test_fanout_capped(self):
        spec = small_spec()
        netlist = generate_bench(spec)
        fanout = netlist.signal_fanout()
        assert max(fanout.values()) <= spec.fanout_cap + 1

    def test_scaled(self):
        full = small_spec()
        half = full.scaled(0.5)
        assert half.n_ff == 6
        assert half.n_gates == 75
        assert half.depth == full.depth
        with pytest.raises(ValueError):
            full.scaled(0.0)

    def test_outputs_distinct(self):
        netlist = generate_bench(small_spec(n_outputs=12))
        assert len(set(netlist.outputs)) == len(netlist.outputs)


class TestClockTree:
    def test_small_circuit_no_tree(self):
        circuit = map_to_circuit(generate_bench(small_spec(n_ff=4, n_gates=30, depth=4)))
        assert add_clock_tree(circuit, max_fanout=12) == 0

    def test_tree_inserted(self):
        circuit = map_to_circuit(generate_bench(small_spec(n_ff=40)))
        added = add_clock_tree(circuit, max_fanout=8)
        assert added > 0
        # Root clock net now drives buffers only, within the fanout cap.
        assert circuit.clock_net.fanout <= 8

    def test_tree_nets_marked_clock(self):
        circuit = map_to_circuit(generate_bench(small_spec(n_ff=40)))
        add_clock_tree(circuit, max_fanout=8)
        clock_nets = [n for n in circuit.nets.values() if n.is_clock]
        assert len(clock_nets) > 1

    def test_ffs_still_clocked(self):
        circuit = map_to_circuit(generate_bench(small_spec(n_ff=40)))
        add_clock_tree(circuit, max_fanout=8)
        report = validate_circuit(circuit)
        assert report.ok, report.errors

    def test_every_ff_reaches_clock_root(self):
        circuit = map_to_circuit(generate_bench(small_spec(n_ff=40)))
        add_clock_tree(circuit, max_fanout=8)
        for ff in circuit.flip_flops():
            net = ff.pins["CLK"].net
            hops = 0
            while not net.is_clock and hops < 50:
                net = net.driver_cell().pins["A"].net
                hops += 1
            assert net.is_clock


class TestNamedCircuits:
    @pytest.mark.parametrize(
        "factory,target",
        [(s35932_like, 17900), (s38417_like, 23922), (s38584_like, 20812)],
    )
    def test_scaled_instances_valid(self, factory, target):
        circuit = factory(scale=0.03)
        report = validate_circuit(circuit)
        assert report.ok, report.errors[:3]
        assert circuit.cell_count() == pytest.approx(target * 0.03, rel=0.35)

    def test_full_scale_cell_count_close_to_paper(self):
        """Only the spec arithmetic, not a full generation: mapped cell
        count tracks n_gates + FFs + clock tree."""
        spec = S35932_SPEC
        rough = spec.n_gates + spec.n_ff + spec.n_ff // 6
        assert rough == pytest.approx(17900, rel=0.1)
