"""Cross-validation: the collapsed stage solver against full transistor
simulation, gate by gate.

The timing engine's core approximation is the collapse of each cell onto
one equivalent device pair.  These tests simulate the *full* transistor
network of representative cells (stacks included, side inputs at their
sensitizing rails) and check that the stage solver tracks the simulated
delay closely and never below it by more than a small tolerance.
"""

import pytest

from repro.circuit import default_library
from repro.devices import default_process
from repro.devices.mosfet import Mosfet, MosfetParams
from repro.spice import PwlSource, SimCircuit, TransientSimulator, delay_between
from repro.validate.pathsim import _sensitizing_side_inputs
from repro.waveform import CouplingLoad, GateDelayCalculator
from repro.waveform.pwl import FALLING, RISING

PROCESS = default_process()
VDD = PROCESS.vdd
RAMP = 150e-12


def simulate_gate(ctype, pin: str, input_direction: str, load: float) -> float:
    """Full-transistor simulation of one arc; returns 50%-50% delay."""
    circuit = SimCircuit(f"xv::{ctype.name}")
    circuit.add_vdc("vdd", VDD)
    v0 = 0.0 if input_direction == RISING else VDD
    circuit.add_source(
        PwlSource("in", "0", [(0.2e-9, v0), (0.2e-9 + RAMP, VDD - v0)])
    )
    side = _sensitizing_side_inputs(ctype, pin)
    devices = ctype.topology.flatten("out", "vdd", "0", "g")
    init = {"vdd": VDD, "in": v0}
    out_rising = input_direction == FALLING
    init["out"] = 0.0 if out_rising else VDD
    for index, flat in enumerate(devices):
        gate_node = "in" if flat.gate_pin == pin else (
            "vdd" if side[flat.gate_pin] else "0"
        )
        device = Mosfet(
            MosfetParams(polarity=flat.polarity, width=flat.width, length=PROCESS.l_min),
            PROCESS,
        )
        circuit.add_mosfet(f"m{index}", flat.drain, gate_node, flat.source, device)
        circuit.add_capacitor(flat.drain, "0", PROCESS.c_junction * flat.width)
        for terminal in (flat.drain, flat.source):
            if terminal.startswith("g."):
                init.setdefault(terminal, 0.0 if flat.polarity > 0 else VDD)
    circuit.add_capacitor("out", "0", load)
    sim = TransientSimulator(circuit)
    result = sim.run(t_stop=3e-9, dt=2e-12, initial_voltages=init)
    out_dir = RISING if out_rising else FALLING
    return delay_between(result, "in", input_direction, "out", out_dir, VDD / 2).delay


CASES = [
    ("INV_X1", "A", RISING, 30e-15),
    ("INV_X1", "A", FALLING, 60e-15),
    ("NAND2_X1", "A", RISING, 30e-15),
    ("NAND3_X1", "C", RISING, 40e-15),
    ("NOR2_X1", "B", FALLING, 30e-15),
    ("AOI21_X1", "C", RISING, 30e-15),
]


@pytest.mark.parametrize("cell,pin,direction,load", CASES)
def test_stage_solver_tracks_full_simulation(cell, pin, direction, load):
    library = default_library()
    ctype = library[cell]
    calc = GateDelayCalculator()

    arc = calc.compute_arc_relative(
        ctype, pin, direction, RAMP,
        # The model load includes the junction cap the flat netlist has.
        CouplingLoad(load + ctype.output_parasitic_cap()),
    )
    model_delay = arc.t_cross - 0.5 * RAMP
    sim_delay = simulate_gate(ctype, pin, direction, load)

    # Close agreement, and the model must not be optimistic by more than
    # a sliver (it feeds an upper-bound analysis).
    assert model_delay == pytest.approx(sim_delay, rel=0.30)
    assert model_delay >= sim_delay * 0.85
