"""Tests for K-worst-path extraction and the timing report."""

import pytest

from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode
from repro.core.paths import k_worst_paths, report_timing


@pytest.fixture(scope="module")
def analysis(small_design):
    result = CrosstalkSTA(small_design).run(AnalysisMode.ITERATIVE)
    return small_design, result


class TestKWorstPaths:
    def test_count_and_order(self, analysis):
        design, result = analysis
        paths = k_worst_paths(design.circuit, result.final_pass, k=5)
        assert len(paths) == 5
        delays = [p.steps[-1].event.t_cross for p in paths]
        assert delays == sorted(delays, reverse=True)

    def test_first_is_the_critical_path(self, analysis):
        design, result = analysis
        paths = k_worst_paths(design.circuit, result.final_pass, k=1)
        assert paths[0].endpoint == result.critical_endpoint
        assert paths[0].direction == result.critical_direction

    def test_k_larger_than_endpoints(self, analysis):
        design, result = analysis
        total = len(result.final_pass.arrivals)
        paths = k_worst_paths(design.circuit, result.final_pass, k=total + 50)
        assert len(paths) == total


class TestReportTiming:
    def test_report_structure(self, analysis):
        design, result = analysis
        text = report_timing(design.circuit, result.final_pass, k=2)
        assert text.count("Path to") == 2
        assert "incr [ps]" in text

    def test_increments_sum_to_arrival(self, analysis):
        design, result = analysis
        text = report_timing(design.circuit, result.final_pass, k=1)
        lines = [
            line
            for line in text.splitlines()
            if line and not line.startswith(("Path", "stage", "-"))
        ]
        incr_total = sum(float(line.split()[-3 if "*" in line else -2]) for line in lines if "wire" not in line)
        header = text.splitlines()[0]
        arrival = float(header.rsplit("arrival", 1)[1].split()[0])
        # Wire residue line (if present) also counts.
        wire_lines = [l for l in lines if "wire" in l]
        if wire_lines:
            incr_total += float(wire_lines[0].split()[-1])
        assert incr_total == pytest.approx(arrival, abs=0.5)

    def test_si_flag_marks_coupled_stages(self, analysis):
        design, result = analysis
        paths = k_worst_paths(design.circuit, result.final_pass, k=1)
        text = report_timing(design.circuit, result.final_pass, k=1)
        coupled_stages = sum(1 for s in paths[0].steps if s.coupled)
        assert text.count("*") == coupled_stages
