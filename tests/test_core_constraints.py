"""Tests for setup/hold constraint checking."""

import pytest

from repro.core.analyzer import CrosstalkSTA
from repro.core.constraints import check_setup, minimum_period
from repro.core.modes import AnalysisMode


@pytest.fixture(scope="module")
def result(s27_design):
    return CrosstalkSTA(s27_design).run(AnalysisMode.ITERATIVE)


class TestSetup:
    def test_generous_period_met(self, result):
        report = check_setup(result, clock_period=100e-9)
        assert report.met
        assert not report.failing()

    def test_impossible_period_violated(self, result):
        report = check_setup(result, clock_period=10e-12)
        assert not report.met
        assert report.failing()
        assert report.worst.slack < 0

    def test_slack_arithmetic(self, result):
        period = 2e-9
        setup = 120e-12
        report = check_setup(result, clock_period=period, setup_time=setup)
        for slack in report.slacks:
            if "/" in slack.endpoint:
                assert slack.required == pytest.approx(period - setup)
            else:
                assert slack.required == pytest.approx(period)
            assert slack.slack == pytest.approx(slack.required - slack.arrival)

    def test_worst_is_minimum(self, result):
        report = check_setup(result, clock_period=2e-9)
        assert report.worst.slack == min(s.slack for s in report.slacks)

    def test_invalid_period(self, result):
        with pytest.raises(ValueError):
            check_setup(result, clock_period=0.0)

    def test_summary_renders(self, result):
        text = check_setup(result, clock_period=2e-9).summary()
        assert "clock 2.000 ns" in text

    def test_accepts_pass_result(self, result):
        report = check_setup(result.final_pass, clock_period=2e-9)
        assert report.slacks


class TestMinimumPeriod:
    def test_boundary_period_exactly_met(self, result):
        period = minimum_period(result, setup_time=100e-12)
        assert check_setup(result, clock_period=period, setup_time=100e-12).met
        tighter = period * 0.999
        assert not check_setup(result, clock_period=tighter, setup_time=100e-12).met

    def test_setup_time_pushes_period(self, result):
        assert minimum_period(result, setup_time=500e-12) > minimum_period(
            result, setup_time=0.0
        )

    def test_period_at_least_longest_path(self, result):
        assert minimum_period(result, setup_time=0.0) >= result.longest_delay - 1e-15
