"""Tests for the two-tier arc solver (repro.waveform.screening).

The load-bearing property: every screened answer is a *conservative*
bound on the exact Newton solve of the same canonical arc situation --
t_cross / transition / t_late never below exact, t_early never above.
Checked both with Hypothesis over sampled (slew, load, coupling) points
across all interned signatures, and with targeted unit tests of the
escalation machinery.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import default_library, s27
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode, SolverTier, StaConfig
from repro.flow import prepare_design
from repro.waveform.coupling import CouplingLoad
from repro.waveform.gatedelay import GateDelayCalculator
from repro.waveform.pwl import FALLING, RISING
from repro.waveform.screening import MAX_COARSE, MIN_COARSE, _ScreenCell

# Every (cell, pin, direction) arc of the default library, the
# population whose interned signatures the screen banks.  Sequential
# cells time through their clock-side "A" arc, as in the engine.
_LIBRARY = default_library()
_ARCS = [
    (ctype.name, pin, direction)
    for ctype in sorted(_LIBRARY, key=lambda c: c.name)
    for pin in (["A"] if ctype.is_sequential else list(ctype.inputs))
    for direction in (RISING, FALLING)
]

# A pad covering the screen's own MONOTONE_NOISE padding plus float fuzz.
_SLOP = 1e-15


def _pair(tolerance=100e-12):
    exact = GateDelayCalculator()
    screened = GateDelayCalculator(
        solver_tier="screened", screen_tolerance=tolerance
    )
    return exact, screened


class TestConservatismProperty:
    @settings(
        max_examples=150,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        arc=st.sampled_from(_ARCS),
        tt=st.floats(min_value=10e-12, max_value=800e-12),
        c_ground=st.floats(min_value=1e-15, max_value=120e-15),
        c_active=st.floats(min_value=0.0, max_value=20e-15),
    )
    def test_screened_bounds_dominate_exact(self, arc, tt, c_ground, c_active):
        """Screened t_cross/transition/t_late >= exact; t_early <= exact."""
        name, pin, direction = arc
        ctype = _LIBRARY[name]
        load = CouplingLoad(c_ground=c_ground, c_couple_active=c_active)
        exact_calc, screened_calc = self._calcs()
        exact = exact_calc.compute_arc_relative(ctype, pin, direction, tt, load)
        bound = screened_calc.compute_arc_relative(ctype, pin, direction, tt, load)
        assert bound.t_cross >= exact.t_cross - _SLOP
        assert bound.transition >= exact.transition - _SLOP
        assert bound.t_late >= exact.t_late - _SLOP
        assert bound.t_early <= exact.t_early + _SLOP

    # One calculator pair per test class run: the screen's value is its
    # accumulated surface, and sharing exercises surface hits, coarse
    # corner reuse and escalations across examples.
    _SHARED = None

    @classmethod
    def _calcs(cls):
        if cls._SHARED is None:
            cls._SHARED = _pair()
        return cls._SHARED


class TestScreenMechanics:
    def test_surface_and_analytical_tiers_answer_without_newton(self, library):
        exact, screened = _pair()
        inv = library["INV_X1"]
        load = CouplingLoad(c_ground=30e-15)
        screened.compute_arc_relative(inv, "A", RISING, 100e-12, load)
        calibration = screened.evaluations
        assert calibration > 0
        # Nearby queries are answered by the bank, not new solves.
        for c in (31e-15, 33e-15, 35e-15):
            screened.compute_arc_relative(
                inv, "A", RISING, 104e-12, CouplingLoad(c_ground=c)
            )
        stats = screened.cache_stats()
        tiers = stats["tier_counts"]
        assert tiers["surface"] + tiers["analytical"] >= 3
        assert stats["screen_hits"] >= 0
        assert stats["screen_cells"] >= 1
        assert stats["screen_points"] >= stats["screen_anchors"] >= 3

    def test_screen_cache_hits_on_repeat_query(self, library):
        _, screened = _pair()
        inv = library["INV_X1"]
        load = CouplingLoad(c_ground=30e-15)
        screened.compute_arc_relative(inv, "A", RISING, 100e-12, load)
        first = screened.compute_arc_relative(
            inv, "A", RISING, 104e-12, CouplingLoad(c_ground=31e-15)
        )
        hits_before = screened.cache_stats()["screen_hits"]
        second = screened.compute_arc_relative(
            inv, "A", RISING, 104e-12, CouplingLoad(c_ground=31e-15)
        )
        assert screened.cache_stats()["screen_hits"] == hits_before + 1
        assert first.t_cross == second.t_cross

    def test_force_exact_counts_slack_escalation(self, library):
        _, screened = _pair()
        inv = library["INV_X1"]
        load = CouplingLoad(c_ground=30e-15)
        arc = screened.compute_arc_relative(
            inv, "A", RISING, 100e-12, load, force_exact=True
        )
        stats = screened.cache_stats()
        assert stats["escalations"]["slack"] == 1
        assert screened.last_tier == "newton"
        exact = GateDelayCalculator().compute_arc_relative(
            inv, "A", RISING, 100e-12, load
        )
        assert arc.t_cross == exact.t_cross

    def test_exact_tier_never_builds_a_screen(self, library):
        exact = GateDelayCalculator()
        inv = library["INV_X1"]
        exact.compute_arc_relative(inv, "A", RISING, 100e-12, CouplingLoad(30e-15))
        stats = exact.cache_stats()
        assert stats["solver_tier"] == "exact"
        assert "screen_cells" not in stats
        assert all(count == 0 for count in stats["tier_counts"].values())

    def test_min_delay_requests_bypass_the_screen(self, library):
        """aiding / quantize_down need lower bounds the upper-bound
        screen cannot provide: they must go straight to Newton."""
        _, screened = _pair()
        inv = library["INV_X1"]
        load = CouplingLoad(c_ground=30e-15, c_couple_active=5e-15)
        screened.compute_arc_relative(
            inv, "A", RISING, 100e-12, load, aiding=True, quantize_down=True
        )
        stats = screened.cache_stats()
        assert stats["tier_counts"]["surface"] == 0
        assert stats["tier_counts"]["analytical"] == 0
        assert stats["screen_cells"] == 0

    def test_coupled_queries_escalate_and_stay_out_of_the_bank(self, library):
        """Slew is non-monotone in active coupling (AOI21/C at ~800 ps
        slew demonstrates it), so coupled situations must neither be
        screened nor serve as surface points."""
        _, screened = _pair()
        inv = library["INV_X1"]
        coupled = CouplingLoad(c_ground=30e-15, c_couple_active=10e-15)
        screened.compute_arc_relative(inv, "A", RISING, 100e-12, coupled)
        stats = screened.cache_stats()
        assert stats["escalations"]["outside_region"] == 1
        assert screened.last_tier == "newton"
        # The coupled solve is cached but never folded into the surface.
        assert stats["screen_points"] == 0

    def test_tolerance_zero_means_no_free_answers(self, library):
        """As tolerance -> 0 the coarse grid degenerates to the fine
        grid: every query pays a full solve (corner == query, error 0),
        so the screen saves nothing but stays sound."""
        _, screened = _pair(tolerance=1e-18)
        inv = library["INV_X1"]
        screened.compute_arc_relative(
            inv, "A", RISING, 100e-12, CouplingLoad(30e-15)
        )
        screened.compute_arc_relative(
            inv, "A", RISING, 104e-12, CouplingLoad(31e-15)
        )
        stats = screened.cache_stats()
        assert stats["tier_counts"]["surface"] == 0
        # Every analytical answer required its own coarse-corner solve.
        assert stats["coarse_solves"] == stats["tier_counts"]["analytical"]


class TestScreenCellModel:
    def test_macromodel_fit_needs_three_anchors(self):
        cell = _ScreenCell()
        cell.add((1e-12, 1e-15), (1e-11, 2e-11, 0.0, 1e-11), anchor=True)
        cell.add((2e-12, 1e-15), (2e-11, 2e-11, 0.0, 2e-11), anchor=True)
        cell.fit()
        assert cell.model is None
        cell.add((1e-12, 2e-15), (3e-11, 2e-11, 0.0, 3e-11), anchor=True)
        cell.add((2e-12, 2e-15), (4e-11, 2e-11, 0.0, 4e-11), anchor=True)
        cell.fit()
        assert cell.model is not None

    def test_coarse_steps_clamped_and_inverse_to_slope(self):
        cell = _ScreenCell()
        # Steep slope in tt -> small tt step; flat in cap -> clamped high.
        for tt, cp in [(1e-12, 1e-15), (2e-12, 1e-15), (1e-12, 2e-15), (2e-12, 2e-15)]:
            cell.add((tt, cp), (tt * 1.0, 1e-11, 0.0, tt * 1.0), anchor=True)
        k_tt, k_cp = cell.coarse_steps(2e-12, 0.2e-15, 100e-12)
        assert MIN_COARSE <= k_tt <= MAX_COARSE
        assert k_cp == MAX_COARSE  # zero cap sensitivity -> widest step

    def test_point_buffer_grows_consistently(self):
        cell = _ScreenCell()
        for i in range(100):
            cell.add(
                (float(i), float(i)),
                (float(i), 1.0, 0.0, float(i)),
                anchor=(i % 7 == 0),
            )
        arr = cell.array()
        assert arr.shape == (100, 6)
        assert arr[42, 0] == 42.0
        assert cell.anchor_mask().sum() == sum(
            1 for i in range(100) if i % 7 == 0
        )


class TestEndToEndConservatism:
    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_screened_delay_dominates_exact_within_tolerance(self, mode):
        tolerance = 100e-12
        design_exact = prepare_design(s27())
        exact = CrosstalkSTA(design_exact, StaConfig(mode=mode)).run()
        design_scr = prepare_design(s27())
        screened = CrosstalkSTA(
            design_scr,
            StaConfig(
                mode=mode,
                solver_tier=SolverTier.SCREENED,
                screen_tolerance=tolerance,
            ),
        ).run()
        delta = screened.longest_delay - exact.longest_delay
        assert delta >= -_SLOP
        assert delta <= tolerance + _SLOP

    def test_refinement_disabled_still_conservative(self):
        design_exact = prepare_design(s27())
        exact = CrosstalkSTA(
            design_exact, StaConfig(mode=AnalysisMode.ONE_STEP)
        ).run()
        design_scr = prepare_design(s27())
        screened = CrosstalkSTA(
            design_scr,
            StaConfig(
                mode=AnalysisMode.ONE_STEP,
                solver_tier=SolverTier.SCREENED,
                screen_slack_margin=0.0,
            ),
        ).run()
        assert screened.longest_delay >= exact.longest_delay - _SLOP
