"""Tests for ramp events and worst-case merging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.waveform.pwl import FALLING, RISING
from repro.waveform.ramp import RampEvent, merge_worst


def event(direction=RISING, t_cross=1e-9, transition=100e-12, t_early=None, t_late=None):
    if t_early is None:
        t_early = t_cross - 40e-12
    if t_late is None:
        t_late = t_cross + 40e-12
    return RampEvent(direction, t_cross, transition, t_early, t_late)


times = st.floats(min_value=0.0, max_value=1e-8)
spans = st.floats(min_value=1e-12, max_value=1e-9)


def random_event(t0, span, tt):
    return RampEvent(RISING, t0 + span / 2, tt, t0, t0 + span)


class TestValidation:
    def test_direction_checked(self):
        with pytest.raises(ValueError, match="direction"):
            RampEvent("diagonal", 0, 1e-12, 0, 0)

    def test_negative_transition_rejected(self):
        with pytest.raises(ValueError, match="transition"):
            RampEvent(RISING, 0, -1e-12, 0, 0)

    def test_late_before_early_rejected(self):
        with pytest.raises(ValueError, match="t_late"):
            RampEvent(RISING, 0, 1e-12, 1e-9, 0.0)


class TestShifting:
    def test_shift_moves_all_markers(self):
        ev = event()
        shifted = ev.shifted(1e-9)
        assert shifted.t_cross == pytest.approx(ev.t_cross + 1e-9)
        assert shifted.t_early == pytest.approx(ev.t_early + 1e-9)
        assert shifted.t_late == pytest.approx(ev.t_late + 1e-9)
        assert shifted.transition == ev.transition

    def test_with_transition(self):
        assert event().with_transition(5e-12).transition == 5e-12


class TestMerge:
    def test_merge_with_none(self):
        ev = event()
        assert merge_worst(None, ev) is ev
        assert merge_worst(ev, None) is ev
        assert merge_worst(None, None) is None

    def test_direction_mismatch(self):
        with pytest.raises(ValueError, match="merge"):
            merge_worst(event(RISING), event(FALLING))

    def test_merge_is_pointwise_worst(self):
        a = event(t_cross=1e-9, transition=100e-12, t_early=0.9e-9, t_late=1.1e-9)
        b = event(t_cross=2e-9, transition=50e-12, t_early=0.5e-9, t_late=2.2e-9)
        merged = merge_worst(a, b)
        assert merged.t_cross == 2e-9
        assert merged.transition == 100e-12
        assert merged.t_early == 0.5e-9
        assert merged.t_late == 2.2e-9

    @given(t0=times, s0=spans, tt0=spans, t1=times, s1=spans, tt1=spans)
    @settings(max_examples=60, deadline=None)
    def test_merge_dominates_both(self, t0, s0, tt0, t1, s1, tt1):
        a = random_event(t0, s0, tt0)
        b = random_event(t1, s1, tt1)
        merged = merge_worst(a, b)
        assert merged.dominates(a)
        assert merged.dominates(b)

    @given(t0=times, s0=spans, tt0=spans)
    @settings(max_examples=30, deadline=None)
    def test_merge_idempotent(self, t0, s0, tt0):
        a = random_event(t0, s0, tt0)
        merged = merge_worst(a, a)
        assert merged == a

    @given(t0=times, s0=spans, tt0=spans, t1=times, s1=spans, tt1=spans)
    @settings(max_examples=30, deadline=None)
    def test_merge_commutative(self, t0, s0, tt0, t1, s1, tt1):
        a = random_event(t0, s0, tt0)
        b = random_event(t1, s1, tt1)
        assert merge_worst(a, b) == merge_worst(b, a)


class TestDominates:
    def test_self_domination(self):
        ev = event()
        assert ev.dominates(ev)

    def test_later_slower_event_dominates(self):
        early = event(t_cross=1e-9)
        late = RampEvent(RISING, 2e-9, 200e-12, early.t_early, 2.2e-9)
        assert late.dominates(early)
        assert not early.dominates(late)
