"""Tests for the two-sided OVERLAP window check (extension of the paper's
one-sided quiescence comparison)."""

import pytest

from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode, StaConfig, WindowCheck
from repro.core.propagation import Propagator


@pytest.fixture(scope="module")
def runs(small_design):
    results = {}
    for check in WindowCheck:
        for mode in (AnalysisMode.ONE_STEP, AnalysisMode.ITERATIVE):
            config = StaConfig(mode=mode, window_check=check)
            results[(check, mode)] = CrosstalkSTA(small_design, config).run()
    return results


class TestOverlap:
    def test_default_is_the_papers_check(self):
        assert StaConfig().window_check is WindowCheck.QUIET

    def test_overlap_never_looser(self, runs):
        for mode in (AnalysisMode.ONE_STEP, AnalysisMode.ITERATIVE):
            quiet = runs[(WindowCheck.QUIET, mode)]
            overlap = runs[(WindowCheck.OVERLAP, mode)]
            assert overlap.longest_delay <= quiet.longest_delay + 1e-12

    def test_overlap_never_looser_per_endpoint(self, runs):
        quiet = runs[(WindowCheck.QUIET, AnalysisMode.ITERATIVE)].arrival_map()
        overlap = runs[(WindowCheck.OVERLAP, AnalysisMode.ITERATIVE)].arrival_map()
        for key, value in overlap.items():
            assert value <= quiet[key] + 1e-12, key

    def test_overlap_still_above_best_case(self, runs, small_design):
        best = CrosstalkSTA(small_design).run(AnalysisMode.BEST_CASE)
        overlap = runs[(WindowCheck.OVERLAP, AnalysisMode.ITERATIVE)]
        best_map = best.arrival_map()
        for key, value in overlap.arrival_map().items():
            assert value >= best_map[key] - 1e-12, key

    def test_overlap_costs_more_evaluations(self, small_design):
        quiet = Propagator(
            small_design, StaConfig(mode=AnalysisMode.ONE_STEP)
        ).run_pass()
        overlap = Propagator(
            small_design,
            StaConfig(mode=AnalysisMode.ONE_STEP, window_check=WindowCheck.OVERLAP),
        ).run_pass()
        assert overlap.waveform_evaluations >= quiet.waveform_evaluations
        # At most one extra (all-active) calculation per arc.
        assert overlap.waveform_evaluations <= 3 * overlap.arcs_processed

    def test_overlap_bound_still_holds_vs_simulation(self, s27_design):
        """The tighter bound is still an upper bound for feasible-window
        simulation."""
        from repro.validate import align_aggressors, build_path_circuit

        config = StaConfig(mode=AnalysisMode.ITERATIVE, window_check=WindowCheck.OVERLAP)
        sta = CrosstalkSTA(s27_design, config)
        result = sta.run()
        path = sta.critical_path(result)
        circuit = build_path_circuit(s27_design, path, result.final_pass.state)
        outcome = align_aggressors(
            circuit, steps=1600,
            windows=result.final_pass.state.window_snapshot(),
        )
        assert outcome.path_delay <= result.longest_delay
