"""Direct tests for the structural netlist validator."""

import pytest

from repro.circuit.netlist import Circuit, NetlistError
from repro.circuit.validate import validate_circuit


def valid_circuit() -> Circuit:
    circuit = Circuit("ok")
    circuit.add_clock()
    circuit.add_input("a")
    circuit.add_cell("INV_X1", "g", {"A": "a", "Y": "y"})
    circuit.add_cell("DFF_X1", "ff", {"D": "y", "CLK": "CLK", "Q": "q"})
    circuit.add_output("o", net_name="q")
    return circuit


class TestValidator:
    def test_valid_circuit_passes(self):
        report = validate_circuit(valid_circuit())
        assert report.ok
        assert report.warnings == []

    def test_undriven_net_with_sinks(self):
        circuit = Circuit("bad")
        circuit.add_cell("INV_X1", "g", {"A": "ghost", "Y": "y"})
        report = validate_circuit(circuit)
        assert not report.ok
        assert any("no driver" in e for e in report.errors)

    def test_dangling_net_warns(self):
        circuit = Circuit("w")
        circuit.add_input("a")
        circuit.add_cell("INV_X1", "g", {"A": "a", "Y": "unused"})
        report = validate_circuit(circuit)
        assert report.ok
        assert any("dangling" in w for w in report.warnings)

    def test_unused_input_warns(self):
        circuit = Circuit("w")
        circuit.add_input("lonely")
        report = validate_circuit(circuit)
        assert any("unused" in w for w in report.warnings)

    def test_fanout_warning(self):
        circuit = Circuit("w")
        circuit.add_input("a")
        for i in range(5):
            circuit.add_cell("INV_X1", f"g{i}", {"A": "a", "Y": f"y{i}"})
        report = validate_circuit(circuit, max_fanout=3)
        assert any("fanout" in w for w in report.warnings)

    def test_unclocked_ff_fails(self):
        circuit = Circuit("bad")
        circuit.add_input("d")
        circuit.add_input("notclk")
        circuit.add_cell("DFF_X1", "ff", {"D": "d", "CLK": "notclk", "Q": "q"})
        report = validate_circuit(circuit)
        assert not report.ok
        assert any("CLK" in e for e in report.errors)

    def test_buffered_clock_accepted(self):
        circuit = Circuit("ok")
        circuit.add_clock()
        circuit.add_input("d")
        circuit.add_cell("INV_X4", "b1", {"A": "CLK", "Y": "c1"})
        circuit.add_cell("INV_X4", "b2", {"A": "c1", "Y": "c2"})
        circuit.add_cell("DFF_X1", "ff", {"D": "d", "CLK": "c2", "Q": "q"})
        report = validate_circuit(circuit)
        assert not any("CLK" in e for e in report.errors)

    def test_cycle_reported(self):
        circuit = Circuit("bad")
        circuit.add_cell("INV_X1", "g1", {"A": "y2", "Y": "y1"})
        circuit.add_cell("INV_X1", "g2", {"A": "y1", "Y": "y2"})
        report = validate_circuit(circuit)
        assert any("cycle" in e for e in report.errors)

    def test_raise_on_error(self):
        circuit = Circuit("bad")
        circuit.add_cell("INV_X1", "g", {"A": "ghost", "Y": "y"})
        report = validate_circuit(circuit)
        with pytest.raises(NetlistError, match="validation failed"):
            report.raise_on_error()

    def test_clean_report_does_not_raise(self):
        validate_circuit(valid_circuit()).raise_on_error()
