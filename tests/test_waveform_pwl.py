"""Tests for PWL waveforms."""

import numpy as np
import pytest

from repro.waveform.pwl import FALLING, RISING, Waveform, opposite, ramp_waveform


class TestConstruction:
    def test_needs_two_points(self):
        with pytest.raises(ValueError, match="two points"):
            Waveform([0.0], [0.0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            Waveform([0.0, 1.0], [0.0])

    def test_times_must_not_decrease(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            Waveform([1.0, 0.0], [0.0, 1.0])

    def test_direction_inferred(self):
        assert Waveform([0, 1], [0.0, 3.3]).direction == RISING
        assert Waveform([0, 1], [3.3, 0.0]).direction == FALLING

    def test_opposite(self):
        assert opposite(RISING) == FALLING
        assert opposite(FALLING) == RISING
        with pytest.raises(ValueError):
            opposite("sideways")


class TestQueries:
    def test_value_interpolation(self):
        wave = Waveform([0.0, 1.0], [0.0, 2.0])
        assert wave.value_at(0.5) == pytest.approx(1.0)
        assert wave.value_at(-1.0) == pytest.approx(0.0)
        assert wave.value_at(2.0) == pytest.approx(2.0)

    def test_crossing_time_rising(self):
        wave = Waveform([0.0, 2.0], [0.0, 3.3])
        assert wave.crossing_time(1.65) == pytest.approx(1.0)

    def test_crossing_time_falling(self):
        wave = Waveform([0.0, 2.0], [3.3, 0.0], FALLING)
        assert wave.crossing_time(1.65) == pytest.approx(1.0)

    def test_crossing_unreachable(self):
        wave = Waveform([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError, match="never crosses"):
            wave.crossing_time(2.0)

    def test_transition_time_linear_ramp(self):
        wave = Waveform([0.0, 1.0], [0.0, 3.3])
        assert wave.transition_time() == pytest.approx(1.0)

    def test_monotone_check(self):
        good = Waveform([0, 1, 2], [0.0, 1.0, 2.0])
        assert good.is_monotone()
        bumpy = Waveform([0, 1, 2], [0.0, 2.0, 1.0], RISING)
        assert not bumpy.is_monotone()

    def test_shifted(self):
        wave = Waveform([0.0, 1.0], [0.0, 3.3])
        assert wave.crossing_time(1.65) == pytest.approx(0.5)
        assert wave.shifted(2.0).crossing_time(1.65) == pytest.approx(2.5)


class TestClipping:
    def test_clipped_from_discards_glitch(self):
        """Clipping from the drop time models the paper's 'the waveform
        before the occurrence of the coupling is completely ignored'."""
        wave = Waveform(
            [0.0, 1.0, 2.0, 3.0], [0.0, 0.5, 0.2, 3.3], RISING
        )
        clipped = wave.clipped_from(2.0)
        assert clipped.t_start == pytest.approx(2.0)
        assert clipped.v_start == pytest.approx(0.2)
        assert clipped.is_monotone()

    def test_clipped_interpolates_at_cut(self):
        wave = Waveform([0.0, 2.0], [0.0, 2.0])
        clipped = wave.clipped_from(1.0)
        assert clipped.v_start == pytest.approx(1.0)

    def test_clip_beyond_end_rejected(self):
        wave = Waveform([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(ValueError, match="too few points"):
            wave.clipped_from(5.0)


class TestRampFactory:
    def test_ramp_waveform(self):
        wave = ramp_waveform(1.0, 2.0, 0.0, 3.3)
        assert wave.direction == RISING
        assert wave.value_at(1.0) == pytest.approx(0.0)
        assert wave.value_at(3.0) == pytest.approx(3.3)
        assert wave.crossing_time(1.65) == pytest.approx(2.0)

    def test_falling_ramp(self):
        wave = ramp_waveform(0.0, 1.0, 3.3, 0.0)
        assert wave.direction == FALLING
