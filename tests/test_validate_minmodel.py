"""Simulator validation of the same-direction (aiding) coupling model.

The min-delay analysis assumes an aggressor switching in the victim's own
direction can only speed the victim up, and models the extreme case as an
instantaneous helping jump.  These tests confirm against the transistor-
level simulator that (a) a same-direction aggressor really accelerates the
victim and (b) the aiding model is a lower bound on the simulated delay.
"""

import pytest

from repro.circuit import default_library
from repro.devices import default_process, nmos, pmos
from repro.spice import PwlSource, SimCircuit, TransientSimulator, delay_between
from repro.waveform import CouplingLoad, GateDelayCalculator
from repro.waveform.pwl import FALLING, RISING

PROCESS = default_process()
VDD = PROCESS.vdd
C_GROUND = 40e-15
C_COUPLE = 25e-15
RAMP = 100e-12


def simulate_victim(aggressor: str) -> float:
    """Victim inverter output rises; aggressor is quiet, rising (same
    direction) or handled per ``aggressor``.  Returns the victim delay
    from the input's 50 % crossing."""
    circuit = SimCircuit("aid")
    circuit.add_vdc("vdd", VDD)
    circuit.add_source(PwlSource("vin", "0", [(0.2e-9, VDD), (0.2e-9 + RAMP, 0.0)]))
    circuit.add_mosfet("vp", "victim", "vin", "vdd", pmos(4e-6))
    circuit.add_mosfet("vn", "victim", "vin", "0", nmos(2e-6))
    circuit.add_capacitor("victim", "0", C_GROUND)
    if aggressor == "same":
        circuit.add_source(PwlSource("aggr", "0", [(0.27e-9, 0.0), (0.28e-9, VDD)]))
        init_aggr = 0.0
    else:
        circuit.add_source(PwlSource.dc("aggr", 0.0))
        init_aggr = 0.0
    circuit.add_capacitor("victim", "aggr", C_COUPLE)
    sim = TransientSimulator(circuit)
    result = sim.run(
        t_stop=1.5e-9, dt=1e-12,
        initial_voltages={"vin": VDD, "victim": 0.0, "aggr": init_aggr, "vdd": VDD},
    )
    return delay_between(result, "vin", FALLING, "victim", RISING, VDD / 2).delay


@pytest.fixture(scope="module")
def delays():
    return {
        "quiet": simulate_victim("quiet"),
        "same": simulate_victim("same"),
    }


class TestAidingPhysics:
    def test_same_direction_aggressor_speeds_victim(self, delays):
        assert delays["same"] < delays["quiet"]

    def test_aiding_model_is_lower_bound(self, delays):
        calc = GateDelayCalculator()
        inv = default_library()["INV_X1"]
        aided = calc.compute_arc_relative(
            inv, "A", FALLING, RAMP,
            CouplingLoad(C_GROUND, c_couple_active=C_COUPLE),
            aiding=True,
        )
        model_delay = aided.t_cross - 0.5 * RAMP
        assert model_delay <= delays["same"]

    def test_grounded_model_between(self, delays):
        """The grounded (no-help) model over-estimates the helped case and
        under-estimates nothing it shouldn't."""
        calc = GateDelayCalculator()
        inv = default_library()["INV_X1"]
        grounded = calc.compute_arc_relative(
            inv, "A", FALLING, RAMP, CouplingLoad(C_GROUND + C_COUPLE)
        )
        model_delay = grounded.t_cross - 0.5 * RAMP
        assert model_delay >= delays["same"]


class TestAidingStageProperties:
    @pytest.mark.parametrize("c_active", [5e-15, 20e-15, 40e-15])
    def test_more_help_is_faster(self, c_active):
        calc = GateDelayCalculator()
        inv = default_library()["INV_X1"]
        helped = calc.compute_arc_relative(
            inv, "A", FALLING, RAMP,
            CouplingLoad(C_GROUND, c_couple_active=c_active),
            aiding=True,
        )
        grounded = calc.compute_arc_relative(
            inv, "A", FALLING, RAMP, CouplingLoad(C_GROUND + c_active)
        )
        assert helped.t_cross < grounded.t_cross

    def test_aiding_waveform_monotone(self):
        calc = GateDelayCalculator()
        inv = default_library()["INV_X1"]
        from repro.waveform.stage import InputRamp

        result = calc.solver_for(inv, "A").solve(
            InputRamp(FALLING, 0.0, RAMP),
            CouplingLoad(C_GROUND, c_couple_active=C_COUPLE),
            aiding=True,
        )
        assert result.coupled
        assert result.waveform.is_monotone()

    def test_aiding_and_opposing_bracket_grounded(self):
        calc = GateDelayCalculator()
        inv = default_library()["INV_X1"]
        load = CouplingLoad(C_GROUND, c_couple_active=C_COUPLE)
        aided = calc.compute_arc_relative(inv, "A", FALLING, RAMP, load, aiding=True)
        opposed = calc.compute_arc_relative(inv, "A", FALLING, RAMP, load)
        grounded = calc.compute_arc_relative(
            inv, "A", FALLING, RAMP, CouplingLoad(C_GROUND + C_COUPLE)
        )
        assert aided.t_cross < grounded.t_cross < opposed.t_cross
