"""Tests for the MNA transient engine against analytic references."""

import math

import numpy as np
import pytest

from repro.devices.mosfet import nmos, pmos
from repro.devices.params import default_process
from repro.spice.elements import PwlSource
from repro.spice.measure import crossing, delay_between, glitch_amplitude, slew
from repro.spice.netlist import SimCircuit
from repro.spice.transient import TransientSimulator
from repro.waveform.pwl import FALLING, RISING

PROCESS = default_process()
VDD = PROCESS.vdd


class TestLinearCircuits:
    def test_resistive_divider_dc(self):
        circuit = SimCircuit()
        circuit.add_vdc("vin", 2.0)
        circuit.add_resistor("vin", "mid", 100.0)
        circuit.add_resistor("mid", "0", 300.0)
        sim = TransientSimulator(circuit)
        x = sim.dc_operating_point()
        assert x[circuit.node("mid")] == pytest.approx(1.5, rel=1e-6)

    def test_rc_step_response_matches_exponential(self):
        r, c = 1000.0, 1e-12  # tau = 1 ns
        circuit = SimCircuit()
        circuit.add_source(PwlSource("vin", "0", [(0.0, 0.0), (1e-15, 1.0)]))
        circuit.add_resistor("vin", "out", r)
        circuit.add_capacitor("out", "0", c)
        sim = TransientSimulator(circuit)
        result = sim.run(t_stop=5e-9, dt=5e-12, initial_voltages={"out": 0.0})
        tau = r * c
        for t_probe in (0.5e-9, 1e-9, 2e-9, 4e-9):
            expected = 1.0 - math.exp(-t_probe / tau)
            idx = np.searchsorted(result.times, t_probe)
            assert result.trace("out")[idx] == pytest.approx(expected, abs=0.01)

    def test_floating_capacitor_divider(self):
        """A fast step through a capacitive divider produces the
        dV = V * Cc/(Cc+Cg) bump -- the coupling model's physics."""
        cc, cg = 10e-15, 30e-15
        circuit = SimCircuit()
        circuit.add_source(PwlSource("aggr", "0", [(1e-9, 0.0), (1.001e-9, VDD)]))
        circuit.add_capacitor("aggr", "victim", cc)
        circuit.add_capacitor("victim", "0", cg)
        # Weak holder keeps the victim biased at 0 before the event.
        circuit.add_resistor("victim", "0", 1e9)
        sim = TransientSimulator(circuit)
        result = sim.run(t_stop=1.01e-9, dt=0.2e-12, initial_voltages={"victim": 0.0})
        expected = VDD * cc / (cc + cg)
        assert glitch_amplitude(result, "victim", 0.0) == pytest.approx(expected, rel=0.03)


class TestInverter:
    def _inverter(self, load=30e-15):
        circuit = SimCircuit()
        circuit.add_vdc("vdd", VDD)
        circuit.add_source(PwlSource("in", "0", [(0.2e-9, 0.0), (0.3e-9, VDD)]))
        circuit.add_mosfet("mp", "out", "in", "vdd", pmos(4e-6))
        circuit.add_mosfet("mn", "out", "in", "0", nmos(2e-6))
        circuit.add_capacitor("out", "0", load)
        return circuit

    def test_inverter_switches(self):
        circuit = self._inverter()
        sim = TransientSimulator(circuit)
        result = sim.run(
            t_stop=2e-9, dt=2e-12, initial_voltages={"out": VDD, "in": 0.0}
        )
        assert result.trace("out")[0] == pytest.approx(VDD, abs=0.1)
        assert result.trace("out")[-1] == pytest.approx(0.0, abs=0.1)

    def test_heavier_load_slower(self):
        def delay(load):
            sim = TransientSimulator(self._inverter(load))
            result = sim.run(
                t_stop=3e-9, dt=2e-12, initial_voltages={"out": VDD, "in": 0.0}
            )
            return delay_between(result, "in", RISING, "out", FALLING, VDD / 2).delay

        assert delay(80e-15) > delay(20e-15)

    def test_slew_measurement(self):
        sim = TransientSimulator(self._inverter())
        result = sim.run(
            t_stop=2e-9, dt=2e-12, initial_voltages={"out": VDD, "in": 0.0}
        )
        assert 10e-12 < slew(result, "out", FALLING, VDD) < 1e-9

    def test_dc_operating_point_rails(self):
        circuit = self._inverter()
        sim = TransientSimulator(circuit)
        x = sim.dc_operating_point({"out": VDD, "in": 0.0})
        assert x[circuit.node("out")] == pytest.approx(VDD, abs=0.05)


class TestTrapezoidal:
    @staticmethod
    def _rc_ramp(method, dt):
        """RC driven by a PWL ramp aligned to step boundaries."""
        circuit = SimCircuit()
        circuit.add_source(
            PwlSource("vin", "0", [(0.0, 1.0), (0.1e-9, 1.0), (0.3e-9, 0.0)])
        )
        circuit.add_resistor("vin", "out", 1000.0)
        circuit.add_capacitor("out", "0", 1e-12)
        sim = TransientSimulator(circuit, method=method)
        result = sim.run(
            t_stop=1.5e-9, dt=dt, initial_voltages={"out": 1.0, "vin": 1.0}
        )
        idx = np.searchsorted(result.times, 1.2e-9)
        return float(result.trace("out")[idx])

    def test_trap_beats_backward_euler(self):
        """Trapezoidal is exact for PWL sources on a linear RC; BE shows
        its first-order truncation error."""
        dt = 50e-12
        be = self._rc_ramp("be", dt)
        trap = self._rc_ramp("trap", dt)
        fine = self._rc_ramp("trap", 5e-12)  # reference
        assert abs(trap - fine) < abs(be - fine) / 10

    def test_trap_handles_nonlinear_circuit(self):
        circuit = SimCircuit()
        circuit.add_vdc("vdd", VDD)
        circuit.add_source(PwlSource("in", "0", [(0.2e-9, 0.0), (0.3e-9, VDD)]))
        circuit.add_mosfet("mp", "out", "in", "vdd", pmos(4e-6))
        circuit.add_mosfet("mn", "out", "in", "0", nmos(2e-6))
        circuit.add_capacitor("out", "0", 30e-15)
        for method in ("be", "trap"):
            sim = TransientSimulator(circuit, method=method)
            result = sim.run(
                t_stop=2e-9, dt=2e-12, initial_voltages={"out": VDD, "in": 0.0}
            )
            assert result.trace("out")[-1] == pytest.approx(0.0, abs=0.1)

    def test_methods_agree_at_fine_step(self):
        be = self._rc_ramp("be", 2e-12)
        trap = self._rc_ramp("trap", 2e-12)
        assert be == pytest.approx(trap, abs=1e-3)

    def test_unknown_method_rejected(self):
        circuit = SimCircuit()
        circuit.add_vdc("a", 1.0)
        with pytest.raises(ValueError, match="method"):
            TransientSimulator(circuit, method="rk4")


class TestCsvDump:
    def test_csv_shape_and_roundtrip(self, tmp_path):
        circuit = SimCircuit()
        circuit.add_source(PwlSource("vin", "0", [(0.0, 0.0), (1e-10, 1.0)]))
        circuit.add_resistor("vin", "out", 100.0)
        circuit.add_capacitor("out", "0", 1e-13)
        sim = TransientSimulator(circuit)
        result = sim.run(t_stop=1e-10, dt=1e-12)
        text = result.to_csv(["out"])
        lines = text.strip().splitlines()
        assert lines[0] == "time,out"
        assert len(lines) == len(result.times) + 1
        target = tmp_path / "trace.csv"
        result.save_csv(str(target), ["vin", "out"])
        assert target.read_text().startswith("time,vin,out")


class TestRobustness:
    def test_invalid_run_arguments(self):
        circuit = SimCircuit()
        circuit.add_vdc("a", 1.0)
        sim = TransientSimulator(circuit)
        with pytest.raises(ValueError):
            sim.run(t_stop=0.0, dt=1e-12)
        with pytest.raises(ValueError):
            sim.run(t_stop=1e-9, dt=-1e-12)

    def test_crossing_never_reached_raises(self):
        circuit = SimCircuit()
        circuit.add_vdc("a", 1.0)
        circuit.add_resistor("a", "b", 10.0)
        sim = TransientSimulator(circuit)
        result = sim.run(t_stop=1e-10, dt=1e-12)
        with pytest.raises(ValueError, match="never crosses"):
            crossing(result, "b", 5.0, RISING)
