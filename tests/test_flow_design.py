"""Tests for design preparation (flow)."""

import pytest

from repro.flow import prepare_design
from repro.circuit.netlist import Circuit


class TestLoads:
    def test_every_net_has_a_load(self, s27_design):
        assert set(s27_design.loads) == set(s27_design.circuit.nets)

    def test_fixed_load_includes_pin_caps(self, s27_design):
        process = s27_design.process
        for name, net in s27_design.circuit.nets.items():
            load = s27_design.loads[name]
            pin_caps = sum(
                sink.cell.ctype.input_cap(sink.name, process)
                for sink in net.sinks
                if hasattr(sink, "cell")
            )
            assert load.c_fixed >= pin_caps - 1e-21

    def test_couplings_reference_known_nets(self, s27_design):
        for load in s27_design.loads.values():
            for other in load.couplings:
                assert other in s27_design.circuit.nets

    def test_sink_elmore_keys_are_terminals(self, s27_design):
        for name, net in s27_design.circuit.nets.items():
            load = s27_design.loads[name]
            sink_names = {
                s.full_name if hasattr(s, "cell") else s.name for s in net.sinks
            }
            assert set(load.sink_elmore) <= sink_names

    def test_elmore_nonnegative(self, s27_design):
        for load in s27_design.loads.values():
            assert all(d >= 0 for d in load.sink_elmore.values())

    def test_coupling_total_halved_consistently(self, s27_design):
        total = s27_design.coupling_cap_total()
        assert total == pytest.approx(s27_design.extraction.total_coupling_cap(), rel=1e-9)


class TestPrepare:
    def test_unconnected_net_gets_zero_load(self):
        circuit = Circuit("bare")
        circuit.add_input("a")
        circuit.add_cell("INV_X1", "g", {"A": "a", "Y": "y"})
        design = prepare_design(circuit)
        # Dangling output net: no sinks, no routing, only driver parasitics.
        load = design.loads["y"]
        assert load.couplings == {}
        assert load.sink_elmore == {}
        assert load.c_fixed > 0  # driver junction cap

    def test_design_name_follows_circuit(self, s27_design):
        assert s27_design.name == "s27"
