"""Vectorized table lookups vs the scalar reference.

The batch engine rests on ``lookup_many``/``gradient_many`` and the
stacked :class:`GridBank`; these tests pin exact (bitwise) agreement with
the scalar paths, including outside the tabulated range where the clamped
cell index extrapolates linearly.
"""

import numpy as np
import pytest

from repro.devices.mosfet import Mosfet, MosfetParams
from repro.devices.tables import GridBank, StageTable, _BilinearGrid


@pytest.fixture(scope="module")
def grid():
    x = np.linspace(0.0, 1.0, 11)
    y = np.linspace(-0.5, 0.5, 21)
    values = np.sin(np.outer(x, np.arange(21) * 0.3))
    return _BilinearGrid(x, y, values)


@pytest.fixture(scope="module")
def stage_tables(process):
    tables = []
    for wp, wn in [(400e-9, 200e-9), (800e-9, 400e-9), (250e-9, 600e-9)]:
        pu = Mosfet(MosfetParams(polarity=-1, width=wp, length=process.l_min), process)
        pd = Mosfet(MosfetParams(polarity=1, width=wn, length=process.l_min), process)
        tables.append(StageTable(pu, pd, process=process))
    return tables


def _sample_points(rng, n):
    # Inside, at the edges, and well outside the axes.
    x = rng.uniform(-0.6, 1.6, n)
    y = rng.uniform(-1.2, 1.2, n)
    x[:3] = [0.0, 1.0, 1.7]
    y[:3] = [-0.5, 0.5, -1.9]
    return x, y


class TestBilinearVectorized:
    def test_lookup_many_matches_scalar_bitwise(self, grid):
        rng = np.random.default_rng(0)
        x, y = _sample_points(rng, 200)
        vector = grid.lookup_many(x, y)
        scalar = np.array([grid.lookup(xi, yi) for xi, yi in zip(x, y)])
        assert np.array_equal(vector, scalar)

    def test_gradient_many_matches_scalar_bitwise(self, grid):
        rng = np.random.default_rng(1)
        x, y = _sample_points(rng, 200)
        value_v, dvalue_v = grid.gradient_many(x, y)
        pairs = [grid.lookup_with_dy(xi, yi) for xi, yi in zip(x, y)]
        assert np.array_equal(value_v, np.array([p[0] for p in pairs]))
        assert np.array_equal(dvalue_v, np.array([p[1] for p in pairs]))

    def test_lookup_array_delegates(self, grid):
        rng = np.random.default_rng(2)
        x, y = _sample_points(rng, 50)
        assert np.array_equal(grid.lookup_array(x, y), grid.lookup_many(x, y))


class TestGridBank:
    def test_bank_matches_member_grids(self, stage_tables):
        bank = GridBank([t.grid for t in stage_tables])
        assert len(bank) == len(stage_tables)
        rng = np.random.default_rng(3)
        n = 120
        k = rng.integers(0, len(stage_tables), n)
        x = rng.uniform(-0.5, 2.0, n)
        y = rng.uniform(-0.5, 2.0, n)
        value, dvalue = bank.gradient_many(k, x, y)
        lookup = bank.lookup_many(k, x, y)
        for i in range(n):
            grid = stage_tables[k[i]].grid
            v_ref, d_ref = grid.lookup_with_dy(x[i], y[i])
            assert value[i] == v_ref
            assert dvalue[i] == d_ref
            assert lookup[i] == grid.lookup(x[i], y[i])

    def test_incongruent_grids_rejected(self, grid):
        other = _BilinearGrid(
            np.linspace(0.0, 2.0, 11), grid.y_axis.copy(), grid.values.copy()
        )
        with pytest.raises(ValueError):
            GridBank([grid, other])

    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            GridBank([])


class TestStageTableVectorized:
    def test_current_many_matches_scalar(self, stage_tables):
        table = stage_tables[0]
        rng = np.random.default_rng(4)
        vin = rng.uniform(-0.4, 2.2, 80)
        vout = rng.uniform(-0.4, 2.2, 80)
        many = table.current_many(vin, vout)
        with_d = table.current_with_dvout_many(vin, vout)
        for i in range(80):
            assert many[i] == table.current(vin[i], vout[i])
            ref_v, ref_d = table.current_with_dvout(vin[i], vout[i])
            assert with_d[0][i] == ref_v
            assert with_d[1][i] == ref_d
