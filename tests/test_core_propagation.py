"""Tests for one-pass worst-case propagation and the coupling decisions."""

import pytest

from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode, ClockAggressorModel, StaConfig
from repro.core.propagation import Propagator, ideal_ramp_event
from repro.waveform.pwl import FALLING, RISING


@pytest.fixture(scope="module")
def sta(small_design):
    return CrosstalkSTA(small_design)


@pytest.fixture(scope="module")
def all_results(sta):
    return sta.run_all_modes()


class TestIdealRampEvent:
    def test_markers(self):
        event = ideal_ramp_event(RISING, 0.0, 100e-12, 3.3, 0.2)
        assert event.t_cross == pytest.approx(50e-12)
        assert event.t_early == pytest.approx(100e-12 * 0.2 / 3.3)
        assert event.t_late == pytest.approx(100e-12 * 3.1 / 3.3)

    def test_direction_symmetry(self):
        rise = ideal_ramp_event(RISING, 0.0, 100e-12, 3.3, 0.2)
        fall = ideal_ramp_event(FALLING, 0.0, 100e-12, 3.3, 0.2)
        assert rise.t_early == pytest.approx(fall.t_early)
        assert rise.t_late == pytest.approx(fall.t_late)


class TestPassBasics:
    def test_every_driven_net_has_an_event(self, small_design):
        propagator = Propagator(small_design, StaConfig(mode=AnalysisMode.BEST_CASE))
        result = propagator.run_pass()
        for name, net in small_design.circuit.nets.items():
            if net.driver is None:
                continue
            slot = result.state.events.get(name)
            assert slot is not None, name
            assert slot[RISING] is not None or slot[FALLING] is not None, name

    def test_arrivals_at_every_endpoint(self, small_design):
        propagator = Propagator(small_design, StaConfig(mode=AnalysisMode.BEST_CASE))
        result = propagator.run_pass()
        endpoints = {a.endpoint for a in result.arrivals}
        assert len(endpoints) == len(small_design.circuit.timing_endpoints())

    def test_longest_delay_is_max_arrival(self, small_design):
        propagator = Propagator(small_design, StaConfig(mode=AnalysisMode.BEST_CASE))
        result = propagator.run_pass()
        assert result.longest_delay == pytest.approx(
            max(a.event.t_cross for a in result.arrivals)
        )

    def test_event_marker_ordering(self, small_design):
        propagator = Propagator(small_design, StaConfig(mode=AnalysisMode.WORST_CASE))
        result = propagator.run_pass()
        for slot in result.state.events.values():
            for event in slot.values():
                if event is not None:
                    assert event.t_early <= event.t_cross <= event.t_late

    def test_deterministic(self, small_design):
        config = StaConfig(mode=AnalysisMode.ONE_STEP)
        a = Propagator(small_design, config).run_pass()
        b = Propagator(small_design, config).run_pass()
        assert a.longest_delay == b.longest_delay


class TestModeOrdering:
    """The per-endpoint bound ordering -- the reproduction's central
    invariant (DESIGN.md section 5)."""

    def test_best_below_iterative(self, all_results):
        self._leq(all_results[AnalysisMode.BEST_CASE], all_results[AnalysisMode.ITERATIVE])

    def test_iterative_below_one_step(self, all_results):
        self._leq(all_results[AnalysisMode.ITERATIVE], all_results[AnalysisMode.ONE_STEP])

    def test_one_step_below_worst(self, all_results):
        self._leq(all_results[AnalysisMode.ONE_STEP], all_results[AnalysisMode.WORST_CASE])

    def test_best_below_static_doubled(self, all_results):
        self._leq(all_results[AnalysisMode.BEST_CASE], all_results[AnalysisMode.STATIC_DOUBLED])

    @staticmethod
    def _leq(lo, hi, tol=1e-12):
        lo_map = lo.arrival_map()
        hi_map = hi.arrival_map()
        assert set(lo_map) == set(hi_map)
        for key, value in lo_map.items():
            assert value <= hi_map[key] + tol, key

    def test_coupling_has_real_impact(self, all_results):
        """The design has enough coupling that worst > best measurably
        (otherwise these tests prove nothing)."""
        best = all_results[AnalysisMode.BEST_CASE].longest_delay
        worst = all_results[AnalysisMode.WORST_CASE].longest_delay
        assert worst > best * 1.02

    def test_one_step_improves_on_worst(self, all_results):
        """Quiet lines exist, so the window-based bound must beat
        permanent coupling somewhere (the paper's whole point)."""
        one_step = all_results[AnalysisMode.ONE_STEP].longest_delay
        worst = all_results[AnalysisMode.WORST_CASE].longest_delay
        assert one_step < worst


class TestEvaluationCounts:
    def test_one_step_costs_at_most_two_calcs_per_arc(self, small_design):
        config = StaConfig(mode=AnalysisMode.ONE_STEP)
        propagator = Propagator(small_design, config)
        result = propagator.run_pass()
        assert result.waveform_evaluations <= 2 * result.arcs_processed
        assert result.waveform_evaluations > result.arcs_processed

    def test_fixed_modes_cost_one_calc_per_arc(self, small_design):
        config = StaConfig(mode=AnalysisMode.BEST_CASE)
        result = Propagator(small_design, config).run_pass()
        assert result.waveform_evaluations == result.arcs_processed


class TestClockModel:
    def test_always_model_is_more_pessimistic(self, small_design):
        settled = Propagator(
            small_design,
            StaConfig(mode=AnalysisMode.ONE_STEP, clock_model=ClockAggressorModel.SETTLED),
        ).run_pass()
        always = Propagator(
            small_design,
            StaConfig(mode=AnalysisMode.ONE_STEP, clock_model=ClockAggressorModel.ALWAYS),
        ).run_pass()
        assert always.longest_delay >= settled.longest_delay - 1e-15
