"""Tests for the tabulated device models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.mosfet import nmos, pmos
from repro.devices.params import default_process
from repro.devices.tables import DeviceTable, StageTable

VDD = default_process().vdd


@pytest.fixture(scope="module")
def nmos_table():
    return DeviceTable(nmos(2e-6))


@pytest.fixture(scope="module")
def stage_table():
    return StageTable(pmos(4e-6), nmos(2e-6))


class TestDeviceTable:
    def test_matches_analytic_on_grid_points(self, nmos_table):
        device = nmos_table.device
        axis = nmos_table.axis
        for vgs in axis[::20]:
            for vds in axis[::20]:
                assert nmos_table.ids(vgs, vds) == pytest.approx(
                    device.ids(vgs, vds), rel=1e-9, abs=1e-15
                )

    def test_interpolation_error_small(self, nmos_table):
        assert nmos_table.max_interpolation_error() < 1e-3

    def test_finer_table_is_more_accurate(self):
        coarse = DeviceTable(nmos(2e-6), points=31)
        fine = DeviceTable(nmos(2e-6), points=241)
        assert fine.max_interpolation_error() < coarse.max_interpolation_error()

    def test_clamps_outside_range(self, nmos_table):
        inside = nmos_table.ids(VDD + 0.3, VDD + 0.3)
        outside = nmos_table.ids(VDD + 5.0, VDD + 5.0)
        assert outside == pytest.approx(inside, rel=1e-9)

    def test_derivative_consistent_with_finite_difference(self, nmos_table):
        vgs, vds = 2.0, 1.0
        _, gds = nmos_table.ids_with_gds(vgs, vds)
        h = 1e-4
        fd = (nmos_table.ids(vgs, vds + h) - nmos_table.ids(vgs, vds - h)) / (2 * h)
        assert gds == pytest.approx(fd, rel=0.05)

    @given(
        vgs=st.floats(min_value=0.0, max_value=VDD),
        vds=st.floats(min_value=0.0, max_value=VDD),
    )
    @settings(max_examples=60, deadline=None)
    def test_interpolation_close_to_analytic(self, nmos_table, vgs, vds):
        exact = nmos_table.device.ids(vgs, vds)
        scale = nmos_table.device.saturation_current()
        assert nmos_table.ids(vgs, vds) == pytest.approx(exact, abs=1e-3 * scale)

    def test_vectorised_lookup_matches_scalar(self, nmos_table):
        vgs = np.linspace(0, VDD, 7)
        vds = np.linspace(0, VDD, 7)
        vec = nmos_table.ids_array(vgs, vds)
        for i in range(7):
            assert vec[i] == pytest.approx(nmos_table.ids(vgs[i], vds[i]), rel=1e-12, abs=1e-18)

    def test_shape_mismatch_rejected(self):
        from repro.devices.tables import _BilinearGrid

        with pytest.raises(ValueError, match="shape"):
            _BilinearGrid(np.arange(3.0), np.arange(4.0), np.zeros((3, 3)))


class TestStageTable:
    def test_pull_up_wins_with_input_low(self, stage_table):
        assert stage_table.current(0.0, 0.5 * VDD) > 0

    def test_pull_down_wins_with_input_high(self, stage_table):
        assert stage_table.current(VDD, 0.5 * VDD) < 0

    def test_settled_rails_near_zero_current(self, stage_table):
        on = abs(stage_table.current(0.0, 0.5 * VDD))
        assert abs(stage_table.current(0.0, VDD)) < 1e-3 * on
        assert abs(stage_table.current(VDD, 0.0)) < 1e-3 * on

    def test_derivative_is_negative_at_midpoint(self, stage_table):
        """More output voltage -> less pull-up current / more pull-down:
        the stage conductance is negative (stabilising) mid-transition."""
        _, dvout = stage_table.current_with_dvout(0.5 * VDD, 0.5 * VDD)
        assert dvout < 0

    def test_requires_a_device(self):
        with pytest.raises(ValueError, match="at least one"):
            StageTable(None, None)

    def test_pull_down_only_stage(self):
        table = StageTable(None, nmos(2e-6))
        assert table.current(VDD, VDD) < 0
        assert table.current(0.0, VDD) == pytest.approx(0.0, abs=1e-9)

    def test_pull_up_only_stage(self):
        table = StageTable(pmos(4e-6), None)
        assert table.current(0.0, 0.0) > 0
