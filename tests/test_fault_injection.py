"""Deterministic fault-injection suite.

Every test forces a failure mode through :mod:`repro.testing.faults` and
asserts the runtime's contract: results stay conservative (a degraded
bound never decreases), strict mode fails fast with the taxonomy's
types, corrupt artifacts are quarantined, and checkpointed runs resume
bit-identically.
"""

import json
import logging

import pytest

from repro.cli import main
from repro.core.analyzer import CrosstalkSTA
from repro.core.checkpoint import CheckpointManager
from repro.core.iterative import run_iterative
from repro.core.modes import AnalysisMode, StaConfig
from repro.core.propagation import PassResult, Propagator
from repro.core.graph import TimingState
from repro.errors import (
    AnalysisInterrupted,
    CacheError,
    DegradationBudgetError,
    SolverError,
)
from repro.obs import Observability
from repro.testing import (
    corrupt_file,
    interrupt_after_pass,
    newton_failures,
    worker_faults,
)
from repro.waveform.coupling import CouplingLoad
from repro.waveform.gatedelay import ArcRequest, GateDelayCalculator


def _run(design, mode=AnalysisMode.ONE_STEP, **config_kwargs):
    sta = CrosstalkSTA(design, StaConfig(mode=mode, **config_kwargs))
    return sta.run()


class TestGracefulDegradation:
    def test_degraded_bound_never_decreases(self, s27_design):
        clean = _run(s27_design)
        with newton_failures(rate=0.3, seed=3):
            degraded = _run(s27_design)
        assert degraded.degraded_arcs, "injection produced no degraded arcs"
        assert degraded.longest_delay >= clean.longest_delay
        # Per-endpoint: no arrival may come out earlier than the clean bound.
        clean_map = clean.arrival_map()
        for key, arrival in degraded.arrival_map().items():
            assert arrival >= clean_map[key]

    def test_all_arcs_degraded_still_conservative(self, s27_design):
        clean = _run(s27_design)
        with newton_failures(rate=1.0, seed=0):
            degraded = _run(s27_design)
        assert len(degraded.degraded_arcs) == degraded.cache_stats["evaluations"]
        assert degraded.longest_delay >= clean.longest_delay

    def test_degradation_is_deterministic(self, s27_design):
        with newton_failures(rate=0.3, seed=7):
            first = _run(s27_design)
        with newton_failures(rate=0.3, seed=7):
            second = _run(s27_design)
        assert first.longest_delay == second.longest_delay
        assert first.degraded_arcs == second.degraded_arcs

    def test_annotations_identify_the_arc(self, s27_design):
        with newton_failures(rate=1.0, seed=0):
            result = _run(s27_design, mode=AnalysisMode.BEST_CASE)
        note = result.degraded_arcs[0]
        assert {"cell", "pin", "input_direction", "bound", "reason"} <= set(note)
        assert "injected Newton failure" in note["reason"]

    def test_degraded_counter_recorded(self, s27_design):
        with newton_failures(rate=1.0, seed=0):
            result = _run(s27_design, mode=AnalysisMode.BEST_CASE)
        assert result.cache_stats["degraded_arcs"] == len(result.degraded_arcs) > 0

    def test_strict_mode_raises_solver_error(self, s27_design):
        with newton_failures(rate=1.0, seed=0):
            with pytest.raises(SolverError):
                _run(s27_design, mode=AnalysisMode.BEST_CASE, strict=True)

    def test_budget_exceeded_raises_with_result(self, s27_design):
        with newton_failures(rate=1.0, seed=0):
            with pytest.raises(DegradationBudgetError) as excinfo:
                _run(s27_design, mode=AnalysisMode.BEST_CASE, max_degraded=0)
        err = excinfo.value
        assert err.degraded > err.budget == 0
        assert err.result is not None
        assert err.result.degraded_arcs

    def test_within_budget_passes(self, s27_design):
        with newton_failures(rate=1.0, seed=0):
            result = _run(
                s27_design, mode=AnalysisMode.BEST_CASE, max_degraded=10_000
            )
        assert result.degraded_arcs


class TestBatchEngineFallback:
    def test_batch_failure_falls_back_per_arc(self, s27_design):
        clean = _run(s27_design, engine="batch")
        with newton_failures(rate=1.0, seed=0):
            degraded = _run(s27_design, engine="batch")
        assert degraded.cache_stats["degraded_arcs"] > 0
        assert degraded.longest_delay >= clean.longest_delay

    def test_batch_strict_raises(self, s27_design):
        with newton_failures(rate=1.0, seed=0):
            with pytest.raises(SolverError):
                _run(s27_design, engine="batch", strict=True)


def _pool_requests(library):
    cells = [library[n] for n in ("INV_X1", "NAND2_X1", "NOR2_X1", "INV_X2")]
    requests = []
    for i, ctype in enumerate(cells):
        for j, tt in enumerate((80e-12, 120e-12, 160e-12)):
            requests.append(
                ArcRequest(
                    ctype,
                    "A",
                    "rise" if j % 2 else "fall",
                    tt,
                    CouplingLoad(c_ground=(2 + i) * 1e-15),
                )
            )
    return requests


class TestWorkerResilience:
    def _pooled_calculator(self, **kwargs):
        kwargs.setdefault("engine", "batch")
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("retry_backoff", 0.01)
        return GateDelayCalculator(**kwargs)

    @pytest.fixture(scope="class")
    def clean_arcs(self, library):
        calc = self._pooled_calculator()
        try:
            calc.prime_arcs(_pool_requests(library))
        finally:
            calc.close()
        return dict(calc._arc_cache)

    def test_worker_death_is_retried(self, library, clean_arcs):
        calc = self._pooled_calculator(worker_retries=2)
        try:
            with worker_faults(calc, action="kill", times=1):
                calc.prime_arcs(_pool_requests(library))
        finally:
            calc.close()
        assert calc._arc_cache == clean_arcs
        assert calc.metrics.counter("engine.worker_failures").value == 1
        assert calc.metrics.counter("engine.worker_retries").value == 1

    def test_poison_chunk_quarantined_and_replayed(self, library, clean_arcs):
        calc = self._pooled_calculator(worker_retries=1)
        try:
            with worker_faults(calc, action="kill", times=100):
                calc.prime_arcs(_pool_requests(library))
        finally:
            calc.close()
        assert calc._arc_cache == clean_arcs
        assert calc.metrics.counter("engine.quarantined_chunks").value > 0
        assert calc.metrics.counter("engine.serial_fallbacks").value > 0

    def test_hung_worker_times_out(self, library, clean_arcs):
        calc = self._pooled_calculator(worker_retries=1, worker_timeout=1.0)
        try:
            with worker_faults(calc, action="hang", times=1, seconds=5.0):
                calc.prime_arcs(_pool_requests(library))
        finally:
            calc.close()
        assert calc._arc_cache == clean_arcs
        assert calc.metrics.counter("engine.worker_failures").value == 1


class TestCacheResilience:
    def _warm_cache(self, library, path):
        calc = GateDelayCalculator()
        cells = [library[n] for n in ("INV_X1", "NAND2_X1")]
        calc.prime_arcs(_pool_requests(library)[:4])
        calc.save_cache_file(str(path), cells)
        return calc, cells

    def test_truncated_cache_quarantined(self, library, tmp_path):
        path = tmp_path / "arcs.json"
        _, cells = self._warm_cache(library, path)
        corrupt_file(str(path), mode="truncate")
        fresh = GateDelayCalculator()
        assert fresh.load_cache_file(str(path), cells) == 0
        assert fresh.cache_stats()["quarantined"] == 1
        assert (tmp_path / "arcs.json.bad").exists()
        assert not path.exists()

    def test_bitflipped_cache_detected(self, library, tmp_path):
        path = tmp_path / "arcs.json"
        _, cells = self._warm_cache(library, path)
        corrupt_file(str(path), mode="bitflip", seed=5)
        fresh = GateDelayCalculator()
        assert fresh.load_cache_file(str(path), cells) == 0
        # Whatever the flip hit (payload, checksum, or structure), no
        # corrupt entry may be adopted, and the file must be quarantined.
        assert fresh.cache_stats()["quarantined"] == 1
        assert (tmp_path / "arcs.json.bad").exists()

    def test_strict_mode_raises_cache_error(self, library, tmp_path):
        path = tmp_path / "arcs.json"
        _, cells = self._warm_cache(library, path)
        corrupt_file(str(path), mode="truncate")
        strict_calc = GateDelayCalculator(strict=True)
        with pytest.raises(CacheError):
            strict_calc.load_cache_file(str(path), cells)

    def test_rebuild_after_quarantine_roundtrips(self, library, tmp_path):
        path = tmp_path / "arcs.json"
        calc, cells = self._warm_cache(library, path)
        corrupt_file(str(path), mode="truncate")
        fresh = GateDelayCalculator()
        assert fresh.load_cache_file(str(path), cells) == 0
        calc.save_cache_file(str(path), cells)
        assert fresh.load_cache_file(str(path), cells) == len(calc._arc_cache)


class TestCheckpointResume:
    CONFIG = dict(mode=AnalysisMode.ITERATIVE, max_iterations=6)

    def _iterative(self, design, checkpoint=None, after_pass=None):
        calc = GateDelayCalculator(process=design.process)
        propagator = Propagator(
            design, StaConfig(**self.CONFIG), calc, obs=Observability.disabled()
        )
        return run_iterative(propagator, checkpoint=checkpoint, after_pass=after_pass)

    def test_interrupt_then_resume_bit_identical(self, s27_design, tmp_path):
        reference = self._iterative(s27_design)
        path = str(tmp_path / "ck.json")
        manager = CheckpointManager(path, fingerprint="s27-test")
        with pytest.raises(AnalysisInterrupted):
            self._iterative(
                s27_design, checkpoint=manager, after_pass=interrupt_after_pass(1)
            )
        resumed = self._iterative(
            s27_design, checkpoint=CheckpointManager(path, fingerprint="s27-test")
        )
        assert resumed.final.longest_delay == reference.final.longest_delay
        assert resumed.final.arrival_map() == reference.final.arrival_map()
        assert [r.longest_delay for r in resumed.history] == [
            r.longest_delay for r in reference.history
        ]

    def test_converged_checkpoint_returns_without_passes(self, s27_design, tmp_path):
        path = str(tmp_path / "ck.json")
        manager = CheckpointManager(path, fingerprint="s27-test")
        finished = self._iterative(s27_design, checkpoint=manager)
        calc = GateDelayCalculator(process=s27_design.process)
        propagator = Propagator(
            s27_design,
            StaConfig(**self.CONFIG),
            calc,
            obs=Observability.disabled(),
        )
        again = run_iterative(
            propagator, checkpoint=CheckpointManager(path, fingerprint="s27-test")
        )
        assert again.final.longest_delay == finished.final.longest_delay
        assert calc.evaluations == 0, "resume of a converged run re-ran passes"

    def test_corrupt_checkpoint_quarantined_and_restarted(self, s27_design, tmp_path):
        reference = self._iterative(s27_design)
        path = str(tmp_path / "ck.json")
        manager = CheckpointManager(path, fingerprint="s27-test")
        with pytest.raises(AnalysisInterrupted):
            self._iterative(
                s27_design, checkpoint=manager, after_pass=interrupt_after_pass(1)
            )
        corrupt_file(path, mode="truncate")
        restarted = self._iterative(
            s27_design, checkpoint=CheckpointManager(path, fingerprint="s27-test")
        )
        assert restarted.final.longest_delay == reference.final.longest_delay
        assert (tmp_path / "ck.json.bad").exists()

    def test_fingerprint_mismatch_ignores_checkpoint(self, s27_design, tmp_path):
        path = str(tmp_path / "ck.json")
        with pytest.raises(AnalysisInterrupted):
            self._iterative(
                s27_design,
                checkpoint=CheckpointManager(path, fingerprint="config-A"),
                after_pass=interrupt_after_pass(1),
            )
        reference = self._iterative(s27_design)
        other = self._iterative(
            s27_design, checkpoint=CheckpointManager(path, fingerprint="config-B")
        )
        assert other.final.longest_delay == reference.final.longest_delay
        assert other.passes == reference.passes

    def test_analyzer_checkpoint_resume(self, s27_design, tmp_path):
        path = str(tmp_path / "analyzer_ck.json")
        clean = CrosstalkSTA(
            s27_design, StaConfig(mode=AnalysisMode.ITERATIVE)
        ).run()
        first = CrosstalkSTA(
            s27_design, StaConfig(mode=AnalysisMode.ITERATIVE, checkpoint=path)
        ).run()
        assert first.longest_delay == clean.longest_delay
        second = CrosstalkSTA(
            s27_design, StaConfig(mode=AnalysisMode.ITERATIVE, checkpoint=path)
        ).run()
        assert second.longest_delay == clean.longest_delay
        # The converged checkpoint was resumed, not recomputed.
        assert second.cache_stats["evaluations"] == 0


class _FakePropagator:
    """Scripted pass delays to exercise the iterative loop's stop logic."""

    def __init__(self, delays):
        self.delays = list(delays)
        self.calls = 0
        self.config = StaConfig(mode=AnalysisMode.ITERATIVE, max_iterations=10)
        self.order = []
        self.obs = Observability.disabled()

    def run_pass(self, prev_windows=None, recalc_cells=None, prev_state=None):
        delay = self.delays[self.calls]
        self.calls += 1
        return PassResult(state=TimingState(), longest_delay=delay)


class TestOscillationGuard:
    def test_oscillation_detected_and_logged(self, caplog):
        fake = _FakePropagator([10e-9, 9e-9, 10e-9, 8e-9])
        with caplog.at_level(logging.WARNING, logger="repro.core.iterative"):
            result = run_iterative(fake)
        # The loop stops at the bounce-back, reports the best bound, and
        # classifies the stop as oscillation.
        assert fake.calls == 3
        assert result.final.longest_delay == 9e-9
        assert [r.longest_delay for r in result.history] == [10e-9, 9e-9, 10e-9]
        assert any("oscillation" in r.message for r in caplog.records)
        assert (
            fake.obs.metrics.counter("iterative.oscillation_stops").value == 1
        )

    def test_convergence_not_flagged_as_oscillation(self, caplog):
        fake = _FakePropagator([10e-9, 9e-9, 9e-9])
        with caplog.at_level(logging.WARNING, logger="repro.core.iterative"):
            result = run_iterative(fake)
        assert result.final.longest_delay == 9e-9
        assert not any("oscillation" in r.message for r in caplog.records)
        assert (
            fake.obs.metrics.counter("iterative.oscillation_stops").value == 0
        )


class TestCliFaultPaths:
    def test_degraded_run_exits_zero_and_reports_counter(self, tmp_path, capsys):
        target = tmp_path / "metrics.json"
        with newton_failures(rate=1.0, seed=0):
            code = main(
                ["analyze", "s27", "--mode", "best_case", "--metrics", str(target)]
            )
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["cumulative"]["counters"]["solver.degraded_arcs"] > 0

    def test_budget_flag_maps_to_exit_code_3(self, capsys):
        with newton_failures(rate=1.0, seed=0):
            code = main(
                ["analyze", "s27", "--mode", "best_case", "--max-degraded", "0"]
            )
        assert code == 3

    def test_strict_flag_maps_to_exit_code_4(self, capsys):
        with newton_failures(rate=1.0, seed=0):
            code = main(["analyze", "s27", "--mode", "best_case", "--strict"])
        assert code == 4

    def test_missing_bench_file_maps_to_exit_code_2(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "nope.bench")]) == 2

    def test_checkpoint_flag_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "ck.json"
        assert main(["analyze", "s27", "--checkpoint", str(path)]) == 0
        assert path.exists()
        assert main(["analyze", "s27", "--checkpoint", str(path)]) == 0
