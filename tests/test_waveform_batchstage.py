"""Batch stage solver vs the scalar reference.

The batch solver re-implements the scalar backward-Euler/Newton loop over
a batch axis with identical arithmetic; these tests pin the agreement on
randomized electrical situations (both directions, uncoupled, opposing
and aiding coupling) and check the batching machinery itself.
"""

import random

import numpy as np
import pytest

from repro.waveform.batchstage import BatchArcSpec, BatchStageSolver
from repro.waveform.coupling import CouplingLoad
from repro.waveform.gatedelay import GateDelayCalculator
from repro.waveform.pwl import FALLING, RISING
from repro.waveform.stage import InputRamp, StageSolverError

MARKERS = ("t_cross", "transition", "t_early", "t_late")


@pytest.fixture(scope="module")
def harness(library, process):
    """Shared stage tables (via a throwaway calculator) plus both solvers."""
    calc = GateDelayCalculator(process=process)
    arcs = [
        ("INV_X1", "A"),
        ("NAND2_X1", "A"),
        ("NOR3_X2", "B"),
        ("AOI21_X4", "C"),
    ]
    solvers = [calc.solver_for(library[name], pin) for name, pin in arcs]
    batch = BatchStageSolver([s.table for s in solvers], process)
    return solvers, batch


def _random_specs(n, seed):
    rng = random.Random(seed)
    specs = []
    for _ in range(n):
        kind = rng.random()
        if kind < 0.4:
            load = CouplingLoad(c_ground=rng.uniform(1e-15, 30e-15))
            aiding = False
        elif kind < 0.8:
            load = CouplingLoad(
                c_ground=rng.uniform(1e-15, 10e-15),
                c_couple_active=rng.uniform(0.5e-15, 6e-15),
            )
            aiding = False
        else:
            load = CouplingLoad(
                c_ground=rng.uniform(1e-15, 10e-15),
                c_couple_active=rng.uniform(0.5e-15, 6e-15),
            )
            aiding = True
        specs.append(
            BatchArcSpec(
                table_index=rng.randrange(4),
                input_direction=rng.choice([RISING, FALLING]),
                transition=rng.uniform(10e-12, 250e-12),
                load=load,
                aiding=aiding,
            )
        )
    return specs


class TestBatchVsScalar:
    def test_random_mixed_batch_matches_scalar_bitwise(self, harness):
        solvers, batch = harness
        specs = _random_specs(40, seed=11)
        batched = batch.solve_many(specs)
        for spec, got in zip(specs, batched):
            ref = solvers[spec.table_index].solve(
                InputRamp(
                    direction=spec.input_direction,
                    t_start=spec.t_start,
                    transition=spec.transition,
                ),
                spec.load,
                aiding=spec.aiding,
            )
            assert got.direction == ref.direction
            assert got.coupled == ref.coupled
            for marker in MARKERS:
                assert getattr(got, marker) == getattr(ref, marker), (spec, marker)

    def test_batch_of_one(self, harness):
        solvers, batch = harness
        spec = BatchArcSpec(
            table_index=1,
            input_direction=RISING,
            transition=80e-12,
            load=CouplingLoad(c_ground=5e-15, c_couple_active=2e-15),
        )
        got = batch.solve_many([spec])[0]
        ref = solvers[1].solve(
            InputRamp(direction=RISING, t_start=0.0, transition=80e-12), spec.load
        )
        for marker in MARKERS:
            assert getattr(got, marker) == getattr(ref, marker)
        assert got.coupled and ref.coupled

    def test_empty_batch(self, harness):
        _, batch = harness
        assert batch.solve_many([]) == []

    def test_nonpositive_load_rejected(self, harness):
        _, batch = harness
        spec = BatchArcSpec(
            table_index=0,
            input_direction=RISING,
            transition=50e-12,
            load=CouplingLoad(c_ground=0.0),
        )
        with pytest.raises(StageSolverError):
            batch.solve_many([spec])

    def test_nonzero_start_time_shifts_markers(self, harness):
        solvers, batch = harness
        base = BatchArcSpec(
            table_index=0,
            input_direction=FALLING,
            transition=60e-12,
            load=CouplingLoad(c_ground=8e-15),
        )
        shifted = BatchArcSpec(
            table_index=0,
            input_direction=FALLING,
            transition=60e-12,
            load=CouplingLoad(c_ground=8e-15),
            t_start=1e-9,
        )
        r0, r1 = batch.solve_many([base, shifted])
        assert r1.t_cross == pytest.approx(r0.t_cross + 1e-9, abs=1e-15)
        assert r1.transition == pytest.approx(r0.transition, abs=1e-15)


class TestBatchedNewtonUsage:
    def test_mixed_convergence_lengths(self, harness):
        """Elements with very different time scales (fast inverter vs a
        heavily loaded stage) finish at different lockstep iterations; the
        masking must keep finished elements frozen."""
        _, batch = harness
        specs = [
            BatchArcSpec(
                table_index=0,
                input_direction=RISING,
                transition=10e-12,
                load=CouplingLoad(c_ground=1e-15),
            ),
            BatchArcSpec(
                table_index=0,
                input_direction=RISING,
                transition=300e-12,
                load=CouplingLoad(c_ground=60e-15),
            ),
        ]
        fast, slow = batch.solve_many(specs)
        assert fast.t_cross < slow.t_cross
        assert np.all(np.diff(fast.waveform.times) >= 0)
        assert np.all(np.diff(slow.waveform.times) >= 0)
