"""Integration: full STA-versus-simulation validation on s27.

These are the repository's strongest claims (the paper's Section 6):
every analysis mode upper-bounds the simulated delay of its scenario, and
the crosstalk-aware bounds are tight.
"""

import pytest

from repro.core.modes import AnalysisMode
from repro.validate import run_table_comparison


@pytest.fixture(scope="module")
def comparison(s27_design):
    return run_table_comparison(s27_design, sim_steps=1600)


class TestBounds:
    def test_quiet_simulation_below_best_case(self, comparison):
        best = comparison.results[AnalysisMode.BEST_CASE].longest_delay
        assert comparison.sim_quiet_delay <= best

    def test_windowed_simulation_below_iterative(self, comparison):
        bound = comparison.results[AnalysisMode.ITERATIVE].longest_delay
        assert comparison.sim_windowed_delay <= bound

    def test_windowed_simulation_below_one_step(self, comparison):
        bound = comparison.results[AnalysisMode.ONE_STEP].longest_delay
        assert comparison.sim_windowed_delay <= bound

    def test_worst_simulation_below_worst_case(self, comparison):
        bound = comparison.results[AnalysisMode.WORST_CASE].longest_delay
        assert comparison.sim_worst_delay <= bound

    def test_simulations_ordered(self, comparison):
        assert comparison.sim_quiet_delay <= comparison.sim_windowed_delay + 1e-12
        assert comparison.sim_windowed_delay <= comparison.sim_worst_delay + 1e-12


class TestTightness:
    def test_iterative_bound_tight(self, comparison):
        """The paper stresses "the accuracy of the estimated delay values
        in comparison to the simulations": the bound should be within a
        modest factor of the achievable delay."""
        bound = comparison.results[AnalysisMode.ITERATIVE].longest_delay
        assert bound <= comparison.sim_windowed_delay * 1.25

    def test_best_case_bound_tight(self, comparison):
        bound = comparison.results[AnalysisMode.BEST_CASE].longest_delay
        assert bound <= comparison.sim_quiet_delay * 1.25

    def test_coupling_visible_in_simulation(self, comparison):
        """Aligned aggressors measurably slow the real (simulated) path."""
        assert comparison.sim_worst_delay > comparison.sim_quiet_delay * 1.005


class TestRecord:
    def test_delays_ns_complete(self, comparison):
        table = comparison.delays_ns()
        for mode in AnalysisMode:
            assert mode.value in table
        assert "simulation_quiet" in table
        assert "simulation_windowed" in table
        assert "simulation_worst" in table

    def test_coupling_impact_positive(self, comparison):
        assert comparison.coupling_impact > 0

    def test_alignment_ran(self, comparison):
        assert comparison.alignment_iterations >= 1
