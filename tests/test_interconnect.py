"""Tests for RC trees and Elmore delay."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect.elmore import (
    effective_load,
    elmore_delay_to,
    elmore_delays,
    sink_delays,
)
from repro.interconnect.rctree import RCTree


def ladder(n: int, r: float, c: float) -> RCTree:
    tree = RCTree("ladder")
    node = tree.add_node(-1, 0.0, 0.0, name="driver")
    for i in range(n):
        node = tree.add_node(node, r, c, name=f"n{i}")
    return tree


class TestRCTree:
    def test_single_lump(self):
        tree = RCTree.single_lump("net", 100.0, 50e-15)
        assert tree.total_cap() == pytest.approx(50e-15)
        assert tree.total_resistance() == pytest.approx(100.0)

    def test_root_must_come_first(self):
        tree = RCTree("t")
        tree.add_node(-1, 0.0)
        with pytest.raises(ValueError, match="root"):
            tree.add_node(-1, 0.0)

    def test_parent_must_exist(self):
        tree = RCTree("t")
        with pytest.raises(ValueError, match="out of range"):
            tree.add_node(5, 1.0)

    def test_negative_values_rejected(self):
        tree = RCTree("t")
        root = tree.add_node(-1, 0.0)
        with pytest.raises(ValueError):
            tree.add_node(root, -1.0)
        with pytest.raises(ValueError):
            tree.add_cap(root, -1e-15)

    def test_subtree_caps(self):
        tree = RCTree("t")
        root = tree.add_node(-1, 0.0, 1e-15)
        a = tree.add_node(root, 1.0, 2e-15)
        tree.add_node(a, 1.0, 3e-15)
        tree.add_node(root, 1.0, 4e-15)
        caps = tree.subtree_caps()
        assert caps[0] == pytest.approx(10e-15)
        assert caps[a] == pytest.approx(5e-15)

    def test_path_to_root(self):
        tree = ladder(3, 1.0, 1e-15)
        path = tree.path_to_root(tree.node_by_name("n2"))
        assert path == [3, 2, 1, 0]


class TestElmore:
    def test_single_lump_is_rc(self):
        tree = RCTree.single_lump("net", 200.0, 10e-15)
        assert elmore_delay_to(tree, "sink") == pytest.approx(200.0 * 10e-15)

    def test_ladder_formula(self):
        """Uniform ladder: T_n = sum_{k=1..n} k * R * C (reversed)."""
        n, r, c = 4, 100.0, 10e-15
        tree = ladder(n, r, c)
        expected = r * c * sum(n - k + 1 for k in range(1, n + 1))
        # T = R*(4C) + R*(3C) + R*(2C) + R*C
        assert elmore_delay_to(tree, f"n{n-1}") == pytest.approx(expected)

    def test_delays_monotone_along_path(self):
        tree = ladder(5, 50.0, 5e-15)
        delays = elmore_delays(tree)
        for node in tree.nodes[1:]:
            assert delays[node.index] >= delays[node.parent]

    def test_branch_sees_siblings_cap_at_shared_resistance(self):
        tree = RCTree("t")
        root = tree.add_node(-1, 0.0, 0.0, name="driver")
        stem = tree.add_node(root, 100.0, 0.0)
        tree.add_node(stem, 100.0, 10e-15, name="a")
        tree.add_node(stem, 100.0, 20e-15, name="b")
        delays = sink_delays(tree)
        # Shared stem charges both caps; each branch only its own.
        assert delays["a"] == pytest.approx(100.0 * 30e-15 + 100.0 * 10e-15)
        assert delays["b"] == pytest.approx(100.0 * 30e-15 + 100.0 * 20e-15)

    def test_effective_load_is_total_cap(self):
        tree = ladder(3, 10.0, 7e-15)
        assert effective_load(tree) == pytest.approx(21e-15)

    @given(
        r=st.floats(min_value=1.0, max_value=1e3),
        c=st.floats(min_value=1e-15, max_value=1e-12),
        extra_r=st.floats(min_value=1.0, max_value=1e3),
        extra_c=st.floats(min_value=1e-15, max_value=1e-12),
    )
    @settings(max_examples=40, deadline=None)
    def test_elmore_monotone_in_r_and_c(self, r, c, extra_r, extra_c):
        base = RCTree.single_lump("n", r, c)
        more_r = RCTree.single_lump("n", r + extra_r, c)
        more_c = RCTree.single_lump("n", r, c + extra_c)
        t0 = elmore_delay_to(base, "sink")
        assert elmore_delay_to(more_r, "sink") >= t0
        assert elmore_delay_to(more_c, "sink") >= t0

    def test_delays_nonnegative(self):
        tree = ladder(6, 1.0, 1e-15)
        assert all(d >= 0 for d in elmore_delays(tree))
