"""Warm what-if analysis must be bit-identical to cold re-analysis.

The service's value proposition is that a what-if on a warm session
re-solves only the dirty cone -- *without changing a single bit* of the
answer.  These tests pin that guarantee in every analysis mode: the
edited design is analyzed once through the session's warm path
(migrated propagator memo + shared arc cache) and once completely cold
(fresh analyzer, fresh caches), and every arrival time must match to
the last ulp (compared via ``float.hex``).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode, StaConfig
from repro.service import SessionManager, apply_edit

MODES = list(AnalysisMode)


def _hex_map(result):
    return {
        key: float(t).hex() for key, t in result.arrival_map().items()
    }


@pytest.fixture(scope="module")
def manager():
    return SessionManager(config=StaConfig(mode=AnalysisMode.ONE_STEP))


@pytest.fixture(scope="module")
def session(manager):
    return manager.open("s27")


@pytest.fixture(scope="module")
def respace_edit(session):
    exposures = session.exposures("one_step")
    assert exposures, "s27 must expose coupled nets"
    return {
        "action": "respace",
        "nets": [exposures[0].net],
        "guard_tracks": 1,
    }


def _cold_run(session, edit, mode):
    edited, _ = apply_edit(session.design, edit)
    config = replace(session.config, mode=mode, checkpoint=None)
    return CrosstalkSTA(edited, config).run()


def _warm_run(session, edit, mode):
    session.analyze(mode.value)  # make sure the session is warm for this mode
    edited, _ = apply_edit(session.design, edit)
    config = replace(session.config, mode=mode, checkpoint=None)
    warm_sta = CrosstalkSTA(
        edited, config, calculator=session.sta.calculator, keep_propagators=True
    )
    warm_sta.warm_start_from(session.sta)
    return warm_sta.run()


class TestWarmColdEquivalence:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_every_arrival_bit_identical(self, session, respace_edit, mode):
        warm = _warm_run(session, respace_edit, mode)
        cold = _cold_run(session, respace_edit, mode)
        warm_map = _hex_map(warm)
        cold_map = _hex_map(cold)
        assert warm_map == cold_map
        assert float(warm.longest_delay).hex() == float(cold.longest_delay).hex()
        assert warm.critical_endpoint == cold.critical_endpoint
        assert warm.critical_direction == cold.critical_direction

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_whatif_payload_matches_cold(self, session, respace_edit, mode):
        payload = session.whatif(respace_edit, mode=mode.value)
        cold = _cold_run(session, respace_edit, mode)
        assert (
            payload["after"]["longest_delay_hex"]
            == float(cold.longest_delay).hex()
        )
        assert payload["after"]["critical_endpoint"] == cold.critical_endpoint
        assert not payload["committed"]

    def test_warm_run_actually_reuses_arcs(self, session, respace_edit):
        """Guard against vacuity: the warm path must *skip* work, not
        silently re-solve everything."""
        warm = _warm_run(session, respace_edit, AnalysisMode.ITERATIVE)
        reused = sum(r.reused_arcs for r in warm.history)
        dirty = sum(r.dirty_arcs for r in warm.history)
        assert reused > 0
        assert dirty > 0  # the edit's cone really was re-solved

    def test_drop_coupling_equivalence(self, session):
        exposures = session.exposures("one_step")
        victim = exposures[0].net
        neighbour = next(iter(session.design.loads[victim].couplings))
        edit = {"action": "drop_coupling", "net": victim, "neighbour": neighbour}
        for mode in (AnalysisMode.ONE_STEP, AnalysisMode.WORST_CASE):
            warm = _warm_run(session, edit, mode)
            cold = _cold_run(session, edit, mode)
            assert _hex_map(warm) == _hex_map(cold)

    def test_upsize_equivalence(self, session):
        exposures = session.exposures("one_step")
        edit = {"action": "upsize", "nets": [exposures[0].net], "steps": 1}
        warm = _warm_run(session, edit, AnalysisMode.ITERATIVE)
        cold = _cold_run(session, edit, AnalysisMode.ITERATIVE)
        assert _hex_map(warm) == _hex_map(cold)


class TestGeneratedDesignEquivalence:
    """Same guarantee on a denser generated circuit with real coupling."""

    @pytest.fixture(scope="class")
    def gen_session(self, manager):
        return manager.open("gen:s35932", scale=0.01)

    @pytest.mark.parametrize(
        "mode", [AnalysisMode.ONE_STEP, AnalysisMode.ITERATIVE],
        ids=["one_step", "iterative"],
    )
    def test_respace_bit_identical(self, gen_session, mode):
        exposures = gen_session.exposures(mode.value)
        edit = {
            "action": "respace",
            "nets": [e.net for e in exposures[:2]],
            "guard_tracks": 1,
        }
        warm = _warm_run(gen_session, edit, mode)
        cold = _cold_run(gen_session, edit, mode)
        assert _hex_map(warm) == _hex_map(cold)
        assert float(warm.longest_delay).hex() == float(cold.longest_delay).hex()
