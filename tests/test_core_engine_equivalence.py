"""Scalar vs batch engine: end-to-end equivalence.

The batch engine is strictly a performance feature: its longest-path
delay bounds must match the scalar reference within the quantization
guard band on every analysis mode (in practice they agree bitwise,
because both engines fill the same quantized arc cache with identical
numerics and share all decision logic).
"""

import pytest

from repro.circuit import s27
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode, Core, Engine, SolverTier, StaConfig
from repro.flow import prepare_design
from repro.testing import newton_failures


@pytest.fixture(scope="module")
def s27_design():
    return prepare_design(s27())


@pytest.fixture(scope="module")
def results(s27_design):
    out = {}
    for engine in (Engine.SCALAR, Engine.BATCH):
        sta = CrosstalkSTA(s27_design, StaConfig(engine=engine))
        out[engine] = {mode: sta.run(mode) for mode in AnalysisMode}
    return out


class TestEngineEquivalence:
    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_longest_delay_within_guard(self, results, mode):
        guard = StaConfig().guard
        scalar = results[Engine.SCALAR][mode]
        batch = results[Engine.BATCH][mode]
        assert abs(scalar.longest_delay - batch.longest_delay) <= guard
        assert scalar.critical_endpoint == batch.critical_endpoint
        assert scalar.critical_direction == batch.critical_direction

    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_every_endpoint_arrival_matches(self, results, mode):
        scalar = results[Engine.SCALAR][mode].arrival_map()
        batch = results[Engine.BATCH][mode].arrival_map()
        assert set(scalar) == set(batch)
        guard = StaConfig().guard
        for key in scalar:
            assert abs(scalar[key] - batch[key]) <= guard, key

    def test_same_evaluation_accounting(self, results):
        """Both engines walk the same arcs and make the same decisions."""
        for mode in AnalysisMode:
            scalar = results[Engine.SCALAR][mode]
            batch = results[Engine.BATCH][mode]
            assert scalar.arcs_processed == batch.arcs_processed
            assert scalar.waveform_evaluations == batch.waveform_evaluations
            assert scalar.coupled_arcs == batch.coupled_arcs
            assert scalar.passes == batch.passes

    def test_batch_engine_used_vectorized_solves(self, results):
        stats = results[Engine.BATCH][AnalysisMode.ITERATIVE].cache_stats
        assert stats["batched_solves"] > 0


class TestIncrementalEquivalence:
    """Delta-driven reuse must be invisible in the numbers: the memoized
    relative results re-anchor to exactly what a fresh solve would
    return, so every mode's bound is bit-identical (hex-equal), not
    merely within tolerance."""

    @pytest.fixture(scope="class")
    def pair(self, s27_design):
        out = {}
        for incremental in (True, False):
            sta = CrosstalkSTA(s27_design, StaConfig(incremental=incremental))
            out[incremental] = {mode: sta.run(mode) for mode in AnalysisMode}
        return out

    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_longest_delay_bit_identical(self, pair, mode):
        inc, full = pair[True][mode], pair[False][mode]
        assert inc.longest_delay.hex() == full.longest_delay.hex()
        assert inc.critical_endpoint == full.critical_endpoint
        assert inc.critical_direction == full.critical_direction

    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_every_pass_bit_identical(self, pair, mode):
        inc, full = pair[True][mode], pair[False][mode]
        assert len(inc.history) == len(full.history)
        for ri, rf in zip(inc.history, full.history):
            assert ri.longest_delay.hex() == rf.longest_delay.hex()

    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_every_endpoint_arrival_bit_identical(self, pair, mode):
        inc = pair[True][mode].arrival_map()
        full = pair[False][mode].arrival_map()
        assert set(inc) == set(full)
        for key in inc:
            assert inc[key].hex() == full[key].hex(), key

    def test_iterative_later_passes_reuse(self, pair):
        """Once windows and ramp shapes stabilize, later passes skip the
        waveform work entirely on this small design."""
        history = pair[True][AnalysisMode.ITERATIVE].history
        assert len(history) >= 2
        assert history[1].waveform_evaluations == 0
        assert history[1].reused_arcs > 0
        assert history[1].dirty_arcs == 0
        # The non-incremental run pays the full pass every time.
        full_history = pair[False][AnalysisMode.ITERATIVE].history
        assert full_history[1].waveform_evaluations > 0
        assert full_history[1].reused_arcs == 0


class TestSolverTierEquivalence:
    """The exact tier must be a true no-op: explicitly requesting
    ``SolverTier.EXACT`` is hex-identical to the default config in every
    mode.  The screened tier is a conservative accelerator: its bound
    may sit above exact, never below, and never beyond the tolerance."""

    @pytest.fixture(scope="class")
    def exact_pair(self, s27_design):
        default = CrosstalkSTA(s27_design, StaConfig())
        explicit = CrosstalkSTA(
            s27_design, StaConfig(solver_tier=SolverTier.EXACT)
        )
        return (
            {mode: default.run(mode) for mode in AnalysisMode},
            {mode: explicit.run(mode) for mode in AnalysisMode},
        )

    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_exact_tier_bit_identical_to_default(self, exact_pair, mode):
        default, explicit = exact_pair
        assert (
            default[mode].longest_delay.hex()
            == explicit[mode].longest_delay.hex()
        )
        assert default[mode].critical_endpoint == explicit[mode].critical_endpoint
        d_arrivals = default[mode].arrival_map()
        e_arrivals = explicit[mode].arrival_map()
        assert set(d_arrivals) == set(e_arrivals)
        for key in d_arrivals:
            assert d_arrivals[key].hex() == e_arrivals[key].hex(), key

    def test_exact_tier_reports_no_screen_activity(self, exact_pair):
        _, explicit = exact_pair
        stats = explicit[AnalysisMode.ITERATIVE].cache_stats
        assert stats["solver_tier"] == "exact"
        assert stats["tier_counts"]["surface"] == 0
        assert stats["tier_counts"]["analytical"] == 0

    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_screened_conservative_within_tolerance(self, s27_design, mode):
        tolerance = 100e-12
        exact = CrosstalkSTA(s27_design, StaConfig(mode=mode)).run()
        screened = CrosstalkSTA(
            s27_design,
            StaConfig(
                mode=mode,
                solver_tier=SolverTier.SCREENED,
                screen_tolerance=tolerance,
            ),
        ).run()
        delta = screened.longest_delay - exact.longest_delay
        assert delta >= -1e-15
        assert delta <= tolerance + 1e-15

    def test_screened_composes_with_incremental(self, s27_design):
        """Screened + memoized passes compose: disabling incremental
        reuse leaves the reported bound bit-identical, and the memoized
        run still reuses arcs once windows stabilize."""
        results = {}
        for incremental in (True, False):
            sta = CrosstalkSTA(
                s27_design,
                StaConfig(
                    mode=AnalysisMode.ITERATIVE,
                    incremental=incremental,
                    solver_tier=SolverTier.SCREENED,
                ),
            )
            results[incremental] = sta.run()
        inc, full = results[True], results[False]
        assert inc.longest_delay.hex() == full.longest_delay.hex()
        assert inc.critical_endpoint == full.critical_endpoint
        assert any(record.reused_arcs > 0 for record in inc.history[1:])
        assert all(record.reused_arcs == 0 for record in full.history)

    def test_screened_composes_with_checkpoint(self, s27_design, tmp_path):
        """A screened iterative run checkpoints and resumes; the resumed
        result matches a straight-through screened run, and the
        checkpoint is keyed to the tier so an exact run never resumes
        screened state."""
        path = tmp_path / "screened.ckpt"
        config = StaConfig(
            mode=AnalysisMode.ITERATIVE,
            solver_tier=SolverTier.SCREENED,
            checkpoint=str(path),
        )
        straight = CrosstalkSTA(s27_design, config).run()
        resumed = CrosstalkSTA(s27_design, config).run()
        assert resumed.longest_delay.hex() == straight.longest_delay.hex()
        exact_config = StaConfig(
            mode=AnalysisMode.ITERATIVE, checkpoint=str(path)
        )
        exact = CrosstalkSTA(s27_design, exact_config).run()
        reference = CrosstalkSTA(
            s27_design, StaConfig(mode=AnalysisMode.ITERATIVE)
        ).run()
        assert exact.longest_delay.hex() == reference.longest_delay.hex()

    def test_screened_composes_with_degradation(self, s27_design):
        """Degraded (fault-substituted) solves stay out of the screen
        bank, so graceful degradation under the screened tier still
        yields a bound no smaller than the clean exact run."""
        clean = CrosstalkSTA(
            s27_design, StaConfig(mode=AnalysisMode.ONE_STEP)
        ).run()
        with newton_failures(rate=0.3, seed=3):
            degraded = CrosstalkSTA(
                s27_design,
                StaConfig(
                    mode=AnalysisMode.ONE_STEP,
                    solver_tier=SolverTier.SCREENED,
                ),
            ).run()
        assert degraded.degraded_arcs, "injection produced no degraded arcs"
        assert degraded.longest_delay >= clean.longest_delay - 1e-15


class TestWorkerPool:
    def test_pooled_batch_matches_scalar(self, s27_design):
        """Opt-in multi-process fan-out produces the same bound."""
        scalar = CrosstalkSTA(s27_design, StaConfig(engine=Engine.SCALAR)).run(
            AnalysisMode.ONE_STEP
        )
        sta = CrosstalkSTA(
            s27_design, StaConfig(engine=Engine.BATCH, workers=2)
        )
        pooled = sta.run(AnalysisMode.ONE_STEP)
        sta.calculator.close()
        assert abs(scalar.longest_delay - pooled.longest_delay) <= StaConfig().guard


class TestColumnarCoreEquivalence:
    """Columnar vs object core: the structure-of-arrays core is strictly
    a performance feature, so the exact tier must be ``float.hex()``-
    identical -- every endpoint arrival, every pass, every counter --
    in all five modes and in every composition (incremental on/off,
    checkpointed resume, screened tier)."""

    @pytest.fixture(scope="class")
    def core_pair(self, s27_design):
        out = {}
        for core in (Core.OBJECT, Core.COLUMNAR):
            sta = CrosstalkSTA(s27_design, StaConfig(core=core))
            out[core] = {mode: sta.run(mode) for mode in AnalysisMode}
        return out

    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_arrivals_bit_identical(self, core_pair, mode):
        obj = core_pair[Core.OBJECT][mode].arrival_map()
        col = core_pair[Core.COLUMNAR][mode].arrival_map()
        assert set(obj) == set(col)
        for key in obj:
            assert obj[key].hex() == col[key].hex(), key

    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_longest_delay_and_accounting_identical(self, core_pair, mode):
        obj = core_pair[Core.OBJECT][mode]
        col = core_pair[Core.COLUMNAR][mode]
        assert obj.longest_delay.hex() == col.longest_delay.hex()
        assert obj.critical_endpoint == col.critical_endpoint
        assert obj.critical_direction == col.critical_direction
        assert obj.arcs_processed == col.arcs_processed
        assert obj.waveform_evaluations == col.waveform_evaluations
        assert obj.coupled_arcs == col.coupled_arcs
        assert obj.passes == col.passes

    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_every_pass_bit_identical(self, core_pair, mode):
        obj = core_pair[Core.OBJECT][mode]
        col = core_pair[Core.COLUMNAR][mode]
        assert len(obj.history) == len(col.history)
        for ro, rc in zip(obj.history, col.history):
            assert ro.longest_delay.hex() == rc.longest_delay.hex()
            assert ro.waveform_evaluations == rc.waveform_evaluations
            assert ro.dirty_arcs == rc.dirty_arcs
            assert ro.reused_arcs == rc.reused_arcs

    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_provenance_ledger_identical(self, core_pair, mode):
        obj = core_pair[Core.OBJECT][mode].ledger
        col = core_pair[Core.COLUMNAR][mode].ledger
        assert obj is not None and col is not None
        assert len(obj) == len(col)
        assert obj.counts() == col.counts()

    @pytest.mark.parametrize("incremental", [True, False])
    def test_incremental_composition_identical(self, s27_design, incremental):
        results = {}
        for core in (Core.OBJECT, Core.COLUMNAR):
            sta = CrosstalkSTA(
                s27_design,
                StaConfig(
                    mode=AnalysisMode.ITERATIVE,
                    core=core,
                    incremental=incremental,
                ),
            )
            results[core] = sta.run()
        obj, col = results[Core.OBJECT], results[Core.COLUMNAR]
        assert obj.longest_delay.hex() == col.longest_delay.hex()
        for ro, rc in zip(obj.history, col.history):
            assert ro.waveform_evaluations == rc.waveform_evaluations
            assert ro.reused_arcs == rc.reused_arcs

    def test_checkpoint_cross_core_resume(self, s27_design, tmp_path):
        """Checkpoints are core-agnostic: a run interrupted under one
        core resumes under the other to the bit-identical result."""
        reference = CrosstalkSTA(
            s27_design,
            StaConfig(mode=AnalysisMode.ITERATIVE, core=Core.OBJECT),
        ).run()
        for first, second in (
            (Core.OBJECT, Core.COLUMNAR),
            (Core.COLUMNAR, Core.OBJECT),
        ):
            path = tmp_path / f"{first.value}-{second.value}.ckpt"
            config_first = StaConfig(
                mode=AnalysisMode.ITERATIVE, core=first, checkpoint=str(path)
            )
            CrosstalkSTA(s27_design, config_first).run()
            config_second = StaConfig(
                mode=AnalysisMode.ITERATIVE, core=second, checkpoint=str(path)
            )
            resumed = CrosstalkSTA(s27_design, config_second).run()
            assert resumed.longest_delay.hex() == reference.longest_delay.hex()

    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_screened_composition_identical(self, s27_design, mode):
        results = {}
        for core in (Core.OBJECT, Core.COLUMNAR):
            sta = CrosstalkSTA(
                s27_design,
                StaConfig(
                    mode=mode,
                    core=core,
                    solver_tier=SolverTier.SCREENED,
                ),
            )
            results[core] = sta.run()
        obj, col = results[Core.OBJECT], results[Core.COLUMNAR]
        assert obj.longest_delay.hex() == col.longest_delay.hex()
        assert obj.waveform_evaluations == col.waveform_evaluations
        obj_a, col_a = obj.arrival_map(), col.arrival_map()
        assert set(obj_a) == set(col_a)
        for key in obj_a:
            assert obj_a[key].hex() == col_a[key].hex(), key

    def test_warm_start_cross_core(self, s27_design):
        """The session what-if path: a columnar analyzer warm-started
        from an object analyzer's memo (and vice versa) reuses every
        unchanged arc and reports the bit-identical bound."""
        cold = {}
        for core in (Core.OBJECT, Core.COLUMNAR):
            sta = CrosstalkSTA(
                s27_design,
                StaConfig(mode=AnalysisMode.ITERATIVE, core=core),
                keep_propagators=True,
            )
            cold[core] = (sta, sta.run())
        for source, target in (
            (Core.OBJECT, Core.COLUMNAR),
            (Core.COLUMNAR, Core.OBJECT),
        ):
            warm_sta = CrosstalkSTA(
                s27_design, StaConfig(mode=AnalysisMode.ITERATIVE, core=target)
            )
            warm_sta.warm_start_from(cold[source][0])
            warm = warm_sta.run()
            assert (
                warm.longest_delay.hex()
                == cold[target][1].longest_delay.hex()
            )
            assert warm.history[0].reused_arcs > 0


class TestCompiledDesignInterning:
    """The id spaces of :class:`CompiledDesign` are deterministic: an
    identical circuit compiles to identical ids, so cached compiled
    designs, memo columns and provenance rows can be exchanged."""

    def test_recompile_is_id_stable(self, s27_design):
        from repro.core.columnar import compile_design

        a = compile_design(s27_design)
        b = compile_design(prepare_design(s27()))
        assert a.net_names == b.net_names
        assert a.net_id == b.net_id
        assert a.cell_id == b.cell_id
        assert a.n_arcs == b.n_arcs
        assert a.arc_key_index == b.arc_key_index
        for name in (
            "arc_cell",
            "arc_out_net",
            "arc_in_net",
            "arc_in_dir",
            "arc_elmore",
            "arc_is_ff",
            "level_indptr",
            "coup_indptr",
            "coup_net",
            "coup_cap",
            "net_c_fixed",
            "net_cc_total",
        ):
            assert (getattr(a, name) == getattr(b, name)).all(), name

    def test_arc_key_index_round_trip(self, s27_design):
        """Every arc id maps back to the (cell, pin, direction) key that
        interned it, and lookups of that key return the same id."""
        from repro.core.columnar import DIRECTIONS, compile_design

        cp = compile_design(s27_design)
        assert len(cp.arc_key_index) == cp.n_arcs
        for key, arc in cp.arc_key_index.items():
            cell_name, pin, direction = key
            assert cp.cells[cp.arc_cell[arc]].name == cell_name
            assert cp.arc_pin[arc] == pin
            assert DIRECTIONS[cp.arc_in_dir[arc]] == direction

    def test_level_slabs_cover_all_arcs_contiguously(self, s27_design):
        from repro.core.columnar import compile_design

        cp = compile_design(s27_design)
        assert cp.level_indptr[0] == 0
        assert cp.level_indptr[-1] == cp.n_arcs
        assert (cp.level_indptr[1:] >= cp.level_indptr[:-1]).all()
