"""Scalar vs batch engine: end-to-end equivalence.

The batch engine is strictly a performance feature: its longest-path
delay bounds must match the scalar reference within the quantization
guard band on every analysis mode (in practice they agree bitwise,
because both engines fill the same quantized arc cache with identical
numerics and share all decision logic).
"""

import pytest

from repro.circuit import s27
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode, Engine, StaConfig
from repro.flow import prepare_design


@pytest.fixture(scope="module")
def s27_design():
    return prepare_design(s27())


@pytest.fixture(scope="module")
def results(s27_design):
    out = {}
    for engine in (Engine.SCALAR, Engine.BATCH):
        sta = CrosstalkSTA(s27_design, StaConfig(engine=engine))
        out[engine] = {mode: sta.run(mode) for mode in AnalysisMode}
    return out


class TestEngineEquivalence:
    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_longest_delay_within_guard(self, results, mode):
        guard = StaConfig().guard
        scalar = results[Engine.SCALAR][mode]
        batch = results[Engine.BATCH][mode]
        assert abs(scalar.longest_delay - batch.longest_delay) <= guard
        assert scalar.critical_endpoint == batch.critical_endpoint
        assert scalar.critical_direction == batch.critical_direction

    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_every_endpoint_arrival_matches(self, results, mode):
        scalar = results[Engine.SCALAR][mode].arrival_map()
        batch = results[Engine.BATCH][mode].arrival_map()
        assert set(scalar) == set(batch)
        guard = StaConfig().guard
        for key in scalar:
            assert abs(scalar[key] - batch[key]) <= guard, key

    def test_same_evaluation_accounting(self, results):
        """Both engines walk the same arcs and make the same decisions."""
        for mode in AnalysisMode:
            scalar = results[Engine.SCALAR][mode]
            batch = results[Engine.BATCH][mode]
            assert scalar.arcs_processed == batch.arcs_processed
            assert scalar.waveform_evaluations == batch.waveform_evaluations
            assert scalar.coupled_arcs == batch.coupled_arcs
            assert scalar.passes == batch.passes

    def test_batch_engine_used_vectorized_solves(self, results):
        stats = results[Engine.BATCH][AnalysisMode.ITERATIVE].cache_stats
        assert stats["batched_solves"] > 0


class TestIncrementalEquivalence:
    """Delta-driven reuse must be invisible in the numbers: the memoized
    relative results re-anchor to exactly what a fresh solve would
    return, so every mode's bound is bit-identical (hex-equal), not
    merely within tolerance."""

    @pytest.fixture(scope="class")
    def pair(self, s27_design):
        out = {}
        for incremental in (True, False):
            sta = CrosstalkSTA(s27_design, StaConfig(incremental=incremental))
            out[incremental] = {mode: sta.run(mode) for mode in AnalysisMode}
        return out

    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_longest_delay_bit_identical(self, pair, mode):
        inc, full = pair[True][mode], pair[False][mode]
        assert inc.longest_delay.hex() == full.longest_delay.hex()
        assert inc.critical_endpoint == full.critical_endpoint
        assert inc.critical_direction == full.critical_direction

    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_every_pass_bit_identical(self, pair, mode):
        inc, full = pair[True][mode], pair[False][mode]
        assert len(inc.history) == len(full.history)
        for ri, rf in zip(inc.history, full.history):
            assert ri.longest_delay.hex() == rf.longest_delay.hex()

    @pytest.mark.parametrize("mode", list(AnalysisMode))
    def test_every_endpoint_arrival_bit_identical(self, pair, mode):
        inc = pair[True][mode].arrival_map()
        full = pair[False][mode].arrival_map()
        assert set(inc) == set(full)
        for key in inc:
            assert inc[key].hex() == full[key].hex(), key

    def test_iterative_later_passes_reuse(self, pair):
        """Once windows and ramp shapes stabilize, later passes skip the
        waveform work entirely on this small design."""
        history = pair[True][AnalysisMode.ITERATIVE].history
        assert len(history) >= 2
        assert history[1].waveform_evaluations == 0
        assert history[1].reused_arcs > 0
        assert history[1].dirty_arcs == 0
        # The non-incremental run pays the full pass every time.
        full_history = pair[False][AnalysisMode.ITERATIVE].history
        assert full_history[1].waveform_evaluations > 0
        assert full_history[1].reused_arcs == 0


class TestWorkerPool:
    def test_pooled_batch_matches_scalar(self, s27_design):
        """Opt-in multi-process fan-out produces the same bound."""
        scalar = CrosstalkSTA(s27_design, StaConfig(engine=Engine.SCALAR)).run(
            AnalysisMode.ONE_STEP
        )
        sta = CrosstalkSTA(
            s27_design, StaConfig(engine=Engine.BATCH, workers=2)
        )
        pooled = sta.run(AnalysisMode.ONE_STEP)
        sta.calculator.close()
        assert abs(scalar.longest_delay - pooled.longest_delay) <= StaConfig().guard
