"""Tests for the crosstalk-repair flow (spacing-driven re-route)."""

import pytest

from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode
from repro.core.netreport import rank_crosstalk_nets
from repro.flow import repair_crosstalk, respace_nets
from repro.layout.routing import route


@pytest.fixture(scope="module")
def baseline(small_design):
    result = CrosstalkSTA(small_design).run(AnalysisMode.ITERATIVE)
    return small_design, result


@pytest.fixture(scope="module")
def outcome(baseline):
    design, result = baseline
    return repair_crosstalk(design, result, top=6)


class TestRespace:
    def test_guarded_nets_lose_coupling(self, baseline):
        design, result = baseline
        victims = [e.net for e in rank_crosstalk_nets(design, result.final_pass, top=4)]
        repaired = respace_nets(design, victims)
        for net in victims:
            assert (
                repaired.loads[net].c_coupling_total
                < design.loads[net].c_coupling_total * 0.5
            )

    def test_guarded_routing_still_overlap_free(self, baseline):
        design, result = baseline
        victims = [e.net for e in rank_crosstalk_nets(design, result.final_pass, top=4)]
        routing = route(
            design.circuit,
            design.placement,
            design.technology,
            guard_nets={net: 1 for net in victims},
        )
        by_track = {}
        for seg in routing.all_segments():
            by_track.setdefault((seg.layer, seg.track), []).append(seg)
        for segs in by_track.values():
            segs.sort(key=lambda s: s.lo)
            for a, b in zip(segs, segs[1:]):
                assert a.hi <= b.lo + 1e-9

    def test_no_neighbour_on_adjacent_tracks(self, baseline):
        """The shield guarantee: nothing runs directly adjacent to a
        guarded net's segments over their spans."""
        design, result = baseline
        victims = [e.net for e in rank_crosstalk_nets(design, result.final_pass, top=3)]
        routing = route(
            design.circuit,
            design.placement,
            design.technology,
            guard_nets={net: 1 for net in victims},
        )
        by_track = {}
        for seg in routing.all_segments():
            by_track.setdefault((seg.layer, seg.track), []).append(seg)
        for victim in victims:
            for seg in routing.routes[victim].segments():
                for neighbour_track in (seg.track - 1, seg.track + 1):
                    for other in by_track.get((seg.layer, neighbour_track), []):
                        if other.net == victim:
                            continue
                        assert seg.overlap(other) <= 1e-9, (victim, other.net)

    def test_placement_unchanged(self, baseline, outcome):
        design, _ = baseline
        assert outcome.design.placement is design.placement


class TestRepairOutcome:
    def test_delay_does_not_regress_catastrophically(self, baseline, outcome):
        _, result = baseline
        # Repair may shuffle other nets around, but the analyzed bound
        # should not blow up; typically it improves.
        assert outcome.after_delay <= result.longest_delay * 1.05

    def test_coupling_reduced_on_victims(self, outcome):
        for net in outcome.repaired_nets:
            assert outcome.after_coupling[net] <= outcome.before_coupling[net]

    def test_summary_renders(self, outcome):
        text = outcome.summary()
        assert "repaired" in text
        assert "fF" in text

    def test_improvement_field(self, outcome):
        assert outcome.improvement == pytest.approx(
            outcome.before_delay - outcome.after_delay
        )


class TestRepairLoopEndToEnd:
    """The full analyze -> rank -> fix -> re-analyze loop, over rounds."""

    def test_rounds_never_regress_and_shed_coupling(self, small_design):
        current = small_design
        for _ in range(2):
            outcome = repair_crosstalk(current, top=4)
            # A repair round must not make the bound worse.
            assert outcome.after_delay <= outcome.before_delay
            for net in outcome.repaired_nets:
                before_neighbours = set(current.loads[net].couplings)
                after_neighbours = set(outcome.design.loads[net].couplings)
                # Shielding sheds the majority of the net's former
                # aggressors (reroute may introduce a few new ones)...
                assert len(before_neighbours & after_neighbours) <= max(
                    1, len(before_neighbours) // 2
                )
                # ...and cuts its total coupling load sharply.
                assert (
                    outcome.design.loads[net].c_coupling_total
                    < current.loads[net].c_coupling_total * 0.5
                )
            current = outcome.design
            if outcome.improvement <= 0:
                break

    def test_after_delay_matches_independent_analysis(self, outcome):
        """The outcome's claimed after_delay is exactly what a fresh
        analyzer reports on the repaired design."""
        fresh = CrosstalkSTA(outcome.design).run(AnalysisMode.ITERATIVE)
        assert float(fresh.longest_delay).hex() == float(outcome.after_delay).hex()
