"""Critical-path explain engine: bit-exact telescoping, provenance
annotations, blame table, and the provenance ledger itself."""

from __future__ import annotations

import pytest

from repro.core import (
    AnalysisMode,
    CrosstalkSTA,
    StaConfig,
    explain_result,
    format_explain,
    validate_explain,
)
from repro.core.explain import EXPLAIN_SCHEMA, _exact_increment
from repro.core.modes import SolverTier
from repro.core.provenance import ORIGINS, ProvenanceLedger
from repro.errors import InputError


@pytest.fixture(scope="module", params=list(AnalysisMode))
def mode_result(request, s27_design):
    mode = request.param
    sta = CrosstalkSTA(s27_design, StaConfig(mode=mode))
    return s27_design, sta.run()


class TestExactIncrement:
    def test_identity(self):
        assert _exact_increment(0.0, 0.25) == 0.25

    def test_zero(self):
        assert _exact_increment(1.5e-9, 1.5e-9) == 0.0

    def test_bitwise_exact_on_awkward_floats(self):
        base = 0.1 + 0.2  # 0.30000000000000004
        target = 0.7
        c = _exact_increment(base, target)
        assert base + c == target

    def test_negative_increment(self):
        # A stage can land slightly *earlier* than its input crossing
        # (fast gate, slow ramp); nearby magnitudes subtract exactly.
        base, target = 5.0e-10, 4.9e-10
        c = _exact_increment(base, target)
        assert c < 0.0
        assert base + c == target

    def test_chain_telescopes(self):
        targets = [1e-10, 2.7e-10, 2.70000001e-10, 5.5e-10]
        running = 0.0
        for t in targets:
            running = running + _exact_increment(running, t)
            assert running == t


class TestExplainAllModes:
    def test_validates_bit_exact(self, mode_result):
        design, result = mode_result
        payload = explain_result(design.circuit, result, k=3, top=5)
        validate_explain(payload)  # raises on any violation
        assert payload["schema"] == EXPLAIN_SCHEMA

    def test_worst_path_sums_to_longest_delay(self, mode_result):
        design, result = mode_result
        payload = explain_result(design.circuit, result)
        worst = payload["paths"][0]
        running = 0.0
        for stage in worst["stages"]:
            running = running + float.fromhex(stage["contribution_hex"])
        assert running == result.longest_delay  # bitwise
        assert worst["arrival_hex"] == result.longest_delay.hex()

    def test_every_stage_has_populated_provenance(self, mode_result):
        design, result = mode_result
        payload = explain_result(design.circuit, result, k=3)
        for path in payload["paths"]:
            for stage in path["stages"]:
                prov = stage["provenance"]
                assert prov["tier"]
                assert prov["origin"] in ORIGINS or prov["origin"] == "wire"
                assert prov["origin"] != "unknown"
                assert prov["pass_index"] >= 0

    def test_last_stage_is_wire_to_endpoint(self, mode_result):
        design, result = mode_result
        payload = explain_result(design.circuit, result)
        worst = payload["paths"][0]
        last = worst["stages"][-1]
        assert last["kind"] == "wire"
        assert last["net"] == result.critical_endpoint
        assert last["provenance"]["tier"] == "elmore"
        assert last["provenance"]["origin"] == "wire"
        assert all(s["kind"] == "gate" for s in worst["stages"][:-1])

    def test_format_renders(self, mode_result):
        design, result = mode_result
        payload = explain_result(design.circuit, result, k=2, top=3)
        text = format_explain(payload)
        assert result.critical_endpoint in text
        assert "origin" in text


class TestExplainSemantics:
    def test_windowed_modes_have_coupling_deltas(self, s27_design):
        sta = CrosstalkSTA(s27_design, StaConfig(mode=AnalysisMode.ONE_STEP))
        result = sta.run()
        payload = explain_result(s27_design.circuit, result, top=10)
        assert payload["blame"], "s27 one_step should expose coupling shifts"
        deltas = [entry["coupling_delta"] for entry in payload["blame"]]
        assert deltas == sorted(deltas, reverse=True)
        assert all(d > 0.0 for d in deltas)
        for entry in payload["blame"]:
            assert entry["aggressors_active"] >= 1
            assert float.fromhex(entry["coupling_delta_hex"]) == entry[
                "coupling_delta"
            ]

    def test_fixed_modes_have_empty_blame(self, s27_design):
        sta = CrosstalkSTA(s27_design, StaConfig(mode=AnalysisMode.WORST_CASE))
        result = sta.run()
        payload = explain_result(s27_design.circuit, result)
        assert payload["blame"] == []

    def test_coupling_kind_matches_mode(self, s27_design):
        for mode, kind in [
            (AnalysisMode.BEST_CASE, "grounded"),
            (AnalysisMode.STATIC_DOUBLED, "doubled"),
            (AnalysisMode.WORST_CASE, "all_active"),
        ]:
            result = CrosstalkSTA(s27_design, StaConfig(mode=mode)).run()
            payload = explain_result(s27_design.circuit, result)
            kinds = {
                s["provenance"]["coupling"]
                for s in payload["paths"][0]["stages"]
                if s["kind"] == "gate"
            }
            assert kinds <= {kind, "none"}

    def test_iterative_memo_origins_surface(self, s27_design):
        result = CrosstalkSTA(
            s27_design, StaConfig(mode=AnalysisMode.ITERATIVE)
        ).run()
        assert result.passes >= 2
        counts = result.ledger.counts()["origin"]
        assert counts.get("memo", 0) > 0

    def test_screened_tier_surfaces_in_provenance(self, s27_design):
        config = StaConfig(
            mode=AnalysisMode.ONE_STEP,
            solver_tier=SolverTier.SCREENED,
            screen_tolerance=1e-9,
        )
        result = CrosstalkSTA(s27_design, config).run()
        tiers = set(result.ledger.counts()["tier"])
        assert tiers & {"surface", "analytical"}

    def test_provenance_off_raises_input_error(self, s27_design):
        config = StaConfig(mode=AnalysisMode.ONE_STEP, provenance=False)
        result = CrosstalkSTA(s27_design, config).run()
        assert result.ledger is None
        with pytest.raises(InputError):
            explain_result(s27_design.circuit, result)

    def test_validate_rejects_tampered_payload(self, s27_design):
        result = CrosstalkSTA(s27_design, StaConfig(mode=AnalysisMode.ONE_STEP)).run()
        payload = explain_result(s27_design.circuit, result)
        stage = payload["paths"][0]["stages"][0]
        stage["contribution_hex"] = (
            float.fromhex(stage["contribution_hex"]) + 1e-12
        ).hex()
        with pytest.raises(ValueError):
            validate_explain(payload)

    def test_validate_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            validate_explain({"schema": "something/else"})


class TestProvenanceOffHexIdentity:
    def test_delays_identical_with_ledger_off(self, s27_design):
        for mode in AnalysisMode:
            on = CrosstalkSTA(s27_design, StaConfig(mode=mode)).run()
            off = CrosstalkSTA(
                s27_design, StaConfig(mode=mode, provenance=False)
            ).run()
            assert on.longest_delay.hex() == off.longest_delay.hex()
            assert on.arrival_map() == off.arrival_map()
            assert off.final_pass.provenance_rows == 0
            assert not off.final_pass.state.arc_prov


class TestLedger:
    def test_ledger_rows_cover_processed_arcs(self, s27_design):
        result = CrosstalkSTA(s27_design, StaConfig(mode=AnalysisMode.ONE_STEP)).run()
        state = result.final_pass.state
        assert state.arc_prov, "winning arcs should be indexed"
        for row_id in state.arc_prov.values():
            row = result.ledger.row(row_id)
            assert row["origin"] in ORIGINS
            assert row["pass_index"] >= 1

    def test_payload_roundtrip(self, s27_design):
        result = CrosstalkSTA(s27_design, StaConfig(mode=AnalysisMode.ONE_STEP)).run()
        ledger = result.ledger
        clone = ProvenanceLedger.from_payload(ledger.to_payload())
        assert len(clone) == len(ledger)
        assert list(clone.rows()) == list(ledger.rows())
        assert clone.counts() == ledger.counts()

    def test_payload_rejects_ragged_columns(self):
        ledger = ProvenanceLedger()
        ledger.append(
            tier="newton",
            origin="fresh",
            escalation=None,
            signature="sig",
            coupling="none",
            aggressors_total=0,
            aggressors_active=0,
            pass_index=1,
            coupling_delta=None,
        )
        payload = ledger.to_payload()
        payload["tier"] = []
        with pytest.raises(ValueError):
            ProvenanceLedger.from_payload(payload)

    def test_counts_histograms(self):
        ledger = ProvenanceLedger()
        for origin in ("fresh", "fresh", "dedup"):
            ledger.append(
                tier="newton",
                origin=origin,
                escalation=None,
                signature="s",
                coupling="overlap",
                aggressors_total=2,
                aggressors_active=1,
                pass_index=1,
                coupling_delta=1e-12,
            )
        counts = ledger.counts()
        assert counts["origin"] == {"dedup": 1, "fresh": 2}
        assert counts["coupling"] == {"overlap": 3}
