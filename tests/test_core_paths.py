"""Tests for critical-path extraction."""

import pytest

from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode
from repro.core.paths import endpoint_net_name, extract_critical_path


@pytest.fixture(scope="module")
def sta_and_result(small_design):
    sta = CrosstalkSTA(small_design)
    result = sta.run(AnalysisMode.ITERATIVE)
    return sta, result


class TestBacktrace:
    def test_path_nonempty(self, sta_and_result):
        sta, result = sta_and_result
        path = sta.critical_path(result)
        assert len(path) >= 1

    def test_steps_connect(self, small_design, sta_and_result):
        """Each step's input net is the previous step's output net."""
        sta, result = sta_and_result
        path = sta.critical_path(result)
        for prev, step in zip(path.steps, path.steps[1:]):
            assert step.in_net == prev.out_net

    def test_directions_alternate_through_inverting_gates(self, small_design, sta_and_result):
        sta, result = sta_and_result
        path = sta.critical_path(result)
        circuit = small_design.circuit
        for step in path.steps:
            cell = circuit.cells[step.cell]
            if not cell.is_sequential:
                assert step.out_direction != step.in_direction

    def test_path_delay_matches_result(self, small_design, sta_and_result):
        sta, result = sta_and_result
        path = sta.critical_path(result)
        # The last step's event is at the driver; the endpoint arrival adds
        # wire delay, so path delay <= longest <= path delay + a wire hop.
        assert path.delay <= result.longest_delay + 1e-12
        assert result.longest_delay <= path.delay + 1e-9

    def test_arrival_times_increase_along_path(self, sta_and_result):
        sta, result = sta_and_result
        path = sta.critical_path(result)
        times = [step.event.t_cross for step in path.steps]
        for earlier, later in zip(times, times[1:]):
            assert later > earlier

    def test_path_ends_at_critical_endpoint_net(self, small_design, sta_and_result):
        sta, result = sta_and_result
        path = sta.critical_path(result)
        net = endpoint_net_name(small_design.circuit, result.critical_endpoint)
        assert path.steps[-1].out_net == net

    def test_path_begins_at_source_or_ff(self, small_design, sta_and_result):
        sta, result = sta_and_result
        path = sta.critical_path(result)
        first = path.steps[0]
        circuit = small_design.circuit
        cell = circuit.cells[first.cell]
        if cell.is_sequential:
            return  # launched by a flip-flop: valid origin
        in_net = circuit.nets[first.in_net]
        driver_cell = in_net.driver_cell()
        assert driver_cell is None or driver_cell.is_sequential

    def test_net_sequence_consistent(self, sta_and_result):
        sta, result = sta_and_result
        path = sta.critical_path(result)
        nets = path.net_sequence()
        assert len(nets) == len(path) + 1
        assert nets[0] == path.source_net

    def test_unknown_endpoint_rejected(self, small_design, sta_and_result):
        _, result = sta_and_result
        with pytest.raises(KeyError):
            endpoint_net_name(small_design.circuit, "no/such/pin")
