"""Shared fixtures.

Expensive objects (prepared designs, delay calculators) are session-scoped;
tests must not mutate them.
"""

from __future__ import annotations

import pytest

from repro.circuit import default_library, s27
from repro.devices.params import default_process
from repro.flow import prepare_design
from repro.waveform import GateDelayCalculator


@pytest.fixture(scope="session")
def process():
    return default_process()


@pytest.fixture(scope="session")
def library():
    return default_library()


@pytest.fixture(scope="session")
def calculator():
    return GateDelayCalculator()


@pytest.fixture(scope="session")
def s27_circuit():
    return s27()


@pytest.fixture(scope="session")
def s27_design(s27_circuit):
    return prepare_design(s27_circuit)


@pytest.fixture(scope="session")
def small_design():
    """A generated ~120-cell design with real coupling, shared read-only."""
    from repro.circuit.generators import GeneratorSpec, generate_circuit

    spec = GeneratorSpec(
        name="tiny",
        seed=42,
        n_inputs=4,
        n_outputs=4,
        n_ff=8,
        n_gates=90,
        depth=7,
    )
    return prepare_design(generate_circuit(spec))
