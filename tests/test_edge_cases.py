"""Edge-case tests across modules: empty inputs, degenerate circuits,
boundary parameters."""

import pytest

from repro.circuit.netlist import Circuit
from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode
from repro.core.netreport import format_net_report
from repro.flow import prepare_design
from repro.spice.netlist import SimCircuit
from repro.spice.writer import write_spice


class TestDegenerateCircuits:
    def test_single_inverter_circuit(self):
        circuit = Circuit("one")
        circuit.add_input("a")
        circuit.add_cell("INV_X1", "g", {"A": "a", "Y": "y"})
        circuit.add_output("o", net_name="y")
        design = prepare_design(circuit)
        result = CrosstalkSTA(design).run(AnalysisMode.ITERATIVE)
        assert result.longest_delay > 0
        assert result.critical_endpoint == "o"

    def test_combinational_only_circuit(self):
        """No flip-flops, no clock: PI-to-PO paths only."""
        circuit = Circuit("comb")
        for name in ("a", "b"):
            circuit.add_input(name)
        circuit.add_cell("NAND2_X1", "g1", {"A": "a", "B": "b", "Y": "n1"})
        circuit.add_cell("INV_X1", "g2", {"A": "n1", "Y": "n2"})
        circuit.add_output("o", net_name="n2")
        design = prepare_design(circuit)
        results = CrosstalkSTA(design).run_all_modes()
        from repro.core.report import check_mode_ordering

        assert not check_mode_ordering(results)

    def test_ff_to_ff_direct(self):
        """Shortest possible sequential path: Q wired straight to D."""
        circuit = Circuit("q2d")
        circuit.add_clock()
        circuit.add_input("d")
        circuit.add_cell("DFF_X1", "ff1", {"D": "d", "CLK": "CLK", "Q": "q1"})
        circuit.add_cell("DFF_X1", "ff2", {"D": "q1", "CLK": "CLK", "Q": "q2"})
        circuit.add_output("o", net_name="q2")
        design = prepare_design(circuit)
        result = CrosstalkSTA(design).run(AnalysisMode.BEST_CASE)
        assert result.arrival("ff2/D", "rise") > 0

    def test_fanout_free_net_still_analyzed(self):
        circuit = Circuit("dangle")
        circuit.add_input("a")
        circuit.add_cell("INV_X1", "g1", {"A": "a", "Y": "used"})
        circuit.add_cell("INV_X1", "g2", {"A": "a", "Y": "unused"})
        circuit.add_output("o", net_name="used")
        design = prepare_design(circuit)
        result = CrosstalkSTA(design).run(AnalysisMode.WORST_CASE)
        # The dangling net gets events (it could be someone's aggressor).
        assert result.final_pass.state.event("unused", "rise") is not None


class TestEmptyInputs:
    def test_empty_net_report(self):
        text = format_net_report([])
        assert "C_c" in text  # header only

    def test_empty_spice_deck(self):
        deck = write_spice(SimCircuit("empty"))
        assert ".END" in deck

    def test_run_all_modes_on_tiny_design(self):
        circuit = Circuit("tiny")
        circuit.add_input("a")
        circuit.add_cell("INV_X1", "g", {"A": "a", "Y": "y"})
        circuit.add_output("o", net_name="y")
        design = prepare_design(circuit)
        results = CrosstalkSTA(design).run_all_modes()
        assert len(results) == 5


class TestBoundaryParameters:
    def test_zero_guard_band(self, s27_design):
        from repro.core.modes import StaConfig

        config = StaConfig(mode=AnalysisMode.ONE_STEP, guard=0.0)
        result = CrosstalkSTA(s27_design, config).run()
        assert result.longest_delay > 0

    def test_single_iteration_budget(self, s27_design):
        from repro.core.modes import StaConfig

        config = StaConfig(mode=AnalysisMode.ITERATIVE, max_iterations=1)
        result = CrosstalkSTA(s27_design, config).run()
        assert result.passes == 1

    def test_very_slow_input_transition(self, s27_design):
        from repro.core.modes import StaConfig

        config = StaConfig(mode=AnalysisMode.BEST_CASE, input_transition=2e-9)
        slow = CrosstalkSTA(s27_design, config).run()
        fast = CrosstalkSTA(s27_design).run(AnalysisMode.BEST_CASE)
        assert slow.longest_delay > fast.longest_delay
