"""Tests for the sharded service fleet: placement ring, handoff
payloads, session restore, client backoff, signal shutdown, and
chaos/failover equivalence."""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import CheckpointError, InputError
from repro.service import (
    ERR_BUSY,
    ERR_INTERNAL,
    FLEET_PROTOCOL_VERSION,
    FleetOptions,
    FleetRuntime,
    InProcessClient,
    ServiceCallError,
    ServiceClient,
    ServiceTransportError,
    SessionManager,
    TimingService,
    backoff_delay,
    decode_handoff,
    encode_handoff,
    loads_handoff,
)
from repro.service.client import _CallSurface
from repro.service.fleet import HashRing, placement_key
from repro.testing.faults import corrupt_handoff, drop_links, hang_shard

ONE_STEP = {"mode": "one_step"}
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _victim_net(client, sid: str) -> str:
    return client.net_report(sid, top=1)["nets"][0]["net"]


def _respace(net: str) -> dict:
    return {"action": "respace", "nets": [net], "guard_tracks": 1}


class TestHashRing:
    def test_placement_is_deterministic(self):
        a, b = HashRing(), HashRing()
        for index in range(4):
            a.add(index)
            b.add(index)
        keys = [placement_key("s27", 0.05 + i * 0.01) for i in range(20)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_dead_shard_moves_only_its_keys(self):
        ring = HashRing()
        for index in range(4):
            ring.add(index)
        keys = [placement_key("s27", 0.05 + i * 0.003) for i in range(50)]
        before = {k: ring.owner(k) for k in keys}
        dead = before[keys[0]]
        after = {k: ring.owner(k, alive={0, 1, 2, 3} - {dead}) for k in keys}
        for key in keys:
            if before[key] != dead:
                assert after[key] == before[key]  # unaffected keys stay put
            else:
                assert after[key] != dead

    def test_no_alive_shard_returns_none(self):
        ring = HashRing()
        ring.add(0)
        assert ring.owner("k", alive=set()) is None
        assert HashRing().owner("k") is None

    def test_scales_spread_across_shards(self):
        ring = HashRing()
        for index in range(4):
            ring.add(index)
        owners = {
            ring.owner(placement_key("s27", 0.05 + i * 0.01)) for i in range(16)
        }
        assert len(owners) >= 2


class TestHandoffPayloads:
    def test_roundtrip(self):
        payload = encode_handoff(
            "abc123", "s27", 0.05, {"mode": "one_step"},
            [{"action": "respace", "nets": ["G15"], "guard_tracks": 1}],
        )
        body = decode_handoff(payload)
        assert body["session"] == "abc123"
        assert body["spec"] == "s27"
        assert body["scale"] == 0.05  # bit-exact through float.hex
        assert body["edits"][0]["nets"] == ["G15"]

    def test_truncated_payload_raises_taxonomy_error(self):
        payload = encode_handoff("abc", "s27", 0.05, None, [])
        for damage in (
            {},  # everything gone
            {"body": payload["body"]},  # checksum torn off
            {"checksum": payload["checksum"]},  # body torn off
        ):
            with pytest.raises(CheckpointError):
                decode_handoff(damage)

    def test_truncated_body_raises(self):
        payload = encode_handoff("abc", "s27", 0.05, None, [])
        body = dict(payload["body"])
        del body["edits"]
        # Even with a recomputed-looking checksum, missing keys reject.
        with pytest.raises(CheckpointError):
            decode_handoff({"body": body, "checksum": payload["checksum"]})

    def test_checksum_corruption_raises(self):
        payload = encode_handoff("abc", "s27", 0.05, None, [])
        bad = dict(payload)
        head = bad["checksum"][0]
        bad["checksum"] = ("0" if head != "0" else "1") + bad["checksum"][1:]
        with pytest.raises(CheckpointError):
            decode_handoff(bad)

    def test_body_tamper_raises(self):
        payload = encode_handoff("abc", "s27", 0.05, None, [])
        bad = json.loads(json.dumps(payload))
        bad["body"]["spec"] = "s1196"  # checksum no longer matches
        with pytest.raises(CheckpointError):
            decode_handoff(bad)

    def test_torn_json_text_raises(self):
        payload = encode_handoff("abc", "s27", 0.05, None, [])
        text = json.dumps(payload)
        with pytest.raises(CheckpointError):
            loads_handoff(text[: len(text) // 2])

    def test_unknown_format_raises(self):
        payload = encode_handoff("abc", "s27", 0.05, None, [])
        body = dict(payload["body"], format=99)
        from repro.service.handoff import _body_checksum

        with pytest.raises(CheckpointError):
            decode_handoff({"body": body, "checksum": _body_checksum(body)})


class TestSessionRestore:
    def test_restore_replays_edits_bit_identical(self):
        donor = SessionManager(max_sessions=4)
        session = donor.open("s27", scale=0.05, config=ONE_STEP)
        result = session.analyze()
        victim = next(
            net for net, load in session.design.loads.items() if load.couplings
        )
        session.whatif(_respace(victim), commit=True)
        committed = session.analyze()
        payload = session.handoff()

        recipient = SessionManager(max_sessions=4)
        restored = recipient.restore(decode_handoff(payload))
        assert restored.session_id == session.session_id
        assert restored.committed_edits == session.committed_edits
        assert (
            float(restored.analyze().longest_delay).hex()
            == float(committed.longest_delay).hex()
        )
        assert float(committed.longest_delay).hex() != float(
            result.longest_delay
        ).hex()

    def test_corrupt_import_leaves_live_session_usable(self):
        service = TimingService(workers=2, queue_limit=4)
        try:
            with InProcessClient(service) as client:
                sid = client.open_session("s27", config=ONE_STEP)["session"]
                baseline = client.analyze(sid)["longest_delay_hex"]
                payload = client.export_session(sid)
                for damage in ("truncate", "checksum", "torn"):
                    bad = json.loads(json.dumps(payload))
                    if damage == "truncate":
                        del bad["body"]["edits"]
                    elif damage == "checksum":
                        head = bad["checksum"][0]
                        bad["checksum"] = (
                            ("0" if head != "0" else "1") + bad["checksum"][1:]
                        )
                    else:
                        bad = {"body": bad["body"]}
                    with pytest.raises(ServiceCallError) as exc:
                        client.import_session(bad)
                    assert exc.value.code == ERR_INTERNAL
                    assert exc.value.data["exception"] == "CheckpointError"
                    # Never half-restored: the live session still answers,
                    # and the registry did not change shape.
                    assert client.list_sessions() == [sid]
                    assert client.analyze(sid)["longest_delay_hex"] == baseline
        finally:
            service.close()

    def test_failed_restore_never_replaces_live_session(self):
        manager = SessionManager(max_sessions=4)
        session = manager.open("s27", scale=0.05, config=ONE_STEP)
        baseline = session.analyze().longest_delay
        payload = encode_handoff(
            session.session_id, "s27", 0.05, ONE_STEP,
            [{"action": "respace", "nets": ["NO_SUCH_NET"]}],
        )
        with pytest.raises(InputError):
            manager.restore(decode_handoff(payload))
        assert manager.get(session.session_id) is session
        assert session.analyze().longest_delay == baseline

    def test_valid_import_roundtrip_over_service(self):
        service = TimingService(workers=2, queue_limit=4)
        try:
            with InProcessClient(service) as client:
                sid = client.open_session("s27", config=ONE_STEP)["session"]
                baseline = client.analyze(sid)["longest_delay_hex"]
                payload = client.export_session(sid)
                client.close_session(sid)
                info = client.import_session(payload)
                assert info["session"] == sid
                assert info["restored_edits"] == 0
                assert client.analyze(sid)["longest_delay_hex"] == baseline
        finally:
            service.close()


class _ScriptedClient(_CallSurface):
    """Raises a scripted sequence of exceptions, then succeeds."""

    def __init__(self, failures, reconnectable=True):
        self.failures = list(failures)
        self.reconnectable = reconnectable
        self.calls = 0
        self.reconnects = 0

    def call(self, method, params=None):
        self.calls += 1
        if self.failures:
            raise self.failures.pop(0)
        return {"ok": True}

    def _reconnect(self):
        self.reconnects += 1
        return self.reconnectable


def _busy(retry_after: float) -> ServiceCallError:
    return ServiceCallError(ERR_BUSY, "busy", "full", {"retry_after": retry_after})


class TestClientBackoff:
    def test_backoff_delay_honours_floor_and_cap(self):
        rng = random.Random(7)
        for attempt in range(12):
            delay = backoff_delay(attempt, floor=0.4, base=0.1, cap=2.0, rng=rng)
            assert 0.4 <= delay <= 2.0

    def test_backoff_delay_ceiling_grows_exponentially(self):
        # With a maximal draw the ceiling doubles per attempt until cap.
        class MaxRng:
            def uniform(self, lo, hi):
                return hi

        rng = MaxRng()
        delays = [
            backoff_delay(a, base=0.1, cap=100.0, rng=rng) for a in range(5)
        ]
        assert delays == [0.1, 0.2, 0.4, 0.8, 1.6]
        assert backoff_delay(30, base=0.1, cap=5.0, rng=rng) == 5.0

    def test_retry_sleeps_at_least_retry_after(self, monkeypatch):
        sleeps: list[float] = []
        monkeypatch.setattr(time, "sleep", sleeps.append)
        client = _ScriptedClient([_busy(0.7), _busy(0.7), _busy(0.7)])
        result = client.call_with_retry("analyze", rng=random.Random(3))
        assert result == {"ok": True}
        assert len(sleeps) == 3
        assert all(delay >= 0.7 for delay in sleeps)

    def test_retry_gives_up_after_max_retries(self, monkeypatch):
        monkeypatch.setattr(time, "sleep", lambda _s: None)
        client = _ScriptedClient([_busy(0.1)] * 10)
        with pytest.raises(ServiceCallError) as exc:
            client.call_with_retry("analyze", max_retries=2, rng=random.Random(0))
        assert exc.value.code == ERR_BUSY
        assert client.calls == 3

    def test_retry_respects_max_wait(self, monkeypatch):
        monkeypatch.setattr(time, "sleep", lambda _s: None)
        client = _ScriptedClient([_busy(10.0)] * 10)
        with pytest.raises(ServiceCallError):
            client.call_with_retry("analyze", max_wait=15.0, rng=random.Random(0))
        assert client.calls <= 3  # 10s floor per retry burns 15s fast

    def test_transport_failure_reconnects_and_retries(self, monkeypatch):
        monkeypatch.setattr(time, "sleep", lambda _s: None)
        client = _ScriptedClient([ServiceTransportError("reset")])
        assert client.call_with_retry("ping", rng=random.Random(0)) == {"ok": True}
        assert client.reconnects == 1

    def test_transport_failure_without_reconnect_raises(self, monkeypatch):
        monkeypatch.setattr(time, "sleep", lambda _s: None)
        client = _ScriptedClient(
            [ServiceTransportError("reset")], reconnectable=False
        )
        with pytest.raises(ServiceTransportError):
            client.call_with_retry("ping", rng=random.Random(0))

    def test_non_busy_errors_are_not_retried(self, monkeypatch):
        monkeypatch.setattr(time, "sleep", lambda _s: None)
        client = _ScriptedClient(
            [ServiceCallError(ERR_INTERNAL, "internal_fault", "boom")]
        )
        with pytest.raises(ServiceCallError):
            client.call_with_retry("analyze")
        assert client.calls == 1


def _spawn_server(*extra_args: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


class TestSignalShutdown:
    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_signal_takes_drain_path_and_exits_zero(self, signum):
        process = _spawn_server()
        try:
            ready = process.stdout.readline()
            assert "listening on" in ready
            process.send_signal(signum)
            process.wait(30)
            rest = process.stdout.read()
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(10)
        # Exit code 0: the signal took the same drain-then-close path a
        # clean shutdown RPC takes, not a traceback death.
        assert process.returncode == 0
        assert "server stopped" in rest


def _fleet(tmp_path, shards=2, supervise=False, **kwargs):
    options = FleetOptions(
        shards=shards,
        workers=2,
        queue_limit=8,
        checkpoint_dir=str(tmp_path / "ckpt"),
    )
    return FleetRuntime(
        options,
        access_log=str(tmp_path / "router_access.log"),
        supervise=supervise,
        **kwargs,
    )


def _events(runtime) -> list[dict]:
    with open(runtime.access_log) as handle:
        return [
            json.loads(line) for line in handle if '"event"' in line
        ]


class TestFleetBasics:
    def test_ping_stats_and_unknown_session(self, tmp_path):
        with _fleet(tmp_path, shards=2).start() as runtime:
            with ServiceClient(runtime.address) as client:
                pong = client.ping()
                assert pong["protocol"] == FLEET_PROTOCOL_VERSION
                assert pong["alive"] == [0, 1]
                stats = client.stats()
                assert stats["fleet"]["shards"] == 2
                assert len(stats["shards"]) == 2
                assert all(row["alive"] for row in stats["shards"])
                assert {"queue_depth", "capacity", "in_flight"} <= set(
                    stats["shards"][0]
                )
                with pytest.raises(ServiceCallError) as exc:
                    client.analyze("nope")
                assert exc.value.kind == "unknown_session"

    def test_sessions_route_and_answer(self, tmp_path):
        with _fleet(tmp_path, shards=2).start() as runtime:
            with ServiceClient(runtime.address) as client:
                opened = client.open_session("s27", config=ONE_STEP)
                assert opened["fleet_protocol"] == FLEET_PROTOCOL_VERSION
                assert opened["shard"] in (0, 1)
                sid = opened["session"]
                assert client.analyze(sid)["longest_delay"] > 0
                assert sid in client.list_sessions()
                assert client.close_session(sid)["session"] == sid
                assert client.list_sessions() == []


class TestFleetFailover:
    def test_killed_shard_fails_over_bit_identical(self, tmp_path):
        # Reference: the identical query stream on one undisturbed server.
        service = TimingService(workers=2, queue_limit=8)
        with InProcessClient(service) as reference:
            ref_sid = reference.open_session("s27", config=ONE_STEP)["session"]
            victim = _victim_net(reference, ref_sid)
            reference.whatif(ref_sid, _respace(victim), commit=True)
            ref_whatif = reference.whatif(
                ref_sid, {"action": "upsize", "nets": [victim], "steps": 1}
            )
        service.close()

        with _fleet(tmp_path, shards=2, supervise=False).start() as runtime:
            with ServiceClient(runtime.address) as client:
                opened = client.open_session("s27", config=ONE_STEP)
                sid, shard = opened["session"], opened["shard"]
                client.whatif(sid, _respace(victim), commit=True)
                runtime.fleet.kill(shard)
                survivor = client.call_with_retry(
                    "whatif",
                    {
                        "session": sid,
                        "edit": {"action": "upsize", "nets": [victim], "steps": 1},
                    },
                    max_retries=12,
                )
                # Chaos equivalence: bit-identical to the undisturbed run.
                assert (
                    survivor["after"]["longest_delay_hex"]
                    == ref_whatif["after"]["longest_delay_hex"]
                )
                assert (
                    survivor["before"]["longest_delay_hex"]
                    == ref_whatif["before"]["longest_delay_hex"]
                )
                router = runtime.router
                assert router.failovers == 1
                events = _events(runtime)
                failovers = [e for e in events if e["event"] == "failover"]
                assert len(failovers) == 1
                assert failovers[0]["session"] == sid
                assert failovers[0]["from_shard"] == shard
                assert failovers[0]["edits_replayed"] == 1

    def test_repair_survives_shard_kill_bit_identical(self, tmp_path):
        """The repair RPC rides failover like any session method, and its
        committed edits land in the router's replication log: a *second*
        kill after the repair replays the repaired design bit-identically."""
        config = {"mode": "one_step", "clock_period": 0.78e-9}
        repair_params = {"target_slack": 0.0, "max_edits": 2, "beam": 2}
        # Reference: the identical repair on one undisturbed server.
        service = TimingService(workers=2, queue_limit=8)
        with InProcessClient(service) as reference:
            ref_sid = reference.open_session("s27", config=config)["session"]
            ref_transcript = reference.repair(ref_sid, **repair_params)
            ref_final = reference.analyze(ref_sid)
        service.close()

        with _fleet(tmp_path, shards=3, supervise=False).start() as runtime:
            with ServiceClient(runtime.address) as client:
                opened = client.open_session("s27", config=config)
                sid, shard = opened["session"], opened["shard"]
                client.analyze(sid)
                runtime.fleet.kill(shard)
                transcript = client.call_with_retry(
                    "repair", {"session": sid, **repair_params}, max_retries=12
                )
                assert runtime.router.failovers == 1
                assert (
                    transcript["final"]["worst_slack_hex"]
                    == ref_transcript["final"]["worst_slack_hex"]
                )
                assert transcript["committed_edits"] == (
                    ref_transcript["committed_edits"]
                )
                # The router's replication log now carries the repair's
                # committed edits: kill the new owner and the replayed
                # session must still be the repaired design.
                record = runtime.router.sessions[sid]
                assert record.edits == transcript["committed_edits"]
                runtime.fleet.kill(record.shard)
                after = client.call_with_retry(
                    "analyze", {"session": sid}, max_retries=12
                )
                assert runtime.router.failovers == 2
                assert (
                    after["worst_slack_hex"] == ref_final["worst_slack_hex"]
                )
                assert (
                    after["longest_delay_hex"] == ref_final["longest_delay_hex"]
                )

    def test_corrupt_handoff_mid_failover_recovers(self, tmp_path):
        with _fleet(tmp_path, shards=2, supervise=False).start() as runtime:
            with ServiceClient(runtime.address) as client:
                opened = client.open_session("s27", config=ONE_STEP)
                sid, shard = opened["session"], opened["shard"]
                baseline = client.analyze(sid)["longest_delay_hex"]
                with corrupt_handoff(runtime.router, mode="bitflip", times=1):
                    runtime.fleet.kill(shard)
                    result = client.call_with_retry(
                        "analyze", {"session": sid}, max_retries=12
                    )
                assert result["longest_delay_hex"] == baseline
                assert runtime.router.handoff_retries == 1
                kinds = {e["event"] for e in _events(runtime)}
                assert {"handoff_retry", "failover"} <= kinds

    def test_link_drop_reroutes_session(self, tmp_path):
        with _fleet(tmp_path, shards=2, supervise=False).start() as runtime:
            with ServiceClient(runtime.address) as client:
                opened = client.open_session("s27", config=ONE_STEP)
                sid, shard = opened["session"], opened["shard"]
                baseline = client.analyze(sid)["longest_delay_hex"]
                with drop_links(runtime.router, [shard]):
                    result = client.call_with_retry(
                        "analyze", {"session": sid}, max_retries=12
                    )
                assert result["longest_delay_hex"] == baseline
                assert runtime.router.failovers == 1
                # The dropped shard's process survived the partition; only
                # the router's view of it changed.
                assert runtime.fleet.shards[shard].alive

    def test_hung_shard_detected_and_failed_over(self, tmp_path):
        runtime = _fleet(
            tmp_path, shards=2, supervise=True,
            probe_interval=0.2, probe_timeout=0.5,
        )
        with runtime.start():
            with ServiceClient(runtime.address) as client:
                opened = client.open_session("s27", config=ONE_STEP)
                sid, shard = opened["session"], opened["shard"]
                baseline = client.analyze(sid)["longest_delay_hex"]
                with hang_shard(runtime.fleet, shard):
                    result = client.call_with_retry(
                        "analyze", {"session": sid},
                        max_retries=12, max_wait=120.0,
                    )
                    assert result["longest_delay_hex"] == baseline
                events = _events(runtime)
                down = [e for e in events if e["event"] == "shard_down"]
                assert any(e["shard"] == shard for e in down)

    def test_dead_shard_restarted_with_backoff_and_reused(self, tmp_path):
        runtime = _fleet(
            tmp_path, shards=2, supervise=True,
            probe_interval=0.2, probe_timeout=0.5,
        )
        with runtime.start():
            with ServiceClient(runtime.address) as client:
                opened = client.open_session("s27", config=ONE_STEP)
                sid, shard = opened["session"], opened["shard"]
                baseline = client.analyze(sid)["longest_delay_hex"]
                runtime.fleet.kill(shard)
                # Wait for the supervisor to notice the death AND bring a
                # replacement up (capped-backoff restart, then mark_up).
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if (
                        runtime.fleet.shards[shard].restarts >= 1
                        and client.ping()["alive"] == [0, 1]
                    ):
                        break
                    time.sleep(0.2)
                assert client.ping()["alive"] == [0, 1]
                assert runtime.fleet.shards[shard].restarts == 1
                # The restarted shard lost its warm state; the session
                # still answers (replayed on first touch wherever it
                # lands) with the bit-identical result.
                result = client.call_with_retry(
                    "analyze", {"session": sid}, max_retries=12
                )
                assert result["longest_delay_hex"] == baseline

    def test_swarm_with_shard_death_zero_failures(self, tmp_path):
        clients = 6
        queries = 4
        runtime = _fleet(
            tmp_path, shards=2, supervise=True,
            probe_interval=0.2, probe_timeout=0.5,
        )
        with runtime.start():
            errors: list[BaseException] = []
            mismatches: list[str] = []
            started = threading.Barrier(clients + 1, timeout=60)

            def worker(rank: int) -> None:
                try:
                    with ServiceClient(runtime.address) as client:
                        scale = 0.05 + rank * 0.01
                        sid = client.call_with_retry(
                            "open_session",
                            {"netlist": "s27", "scale": scale,
                             "config": ONE_STEP},
                        )["session"]
                        baseline = client.call_with_retry(
                            "analyze", {"session": sid}
                        )["longest_delay_hex"]
                        started.wait()
                        for _ in range(queries):
                            result = client.call_with_retry(
                                "analyze", {"session": sid},
                                max_retries=12, max_wait=120.0,
                            )
                            if result["longest_delay_hex"] != baseline:
                                mismatches.append(sid)
                except BaseException as exc:  # noqa: BLE001 - recorded
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(rank,))
                for rank in range(clients)
            ]
            for thread in threads:
                thread.start()
            started.wait()
            runtime.fleet.kill(0)
            for thread in threads:
                thread.join(180)
            assert not errors
            assert not mismatches
            assert not any(thread.is_alive() for thread in threads)
