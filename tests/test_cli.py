"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_help_mentions_every_command(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for command in ("info", "analyze", "repair", "generate", "serve", "client"):
            assert command in out

    def test_module_docstring_covers_service_commands(self):
        import repro.cli

        assert "serve" in repro.cli.__doc__
        assert "client" in repro.cli.__doc__

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 0
        assert args.max_sessions == 8
        assert args.service_workers == 4
        assert args.deadline is None

    def test_client_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["client", "ping"])

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze", "s27"])
        assert args.mode == "iterative"
        assert not args.all_modes

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "s35932"])
        assert args.scale == 0.05
        assert args.output == "-"

    def test_engine_defaults(self):
        args = build_parser().parse_args(["analyze", "s27"])
        assert args.engine == "scalar"
        assert args.workers == 0
        assert args.arc_cache is None
        assert not args.timing_report

    def test_engine_choices(self):
        args = build_parser().parse_args(
            ["analyze", "s27", "--engine", "batch", "--workers", "2"]
        )
        assert args.engine == "batch"
        assert args.workers == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "s27", "--engine", "turbo"])


class TestInfo:
    def test_info_s27(self, capsys):
        assert main(["info", "s27"]) == 0
        out = capsys.readouterr().out
        assert "16 cells" in out
        assert "OK" in out

    def test_info_generated(self, capsys):
        assert main(["info", "gen:s35932", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "s35932_like" in out

    def test_unknown_generator(self):
        # Input errors map to exit code 2 instead of raising out of main.
        assert main(["info", "gen:s99999"]) == 2

    def test_bench_file(self, tmp_path, capsys):
        from repro.circuit.benchmarks import S27_BENCH

        path = tmp_path / "mine.bench"
        path.write_text(S27_BENCH)
        assert main(["info", str(path)]) == 0
        assert "16 cells" in capsys.readouterr().out


class TestAnalyze:
    def test_single_mode(self, capsys):
        assert main(["analyze", "s27", "--mode", "best_case"]) == 0
        out = capsys.readouterr().out
        assert "best_case" in out
        assert "critical path" in out

    def test_all_modes_with_report(self, capsys):
        assert main(["analyze", "s27", "--all-modes", "--report-nets", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "Best case" in out
        assert "Iterative" in out
        assert "crosstalk-critical nets" in out

    def test_overlap_window_check(self, capsys):
        assert main(["analyze", "s27", "--window-check", "overlap"]) == 0

    def test_json_export(self, tmp_path, capsys):
        import json

        target = tmp_path / "out.json"
        assert main(["analyze", "s27", "--mode", "best_case", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert "best_case" in payload["modes"]
        assert payload["critical_path"]["steps"]

    def test_net_report_export(self, tmp_path, capsys):
        import json

        from repro.core.netreport import NET_REPORT_SCHEMA, validate_net_report

        target = tmp_path / "nets.json"
        assert main(
            [
                "analyze",
                "s27",
                "--mode",
                "one_step",
                "--net-report",
                str(target),
                "--top",
                "5",
            ]
        ) == 0
        payload = json.loads(target.read_text())
        assert payload["schema"] == NET_REPORT_SCHEMA
        assert validate_net_report(payload) == []
        assert 0 < len(payload["nets"]) <= 5
        assert payload["design"] == "s27"


class TestBatchEngineFlags:
    def test_batch_engine_run(self, capsys):
        assert main(["analyze", "s27", "--mode", "one_step", "--engine", "batch"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out

    def test_timing_report(self, capsys):
        assert main(
            [
                "analyze",
                "s27",
                "--mode",
                "one_step",
                "--engine",
                "batch",
                "--timing-report",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "timing report" in out.lower()
        assert "arc cache" in out.lower()

    def test_arc_cache_roundtrip(self, tmp_path, capsys):
        cache = tmp_path / "arcs.json"
        assert main(
            ["analyze", "s27", "--mode", "one_step", "--arc-cache", str(cache)]
        ) == 0
        assert cache.exists()
        capsys.readouterr()
        # Warm run: every arc comes out of the persisted cache.
        assert main(
            [
                "analyze",
                "s27",
                "--mode",
                "one_step",
                "--arc-cache",
                str(cache),
                "--timing-report",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "persistent cache" in out.lower()


class TestObservabilityFlags:
    def test_trace_writes_valid_chrome_json(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        target = tmp_path / "trace.json"
        assert main(
            ["analyze", "s27", "--mode", "one_step", "--trace", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert validate_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"]}
        assert "sta.run" in names
        assert "sta.pass" in names

    def test_trace_jsonl_stream(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        target = tmp_path / "trace.jsonl"
        assert main(
            ["analyze", "s27", "--mode", "one_step", "--trace", str(target)]
        ) == 0
        events = read_jsonl(str(target))
        assert events
        assert all("name" in e and "ts" in e for e in events)

    def test_metrics_writes_valid_json(self, tmp_path, capsys):
        import json

        from repro.obs import validate_metrics_payload

        target = tmp_path / "metrics.json"
        assert main(
            ["analyze", "s27", "--mode", "one_step", "--metrics", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert validate_metrics_payload(payload) == []
        assert list(payload["modes"]) == ["one_step"]
        assert "cumulative" in payload

    def test_metrics_all_modes(self, tmp_path, capsys):
        import json

        from repro.obs import validate_metrics_payload

        target = tmp_path / "metrics.json"
        assert main(["analyze", "s27", "--all-modes", "--metrics", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert validate_metrics_payload(payload) == []
        assert len(payload["modes"]) == 5

    def test_log_level_silences_info(self, tmp_path, capsys):
        assert main(
            ["--log-level", "error", "analyze", "s27", "--mode", "one_step"]
        ) == 0
        captured = capsys.readouterr()
        assert "physical design" not in captured.err
        # The report itself still lands on stdout.
        assert "critical path" in captured.out

    def test_info_logs_to_stderr(self, capsys):
        assert main(["--log-level", "info", "analyze", "s27", "--mode", "one_step"]) == 0
        captured = capsys.readouterr()
        assert "physical design" in captured.err
        assert "physical design" not in captured.out


class TestRepair:
    def test_repair_runs_one_round(self, capsys):
        assert main(["repair", "gen:s35932", "--scale", "0.02", "--top", "4"]) == 0
        out = capsys.readouterr().out
        assert "round 1" in out
        assert "repaired 4 nets" in out


class TestServeClient:
    def test_serve_client_round_trip_over_unix_socket(self, tmp_path, capsys):
        import os
        import threading
        import time

        socket_path = str(tmp_path / "svc.sock")
        trace_path = tmp_path / "serve_trace.json"
        server_exit = {}

        def run_server():
            server_exit["code"] = main(
                ["serve", "--socket", socket_path, "--trace", str(trace_path)]
            )

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        deadline = time.monotonic() + 15
        while not os.path.exists(socket_path) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert os.path.exists(socket_path)

        address = f"unix:{socket_path}"
        assert main(["client", "--connect", address, "ping"]) == 0
        assert main(
            [
                "client",
                "--connect",
                address,
                "open_session",
                "--params",
                '{"netlist": "s27", "config": {"mode": "one_step"}}',
            ]
        ) == 0
        out = capsys.readouterr().out
        assert '"protocol": "repro.service/1"' in out
        assert '"design": "s27"' in out
        assert main(["client", "--connect", address, "shutdown"]) == 0
        thread.join(30)
        assert not thread.is_alive()
        assert server_exit["code"] == 0
        assert trace_path.exists()

    def test_client_error_maps_exit_code(self, tmp_path, capsys):
        import os
        import threading
        import time

        socket_path = str(tmp_path / "svc.sock")

        def run_server():
            main(["serve", "--socket", socket_path])

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        deadline = time.monotonic() + 15
        while not os.path.exists(socket_path) and time.monotonic() < deadline:
            time.sleep(0.05)
        address = f"unix:{socket_path}"
        # Unknown session: no CLI exit-code mapping -> generic failure 1.
        assert main(
            [
                "client",
                "--connect",
                address,
                "analyze",
                "--params",
                '{"session": "nope"}',
            ]
        ) == 1
        # Input error carries the analysis taxonomy's exit code 2.
        assert main(
            [
                "client",
                "--connect",
                address,
                "open_session",
                "--params",
                '{"netlist": "gen:s99999"}',
            ]
        ) == 2
        assert main(["client", "--connect", address, "shutdown"]) == 0
        thread.join(30)


class TestGenerate:
    def test_roundtrip_through_file(self, tmp_path, capsys):
        out_file = tmp_path / "gen.bench"
        assert main(["generate", "s38584", "--scale", "0.01", "-o", str(out_file)]) == 0
        assert main(["info", str(out_file)]) == 0

    def test_stdout_output(self, capsys):
        assert main(["generate", "s35932", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "INPUT(" in out
        assert "= DFF(" in out
