"""Tests for timing-graph ordering and state."""

import pytest

from repro.circuit import s27
from repro.circuit.netlist import Circuit, NetlistError
from repro.core.graph import TimingState, evaluation_order
from repro.waveform.pwl import FALLING, RISING
from repro.waveform.ramp import RampEvent


class TestEvaluationOrder:
    def test_all_cells_once(self):
        circuit = s27()
        order = evaluation_order(circuit)
        names = [c.name for c in order]
        assert len(names) == len(set(names)) == len(circuit.cells)

    def test_drivers_precede_consumers(self):
        circuit = s27()
        position = {c.name: i for i, c in enumerate(evaluation_order(circuit))}
        for cell in circuit.cells.values():
            dep_nets = (
                [cell.pins["CLK"].net] if cell.is_sequential else cell.input_nets()
            )
            for net in dep_nets:
                driver = net.driver_cell()
                if driver is not None:
                    assert position[driver.name] < position[cell.name]

    def test_flip_flop_after_clock_buffers(self):
        """A buffered clock must evaluate before the flip-flops it feeds."""
        circuit = Circuit("c")
        circuit.add_clock()
        circuit.add_input("d")
        circuit.add_cell("INV_X4", "buf1", {"A": "CLK", "Y": "ck1"})
        circuit.add_cell("INV_X4", "buf2", {"A": "ck1", "Y": "ck2"})
        circuit.add_cell("DFF_X1", "ff", {"D": "d", "CLK": "ck2", "Q": "q"})
        circuit.add_cell("INV_X1", "g", {"A": "q", "Y": "y"})
        position = {c.name: i for i, c in enumerate(evaluation_order(circuit))}
        assert position["buf1"] < position["buf2"] < position["ff"] < position["g"]

    def test_combinational_cycle_detected(self):
        circuit = Circuit("c")
        circuit.add_cell("INV_X1", "a", {"A": "y2", "Y": "y1"})
        circuit.add_cell("INV_X1", "b", {"A": "y1", "Y": "y2"})
        with pytest.raises(NetlistError, match="cycle"):
            evaluation_order(circuit)

    def test_ff_feedback_allowed(self):
        circuit = Circuit("c")
        circuit.add_clock()
        circuit.add_cell("DFF_X1", "ff", {"D": "y", "CLK": "CLK", "Q": "q"})
        circuit.add_cell("INV_X1", "g", {"A": "q", "Y": "y"})
        assert len(evaluation_order(circuit)) == 2


class TestTimingState:
    def _event(self, direction, t):
        return RampEvent(direction, t, 100e-12, t - 40e-12, t + 40e-12)

    def test_quiet_time_from_event(self):
        state = TimingState()
        state.ensure_net("n")[RISING] = self._event(RISING, 1e-9)
        assert state.quiet_time("n", RISING) == pytest.approx(1.04e-9)

    def test_quiet_time_without_event_is_minus_infinity(self):
        state = TimingState()
        state.ensure_net("n")
        assert state.quiet_time("n", FALLING) == float("-inf")
        assert state.quiet_time("unknown", RISING) == float("-inf")

    def test_snapshot_covers_all_directions(self):
        state = TimingState()
        state.ensure_net("n")[RISING] = self._event(RISING, 1e-9)
        snapshot = state.quiet_snapshot()
        assert snapshot[("n", RISING)] == pytest.approx(1.04e-9)
        assert snapshot[("n", FALLING)] == float("-inf")
