"""Direct coverage of the Esperance speed-up's cell selection.

:func:`esperance_recalc_cells` runs a backward required-time sweep over
the stored events of a finished pass and marks the driver cells of every
net whose slack is within a fraction of the longest-path delay.  Here the
same selection is recomputed by brute force -- explicit enumeration of
every complete downstream path from every net to every timing endpoint --
and the two selections must agree exactly.
"""

from collections import defaultdict

import pytest

from repro.circuit.generators import GeneratorSpec, generate_circuit
from repro.core.analyzer import CrosstalkSTA
from repro.core.iterative import esperance_recalc_cells
from repro.core.modes import AnalysisMode, StaConfig
from repro.core.propagation import Propagator
from repro.flow import prepare_design
from repro.waveform.pwl import FALLING, RISING, opposite


@pytest.fixture(scope="module")
def swept():
    """A finished one-step pass on a small generated circuit (with
    flip-flops, so the sequential arc handling is exercised too)."""
    spec = GeneratorSpec(
        name="esp", seed=3, n_inputs=6, n_outputs=4, n_ff=6, n_gates=40, depth=4
    )
    design = prepare_design(generate_circuit(spec))
    config = StaConfig(mode=AnalysisMode.ITERATIVE)
    sta = CrosstalkSTA(design, config)
    propagator = Propagator(design, config, sta.calculator)
    result = propagator.run_pass()
    return design, propagator, result


def _forward_arcs(design, order, state):
    """Adjacency (in_net, in_dir) -> [((out_net, out_dir), arc_delay)],
    using the same arc definition as the backward sweep: gates are
    negative unate, flip-flops launch both Q transitions off the clock."""
    arcs = defaultdict(list)
    for cell in order:
        out_net = cell.output_pin.net
        if out_net is None:
            continue
        for out_direction in (RISING, FALLING):
            out_event = state.event(out_net.name, out_direction)
            if out_event is None:
                continue
            in_pins = [cell.pins["CLK"]] if cell.is_sequential else cell.input_pins
            for pin in in_pins:
                in_net = pin.net
                if in_net is None:
                    continue
                in_directions = (
                    (RISING, FALLING)
                    if cell.is_sequential
                    else (opposite(out_direction),)
                )
                for in_direction in in_directions:
                    in_event = state.event(in_net.name, in_direction)
                    if in_event is None:
                        continue
                    arcs[(in_net.name, in_direction)].append(
                        (
                            (out_net.name, out_direction),
                            out_event.t_cross - in_event.t_cross,
                        )
                    )
    return arcs


def _downstream_sums(key, arcs, endpoint_keys):
    """Delay sums of every complete path from ``key`` to an endpoint,
    by exhaustive enumeration (no memoization -- this is the reference,
    not an algorithm)."""
    sums = []
    if key in endpoint_keys:
        sums.append(0.0)
    for out_key, delay in arcs.get(key, ()):
        sums.extend(delay + rest for rest in _downstream_sums(out_key, arcs, endpoint_keys))
    return sums


def _brute_force_recalc(design, order, result, slack_fraction):
    state = result.state
    horizon = result.longest_delay
    circuit = design.circuit
    endpoint_keys = set()
    for endpoint in circuit.timing_endpoints():
        net = endpoint.net
        if net is None:
            continue
        for direction in (RISING, FALLING):
            if state.event(net.name, direction) is not None:
                endpoint_keys.add((net.name, direction))

    arcs = _forward_arcs(design, order, state)
    recalc = set()
    for net_name, net in circuit.nets.items():
        for direction in (RISING, FALLING):
            event = state.event(net_name, direction)
            if event is None:
                continue
            sums = _downstream_sums((net_name, direction), arcs, endpoint_keys)
            if not sums:
                continue
            # required = horizon - (worst downstream delay); slack follows.
            slack = (horizon - max(sums)) - event.t_cross
            if slack <= slack_fraction * horizon:
                driver = net.driver_cell()
                if driver is not None:
                    recalc.add(driver.name)
    return recalc


class TestEsperanceSelection:
    @pytest.mark.parametrize("slack_fraction", [0.02, 0.1, 0.3, 1.0])
    def test_matches_brute_force_path_enumeration(self, swept, slack_fraction):
        design, propagator, result = swept
        fast = esperance_recalc_cells(design, propagator, result, slack_fraction)
        brute = _brute_force_recalc(design, propagator.order, result, slack_fraction)
        assert fast == brute

    def test_selection_grows_with_slack_fraction(self, swept):
        design, propagator, result = swept
        tight = esperance_recalc_cells(design, propagator, result, 0.02)
        loose = esperance_recalc_cells(design, propagator, result, 0.5)
        assert tight <= loose
        assert loose  # the critical path always qualifies

    def test_critical_driver_selected_at_any_fraction(self, swept):
        """The cell driving the critical endpoint's net has (near-)zero
        slack by construction and must always be selected."""
        design, propagator, result = swept
        selected = esperance_recalc_cells(design, propagator, result, 0.02)
        critical_net = None
        for endpoint in design.circuit.timing_endpoints():
            name = (
                endpoint.full_name if hasattr(endpoint, "full_name") else endpoint.name
            )
            if name == result.critical_endpoint:
                critical_net = endpoint.net
        assert critical_net is not None
        driver = critical_net.driver_cell()
        if driver is not None:
            assert driver.name in selected
