"""Tests for the path-simulation harness."""

import pytest

from repro.core.analyzer import CrosstalkSTA
from repro.core.modes import AnalysisMode
from repro.validate.pathsim import _sensitizing_side_inputs, build_path_circuit


@pytest.fixture(scope="module")
def path_setup(s27_design):
    sta = CrosstalkSTA(s27_design)
    result = sta.run(AnalysisMode.ITERATIVE)
    path = sta.critical_path(result)
    circuit = build_path_circuit(s27_design, path, result.final_pass.state)
    return s27_design, result, path, circuit


class TestSensitization:
    def test_inverter_trivial(self, library):
        assert _sensitizing_side_inputs(library["INV_X1"], "A") == {}

    def test_nand_side_inputs_high(self, library):
        values = _sensitizing_side_inputs(library["NAND3_X1"], "B")
        assert values == {"A": True, "C": True}

    def test_nor_side_inputs_low(self, library):
        values = _sensitizing_side_inputs(library["NOR2_X1"], "A")
        assert values == {"B": False}

    def test_aoi21_sensitizable_through_each_pin(self, library):
        ctype = library["AOI21_X1"]
        for pin in ctype.inputs:
            values = _sensitizing_side_inputs(ctype, pin)
            lo = dict(values, **{pin: False})
            hi = dict(values, **{pin: True})
            assert ctype.evaluate(lo) != ctype.evaluate(hi)


class TestPathCircuit:
    def test_has_transistors_for_each_stage(self, path_setup):
        design, _, path, circuit = path_setup
        comb_steps = [
            s for s in path.steps if not design.circuit.cells[s.cell].is_sequential
        ]
        assert len(circuit.sim.mosfets) >= 2 * len(comb_steps)

    def test_probe_nodes_exist(self, path_setup):
        _, _, path, circuit = path_setup
        for net in circuit.net_direction:
            assert circuit.sim.has_node(circuit.net_probe[net])

    def test_stimulus_matches_sta_event(self, path_setup):
        _, result, path, circuit = path_setup
        state = result.final_pass.state
        source_event = state.event(
            circuit.path.steps[0].out_net
            if circuit.stimulus_node.startswith(path.steps[0].out_net)
            else path.steps[0].in_net,
            circuit.stimulus_direction,
        )
        assert source_event is not None
        assert circuit.stimulus_t_start == pytest.approx(
            source_event.t_cross - 0.5 * source_event.transition
        )

    def test_aggressors_cover_offpath_couplings(self, path_setup):
        design, _, _, circuit = path_setup
        for net in circuit.net_direction:
            load = design.loads[net]
            expected = {
                other for other in load.couplings if other not in circuit.net_direction
            }
            have = {
                h.aggressor_net for h in circuit.aggressors if h.victim_net == net
            }
            assert have == expected

    def test_aggressors_switch_opposite_to_victims(self, path_setup):
        _, _, _, circuit = path_setup
        from repro.waveform.pwl import opposite

        for handle in circuit.aggressors:
            assert handle.direction == opposite(circuit.net_direction[handle.victim_net])

    def test_initial_voltages_at_rails(self, path_setup):
        design, _, _, circuit = path_setup
        vdd = design.process.vdd
        for node, voltage in circuit.initial_voltages.items():
            assert voltage == pytest.approx(0.0) or voltage == pytest.approx(vdd)

    def test_horizon_beyond_sta_bound(self, path_setup):
        _, result, _, circuit = path_setup
        assert circuit.t_horizon > result.longest_delay

    def test_empty_path_rejected(self, path_setup):
        design, result, path, _ = path_setup
        from repro.core.paths import CriticalPath

        with pytest.raises(ValueError, match="empty"):
            build_path_circuit(design, CriticalPath("x", "rise"), result.final_pass.state)
