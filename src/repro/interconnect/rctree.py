"""RC tree representation of a routed net.

The paper models wire delay with "the widely used Elmore model" on lumped
RC; this module holds the per-net RC tree the router/extractor produce and
that :mod:`repro.interconnect.elmore` evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RCNode:
    """One node of an RC tree.

    ``r_to_parent`` is the resistance of the edge into this node from its
    parent (0 for the root); ``cap`` is the grounded capacitance lumped at
    this node.  ``name`` is non-empty for terminal nodes (driver/sinks).
    """

    index: int
    parent: int  # -1 for the root
    r_to_parent: float
    cap: float
    name: str = ""


class RCTree:
    """A rooted RC tree for one net (root = driver output)."""

    def __init__(self, net: str):
        self.net = net
        self.nodes: list[RCNode] = []
        self._by_name: dict[str, int] = {}

    def add_node(self, parent: int, r: float, cap: float = 0.0, name: str = "") -> int:
        """Append a node; returns its index.  ``parent`` is -1 for the root."""
        if parent >= len(self.nodes):
            raise ValueError(f"parent index {parent} out of range")
        if parent < 0 and self.nodes:
            raise ValueError("tree already has a root")
        if r < 0 or cap < 0:
            raise ValueError("R and C must be non-negative")
        index = len(self.nodes)
        self.nodes.append(RCNode(index=index, parent=parent, r_to_parent=r, cap=cap, name=name))
        if name:
            self._by_name[name] = index
        return index

    def add_cap(self, index: int, cap: float) -> None:
        """Add lumped capacitance at an existing node."""
        if cap < 0:
            raise ValueError("capacitance must be non-negative")
        self.nodes[index].cap += cap

    @property
    def root(self) -> int:
        return 0

    def node_by_name(self, name: str) -> int:
        return self._by_name[name]

    def terminal_names(self) -> list[str]:
        return [n.name for n in self.nodes if n.name]

    def total_cap(self) -> float:
        return sum(node.cap for node in self.nodes)

    def total_resistance(self) -> float:
        return sum(node.r_to_parent for node in self.nodes)

    def subtree_caps(self) -> list[float]:
        """Capacitance of the subtree rooted at each node.

        Nodes are appended parent-first, so a single reverse pass
        accumulates children into parents.
        """
        caps = [node.cap for node in self.nodes]
        for node in reversed(self.nodes):
            if node.parent >= 0:
                caps[node.parent] += caps[node.index]
        return caps

    def path_to_root(self, index: int) -> list[int]:
        path = []
        while index >= 0:
            path.append(index)
            index = self.nodes[index].parent
        return path

    @staticmethod
    def single_lump(net: str, r: float, cap: float, sink_name: str = "sink") -> "RCTree":
        """Convenience: a driver->sink tree with one R and one C (the
        textbook single-lump whose Elmore delay is exactly R*C)."""
        tree = RCTree(net)
        root = tree.add_node(-1, 0.0, 0.0, name="driver")
        tree.add_node(root, r, cap, name=sink_name)
        return tree
