"""Elmore delay evaluation on RC trees.

The Elmore delay from the root to node *i* is::

    T_i = sum over nodes k of  R(path(root,i) intersect path(root,k)) * C_k

computed here in linear time via subtree capacitances: each edge
(parent -> child, resistance R) contributes ``R * C_subtree(child)`` to
every sink below it.  The paper uses Elmore for wire delays and notes it
"is known to overestimate the delay for long wires -- in the worst-case
sense this is acceptable".
"""

from __future__ import annotations

from repro.interconnect.rctree import RCTree


def elmore_delays(tree: RCTree) -> list[float]:
    """Elmore delay from the root to every node (seconds)."""
    subtree = tree.subtree_caps()
    delays = [0.0] * len(tree.nodes)
    for node in tree.nodes:
        if node.parent < 0:
            continue
        delays[node.index] = delays[node.parent] + node.r_to_parent * subtree[node.index]
    return delays


def elmore_delay_to(tree: RCTree, name: str) -> float:
    """Elmore delay from the root to the named terminal."""
    return elmore_delays(tree)[tree.node_by_name(name)]


def sink_delays(tree: RCTree) -> dict[str, float]:
    """Elmore delay per named terminal (excluding the root)."""
    delays = elmore_delays(tree)
    return {
        node.name: delays[node.index]
        for node in tree.nodes
        if node.name and node.index != tree.root
    }


def effective_load(tree: RCTree) -> float:
    """Capacitive load the driver sees.

    The paper's gate model drives a lumped capacitance; the natural lump
    for an RC tree is its total capacitance (resistive shielding is
    ignored on the conservative side).
    """
    return tree.total_cap()
