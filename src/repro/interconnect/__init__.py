"""Interconnect modeling: RC trees and Elmore delay."""

from repro.interconnect.elmore import (
    effective_load,
    elmore_delay_to,
    elmore_delays,
    sink_delays,
)
from repro.interconnect.rctree import RCNode, RCTree

__all__ = [
    "RCNode",
    "RCTree",
    "effective_load",
    "elmore_delay_to",
    "elmore_delays",
    "sink_delays",
]
