"""Wire protocol of the timing-query service.

Newline-delimited JSON-RPC: every request and every response is exactly
one JSON object on one line.  Requests carry ``id`` (echoed back,
any JSON scalar), ``method`` and ``params``; responses carry either
``result`` or ``error``::

    -> {"id": 1, "method": "open_session", "params": {"netlist": "s27"}}
    <- {"id": 1, "result": {"session": "a3f9...", ...}}
    -> {"id": 2, "method": "analyze", "params": {"session": "bogus"}}
    <- {"id": 2, "error": {"code": 404, "kind": "unknown_session", ...}}

Error objects map the analysis runtime's exception taxonomy
(:mod:`repro.errors`) onto stable codes; where a failure corresponds to
a CLI exit code, ``error.data.exit_code`` carries it so socket clients
and shell pipelines agree on the classification.  A ``busy`` rejection
(the execution layer's backpressure) always carries
``error.data.retry_after`` seconds -- the service never drops a request
without telling the client when to come back.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import (
    EXIT_DEGRADED_OVER_BUDGET,
    EXIT_INPUT_ERROR,
    EXIT_INTERNAL_FAULT,
    DegradationBudgetError,
    InputError,
    ReproError,
)

PROTOCOL_VERSION = "repro.service/1"
FLEET_PROTOCOL_VERSION = "repro.fleet/1"

# Stable error codes (HTTP-flavoured where a familiar one exists).
ERR_BAD_REQUEST = 400  # malformed request line / envelope
ERR_UNKNOWN_SESSION = 404
ERR_UNKNOWN_METHOD = 405
ERR_DEADLINE = 408  # per-request deadline exceeded
ERR_INPUT = 422  # InputError from the engines (exit code 2)
ERR_BUSY = 429  # backpressure reject; data carries retry_after
ERR_INTERNAL = 500  # internal fault (exit code 4)
ERR_DEGRADED = 503  # degraded-arc budget exceeded (exit code 3)

# error code -> (kind, CLI exit code or None)
ERROR_KINDS = {
    ERR_BAD_REQUEST: ("bad_request", None),
    ERR_UNKNOWN_SESSION: ("unknown_session", None),
    ERR_UNKNOWN_METHOD: ("unknown_method", None),
    ERR_DEADLINE: ("deadline_exceeded", None),
    ERR_INPUT: ("input_error", EXIT_INPUT_ERROR),
    ERR_BUSY: ("busy", None),
    ERR_INTERNAL: ("internal_fault", EXIT_INTERNAL_FAULT),
    ERR_DEGRADED: ("degraded_over_budget", EXIT_DEGRADED_OVER_BUDGET),
}


class ServiceError(ReproError):
    """A structured service-level failure, mappable to a wire error."""

    def __init__(self, code: int, message: str, **data):
        super().__init__(message)
        self.code = code
        self.kind = ERROR_KINDS.get(code, ("internal_fault", None))[0]
        self.data = data


class ServiceTransportError(ReproError):
    """The connection itself failed (refused, reset, closed mid-call) --
    distinct from :class:`ServiceCallError`, which means the server
    *answered* with an error.  Retry layers treat transport failures as
    retryable-after-reconnect; protocol errors are final."""


class ServiceCallError(ReproError):
    """Client-side view of a wire error response."""

    def __init__(self, code: int, kind: str, message: str, data: dict | None = None):
        super().__init__(f"{kind} ({code}): {message}")
        self.code = code
        self.kind = kind
        self.message = message
        self.data = data or {}

    @property
    def retry_after(self) -> float | None:
        value = self.data.get("retry_after")
        return float(value) if value is not None else None


def error_payload(exc: BaseException) -> dict:
    """Map an exception onto the wire error object."""
    if isinstance(exc, ServiceCallError):
        # A proxied upstream error (the fleet router forwarding a shard's
        # answer): pass it through verbatim, never re-wrap as 500.
        return {
            "code": exc.code,
            "kind": exc.kind,
            "message": exc.message,
            "data": dict(exc.data),
        }
    if isinstance(exc, ServiceError):
        code, data = exc.code, dict(exc.data)
    elif isinstance(exc, DegradationBudgetError):
        code, data = ERR_DEGRADED, {"degraded": exc.degraded, "budget": exc.budget}
    elif isinstance(exc, InputError):
        code, data = ERR_INPUT, {}
    elif isinstance(exc, ReproError):
        # The taxonomy class name lets clients (and the fleet router)
        # distinguish e.g. a rejected handoff (CheckpointError) from a
        # generic internal fault without parsing messages.
        code, data = ERR_INTERNAL, {"exception": type(exc).__name__}
    else:
        code, data = ERR_INTERNAL, {"exception": type(exc).__name__}
    kind, exit_code = ERROR_KINDS[code]
    if exit_code is not None:
        data.setdefault("exit_code", exit_code)
    return {"code": code, "kind": kind, "message": str(exc), "data": data}


def encode_request(request_id: Any, method: str, params: dict | None = None) -> bytes:
    line = json.dumps(
        {"id": request_id, "method": method, "params": params or {}},
        separators=(",", ":"),
    )
    return line.encode() + b"\n"


def decode_request(line: bytes | str) -> tuple[Any, str, dict]:
    """Parse one request line; raises :class:`ServiceError` (400) on any
    shape violation so the server can answer instead of disconnecting."""
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ServiceError(ERR_BAD_REQUEST, f"request is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise ServiceError(ERR_BAD_REQUEST, "request must be a JSON object")
    method = payload.get("method")
    if not isinstance(method, str) or not method:
        raise ServiceError(ERR_BAD_REQUEST, "request needs a string 'method'")
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ServiceError(ERR_BAD_REQUEST, "'params' must be a JSON object")
    return payload.get("id"), method, params


def encode_response(request_id: Any, result: dict) -> bytes:
    return (
        json.dumps({"id": request_id, "result": result}, separators=(",", ":")).encode()
        + b"\n"
    )


def encode_error(request_id: Any, exc: BaseException) -> bytes:
    return (
        json.dumps(
            {"id": request_id, "error": error_payload(exc)}, separators=(",", ":")
        ).encode()
        + b"\n"
    )


def decode_response(line: bytes | str) -> tuple[Any, dict]:
    """Parse one response line into ``(id, result)``; raises
    :class:`ServiceCallError` when the line carries an error object."""
    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise ServiceCallError(ERR_BAD_REQUEST, "bad_request", "response is not an object")
    error = payload.get("error")
    if error is not None:
        raise ServiceCallError(
            code=error.get("code", ERR_INTERNAL),
            kind=error.get("kind", "internal_fault"),
            message=error.get("message", ""),
            data=error.get("data") or {},
        )
    return payload.get("id"), payload.get("result", {})
