"""Shard fleet: worker processes, placement ring, and the fleet runtime.

A fleet is N independent shard processes, each running the full
single-process :class:`~repro.service.server.TimingServer` on its own
port, fronted by a :class:`~repro.service.router.FleetRouter` and
watched by a :class:`~repro.service.supervisor.ShardSupervisor`.  This
module owns the *process* half: spawning shards (with a readiness
handshake over a pipe), killing/pausing them (fault injection), and the
consistent-hash ring that maps design placement keys onto shards.

Placement hashes ``spec|scale`` -- the same key the session checkpoint
filename uses -- so re-opening a design lands on the shard that already
holds its warm state, and differing scales of one netlist spread across
the fleet.

:class:`FleetRuntime` assembles the whole topology (shards + router +
supervisor) on a background thread; it is what the CLI, the benchmarks
and the chaos tests drive.
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ReproError


@dataclass
class FleetOptions:
    """Knobs of one fleet: shard count and per-shard server settings."""

    shards: int = 2
    workers: int = 2  # analysis threads per shard
    queue_limit: int = 8
    max_sessions: int = 8
    checkpoint_dir: str | None = None
    default_deadline: float | None = None
    host: str = "127.0.0.1"
    access_log_dir: str | None = None  # per-shard JSONL: shard-<i>.log
    spawn_timeout: float = 60.0

    @property
    def shard_capacity(self) -> int:
        return self.workers + self.queue_limit


def placement_key(spec: str, scale: float) -> str:
    """The ring key for one design: netlist spec + bit-exact scale."""
    return f"{spec}|{float(scale).hex()}"


def _hash_point(token: str) -> int:
    return int.from_bytes(hashlib.sha256(token.encode()).digest()[:8], "big")


class HashRing:
    """Consistent hash ring over shard indices.

    Each shard contributes ``replicas`` virtual points; a key is owned
    by the first point clockwise from its hash.  :meth:`owner` walks
    past points whose shard is not in ``alive``, which is exactly the
    failover placement rule: a dead shard's keys fall to its ring
    successors, and everything else stays put (no rebalancing storm).
    """

    def __init__(self, replicas: int = 64):
        self.replicas = replicas
        self._points: list[tuple[int, int]] = []  # sorted (point, shard)

    def add(self, shard: int) -> None:
        for replica in range(self.replicas):
            point = _hash_point(f"shard-{shard}-{replica}")
            bisect.insort(self._points, (point, shard))

    def remove(self, shard: int) -> None:
        self._points = [(p, s) for p, s in self._points if s != shard]

    def owner(self, key: str, alive: set[int] | None = None) -> int | None:
        """The live shard owning ``key`` (None if no candidate is alive)."""
        if not self._points:
            return None
        start = bisect.bisect_left(self._points, (_hash_point(key), -1))
        seen: set[int] = set()
        for offset in range(len(self._points)):
            _, shard = self._points[(start + offset) % len(self._points)]
            if shard in seen:
                continue
            seen.add(shard)
            if alive is None or shard in alive:
                return shard
        return None

    def shards(self) -> set[int]:
        return {shard for _, shard in self._points}


def _shard_main(index: int, options: FleetOptions, conn) -> None:
    """Entry point of one shard process: a full TimingServer on its own
    port, reported back through the readiness pipe.  SIGTERM takes the
    drain-then-close path (see ``install_signal_handlers``), so a
    supervised stop exits 0 with no request dropped mid-solve."""
    import asyncio

    from repro.obs import Observability
    from repro.service.server import TimingService, serve

    service = TimingService(
        max_sessions=options.max_sessions,
        checkpoint_dir=options.checkpoint_dir,
        workers=options.workers,
        queue_limit=options.queue_limit,
        default_deadline=options.default_deadline,
        obs=Observability.disabled(),
    )
    access_log = None
    if options.access_log_dir is not None:
        os.makedirs(options.access_log_dir, exist_ok=True)
        access_log = os.path.join(options.access_log_dir, f"shard-{index}.log")

    def ready(server) -> None:
        conn.send({"shard": index, "port": server.port})
        conn.close()

    asyncio.run(
        serve(
            service,
            host=options.host,
            port=0,
            ready=ready,
            access_log=access_log,
        )
    )


@dataclass
class ShardHandle:
    """One shard process as the parent sees it."""

    index: int
    process: multiprocessing.Process
    port: int
    restarts: int = 0
    started_at: float = field(default_factory=time.monotonic)

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class Fleet:
    """Spawns and owns the shard processes (no routing; see router.py)."""

    def __init__(self, options: FleetOptions | None = None):
        self.options = options if options is not None else FleetOptions()
        self.shards: dict[int, ShardHandle] = {}
        # fork keeps spawn cheap (no module re-import per shard); the
        # child immediately enters a fresh asyncio.run.
        self._ctx = multiprocessing.get_context("fork")

    def start(self) -> None:
        for index in range(self.options.shards):
            self.spawn(index)

    def spawn(self, index: int) -> ShardHandle:
        """Start (or restart) shard ``index``; blocks until its server
        reports the port it bound, so a returned handle is routable."""
        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_shard_main,
            args=(index, self.options, child),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        process.start()
        child.close()
        try:
            if not parent.poll(self.options.spawn_timeout):
                raise ReproError(
                    f"shard {index} did not report readiness within "
                    f"{self.options.spawn_timeout:g}s"
                )
            message = parent.recv()
        except (EOFError, OSError) as exc:
            process.kill()
            raise ReproError(f"shard {index} died during startup: {exc}") from exc
        finally:
            parent.close()
        previous = self.shards.get(index)
        handle = ShardHandle(
            index=index,
            process=process,
            port=message["port"],
            restarts=previous.restarts + 1 if previous is not None else 0,
        )
        self.shards[index] = handle
        return handle

    def address(self, index: int) -> str:
        handle = self.shards[index]
        return f"{self.options.host}:{handle.port}"

    # -- fault injection hooks (see repro.testing.faults) --------------------

    def kill(self, index: int) -> None:
        """SIGKILL: what an OOM kill or a segfault looks like."""
        self._signal(index, signal.SIGKILL)

    def pause(self, index: int) -> None:
        """SIGSTOP: a hung shard -- alive to the OS, dead to clients."""
        self._signal(index, signal.SIGSTOP)

    def resume(self, index: int) -> None:
        self._signal(index, signal.SIGCONT)

    def _signal(self, index: int, signum: int) -> None:
        process = self.shards[index].process
        if process.pid is not None:
            try:
                os.kill(process.pid, signum)
            except ProcessLookupError:
                pass

    def stop(self, grace: float = 10.0) -> None:
        """SIGTERM every shard (drain-then-close), escalate to SIGKILL
        for any that miss the grace deadline."""
        for handle in self.shards.values():
            if handle.alive:
                # A paused shard cannot act on SIGTERM; wake it first.
                self._signal(handle.index, signal.SIGCONT)
                handle.process.terminate()
        deadline = time.monotonic() + grace
        for handle in self.shards.values():
            handle.process.join(max(0.0, deadline - time.monotonic()))
            if handle.alive:
                handle.process.kill()
                handle.process.join(5.0)


class FleetRuntime:
    """The assembled topology: shards + router + supervisor on a
    background thread.  ``start()`` returns once the router is
    accepting connections; ``stop()`` tears everything down (router
    first, then SIGTERM to the shards)."""

    def __init__(
        self,
        options: FleetOptions | None = None,
        router_host: str = "127.0.0.1",
        router_port: int = 0,
        access_log: str | None = None,
        supervise: bool = True,
        probe_interval: float = 0.25,
        probe_timeout: float = 2.0,
    ):
        self.options = options if options is not None else FleetOptions()
        self.router_host = router_host
        self.router_port = router_port
        self.access_log = access_log
        self.supervise = supervise
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.fleet = Fleet(self.options)
        self.router = None
        self.supervisor = None
        self.address: str | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop = None
        self._stop_event = None
        self._error: BaseException | None = None

    def start(self, timeout: float = 120.0) -> "FleetRuntime":
        # Shards fork from here, before the router thread exists.
        self.fleet.start()
        self._thread = threading.Thread(
            target=self._run, name="repro-fleet-router", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            self.stop()
            raise ReproError("fleet router did not become ready")
        if self._error is not None:
            self.stop()
            raise ReproError(f"fleet router failed to start: {self._error}")
        return self

    def _run(self) -> None:
        import asyncio

        asyncio.run(self._main())

    async def _main(self) -> None:
        import asyncio
        import contextlib

        from repro.service.router import FleetRouter
        from repro.service.supervisor import ShardSupervisor

        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            router = FleetRouter(self.fleet, access_log=self.access_log)
            await router.start_server(self.router_host, self.router_port)
            router.on_stop = self._stop_event.set
            self.router = router
            self.address = router.address
            supervisor_task = None
            if self.supervise:
                self.supervisor = ShardSupervisor(
                    self.fleet,
                    router,
                    interval=self.probe_interval,
                    probe_timeout=self.probe_timeout,
                )
                supervisor_task = asyncio.create_task(
                    self.supervisor.run(self._stop_event)
                )
        except Exception as exc:
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        if supervisor_task is not None:
            supervisor_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await supervisor_task
        await router.stop_server()

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(30.0)
        self.fleet.stop()

    def __enter__(self) -> "FleetRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
