"""Timing-query service: persistent design sessions over a concurrent
async server, with incremental what-if (ECO) analysis.

See ``docs/SERVICE.md`` for the protocol and an end-to-end tour.
"""

from repro.service.client import InProcessClient, ServiceClient, backoff_delay
from repro.service.executor import RequestExecutor
from repro.service.fleet import Fleet, FleetOptions, FleetRuntime, HashRing
from repro.service.handoff import decode_handoff, encode_handoff, loads_handoff
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_BUSY,
    ERR_DEADLINE,
    ERR_DEGRADED,
    ERR_INPUT,
    ERR_INTERNAL,
    ERR_UNKNOWN_METHOD,
    ERR_UNKNOWN_SESSION,
    FLEET_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    ServiceCallError,
    ServiceError,
    ServiceTransportError,
    error_payload,
)
from repro.service.router import FleetRouter, ShardLinkDown
from repro.service.server import TimingServer, TimingService, serve
from repro.service.session import Session, SessionManager, design_digest, result_summary
from repro.service.supervisor import ShardSupervisor
from repro.service.whatif import EDIT_ACTIONS, apply_edit

__all__ = [
    "EDIT_ACTIONS",
    "ERR_BAD_REQUEST",
    "ERR_BUSY",
    "ERR_DEADLINE",
    "ERR_DEGRADED",
    "ERR_INPUT",
    "ERR_INTERNAL",
    "ERR_UNKNOWN_METHOD",
    "ERR_UNKNOWN_SESSION",
    "FLEET_PROTOCOL_VERSION",
    "Fleet",
    "FleetOptions",
    "FleetRouter",
    "FleetRuntime",
    "HashRing",
    "InProcessClient",
    "PROTOCOL_VERSION",
    "RequestExecutor",
    "ServiceCallError",
    "ServiceClient",
    "ServiceError",
    "ServiceTransportError",
    "Session",
    "SessionManager",
    "ShardLinkDown",
    "ShardSupervisor",
    "TimingServer",
    "TimingService",
    "apply_edit",
    "backoff_delay",
    "decode_handoff",
    "design_digest",
    "encode_handoff",
    "error_payload",
    "loads_handoff",
    "result_summary",
    "serve",
]
