"""Timing-query service: persistent design sessions over a concurrent
async server, with incremental what-if (ECO) analysis.

See ``docs/SERVICE.md`` for the protocol and an end-to-end tour.
"""

from repro.service.client import InProcessClient, ServiceClient
from repro.service.executor import RequestExecutor
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_BUSY,
    ERR_DEADLINE,
    ERR_DEGRADED,
    ERR_INPUT,
    ERR_INTERNAL,
    ERR_UNKNOWN_METHOD,
    ERR_UNKNOWN_SESSION,
    PROTOCOL_VERSION,
    ServiceCallError,
    ServiceError,
    error_payload,
)
from repro.service.server import TimingServer, TimingService, serve
from repro.service.session import Session, SessionManager, design_digest, result_summary
from repro.service.whatif import EDIT_ACTIONS, apply_edit

__all__ = [
    "EDIT_ACTIONS",
    "ERR_BAD_REQUEST",
    "ERR_BUSY",
    "ERR_DEADLINE",
    "ERR_DEGRADED",
    "ERR_INPUT",
    "ERR_INTERNAL",
    "ERR_UNKNOWN_METHOD",
    "ERR_UNKNOWN_SESSION",
    "InProcessClient",
    "PROTOCOL_VERSION",
    "RequestExecutor",
    "ServiceCallError",
    "ServiceClient",
    "ServiceError",
    "Session",
    "SessionManager",
    "TimingServer",
    "TimingService",
    "apply_edit",
    "design_digest",
    "error_payload",
    "result_summary",
    "serve",
]
