"""Persistent design sessions: warm analyzer state between queries.

A :class:`Session` owns everything a one-shot CLI run throws away: the
prepared :class:`~repro.flow.design.Design`, an analyzer whose
:class:`~repro.waveform.gatedelay.GateDelayCalculator` (stage tables,
canonicalized arc cache) stays hot, per-mode retained propagators with
their delta-driven arc memos, and the last :class:`StaResult` per mode.
A repeated ``analyze`` re-anchors instead of re-solving; a ``whatif``
builds an edited design, seeds its propagator from the warm one and pays
only for the dirty cone -- with results bit-identical to a cold analysis
of the edited design (the incremental engine's PR-4 guarantee).

:class:`SessionManager` bounds memory with LRU eviction and keys an
optional iterative-mode checkpoint file per session
(:mod:`repro.core.checkpoint`), so re-opening an evicted or killed
session's exact design resumes from the last completed pass instead of
starting over.  The checkpoint filename includes a digest of the
design's netlist *and* parasitics, so a changed ``.bench`` file or an
edited (committed) design can never resume from stale state.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import replace

from repro.circuit import resolve_circuit
from repro.core.analyzer import CrosstalkSTA, StaResult
from repro.core.explain import explain_result, validate_explain
from repro.core.export import path_to_dict
from repro.core.modes import AnalysisMode, Core, Engine, SolverTier, StaConfig, WindowCheck
from repro.core.netreport import exposure_to_dict, rank_crosstalk_nets
from repro.errors import InputError
from repro.flow import prepare_design
from repro.flow.design import Design
from repro.obs import Observability
from repro.service.handoff import encode_handoff
from repro.service.protocol import ERR_UNKNOWN_SESSION, ServiceError
from repro.service.whatif import apply_edit
from repro.waveform.pwl import FALLING, RISING

# StaConfig fields a client may override per session.
_CONFIG_OVERRIDES = {
    "mode": lambda v: AnalysisMode(v),
    "window_check": lambda v: WindowCheck(v),
    "engine": lambda v: Engine(v),
    "core": lambda v: Core(v),
    "workers": int,
    "esperance": bool,
    "esperance_slack": float,
    "strict": bool,
    "max_degraded": lambda v: None if v is None else int(v),
    "incremental": bool,
    "input_transition": float,
    "guard": float,
    "max_iterations": int,
    "convergence_tolerance": float,
    "solver_tier": lambda v: SolverTier(v),
    "screen_tolerance": float,
    "screen_slack_margin": float,
    "provenance": bool,
    "clock_period": lambda v: None if v is None else float(v),
    "setup_time": float,
    "hold_time": float,
}


def session_config(base: StaConfig, overrides: dict | None) -> StaConfig:
    """Apply whitelisted client overrides to the server's base config."""
    if not overrides:
        return base
    kwargs = {}
    for key, value in overrides.items():
        convert = _CONFIG_OVERRIDES.get(key)
        if convert is None:
            raise InputError(
                f"unknown config override {key!r}; have {sorted(_CONFIG_OVERRIDES)}"
            )
        try:
            kwargs[key] = convert(value)
        except (TypeError, ValueError) as exc:
            raise InputError(f"bad value for config override {key!r}: {exc}")
    return replace(base, **kwargs)


def design_digest(design: Design) -> str:
    """Digest of everything that determines the design's timing: the
    mapped netlist plus the per-net electrical views (fixed loads,
    coupling neighbours, sink Elmore delays)."""
    h = hashlib.sha256()
    for name in sorted(design.circuit.cells):
        cell = design.circuit.cells[name]
        pins = ",".join(
            f"{pin.name}:{pin.net.name if pin.net is not None else ''}"
            for pin in sorted(cell.pins.values(), key=lambda p: p.name)
        )
        h.update(f"C|{name}|{cell.ctype.name}|{pins}\n".encode())
    for name in sorted(design.loads):
        load = design.loads[name]
        couplings = ",".join(
            f"{other}:{cap.hex()}" for other, cap in sorted(load.couplings.items())
        )
        elmore = ",".join(
            f"{term}:{delay.hex()}" for term, delay in sorted(load.sink_elmore.items())
        )
        h.update(f"L|{name}|{load.c_fixed.hex()}|{couplings}|{elmore}\n".encode())
    return h.hexdigest()


def _finite(value: float) -> float | None:
    """JSON-safe float: infinities (empty/unknown windows) become null."""
    if value != value or value in (float("inf"), float("-inf")):
        return None
    return value


def result_summary(result: StaResult) -> dict:
    """The wire form of one analysis result (hex pins bit-exactness)."""
    summary = {
        "mode": result.mode.value,
        "design": result.design_name,
        "longest_delay": result.longest_delay,
        "longest_delay_hex": float(result.longest_delay).hex(),
        "longest_delay_ns": result.longest_delay_ns,
        "critical_endpoint": result.critical_endpoint,
        "critical_direction": result.critical_direction,
        "passes": result.passes,
        "waveform_evaluations": result.waveform_evaluations,
        "arcs_processed": result.arcs_processed,
        "coupled_arcs": result.coupled_arcs,
        "dirty_arcs": sum(r.dirty_arcs for r in result.history),
        "reused_arcs": sum(r.reused_arcs for r in result.history),
        "degraded_arcs": len(result.degraded_arcs),
        "runtime_seconds": result.runtime_seconds,
    }
    if result.slack is not None:
        slack = result.slack
        summary["worst_slack"] = slack.worst_slack
        summary["worst_slack_hex"] = float(slack.worst_slack).hex()
        summary["worst_slack_ps"] = slack.worst_slack_ps
        summary["worst_slack_endpoint"] = slack.worst_endpoint
        summary["slack_violations"] = slack.violations
        summary["total_negative_slack"] = slack.total_negative_slack
        summary["slack_met"] = slack.met
    stats = result.cache_stats or {}
    if stats.get("solver_tier") == "screened":
        # Tier counters live on the session's shared calculator, so they
        # are cumulative across the session's runs (like the arc cache
        # itself): clients difference successive responses for per-run
        # figures.
        summary["solver_tier"] = stats["solver_tier"]
        summary["tier_counts"] = dict(stats.get("tier_counts", {}))
        summary["escalations"] = dict(stats.get("escalations", {}))
        summary["screen_hits"] = stats.get("screen_hits", 0)
    return summary


class Session:
    """One open design with warm analysis state (see module docstring).

    Not internally synchronized: callers serialize access through
    ``lock`` (the service dispatcher does).
    """

    def __init__(
        self,
        session_id: str,
        spec: str,
        design: Design,
        config: StaConfig,
        obs: Observability,
        checkpoint_path: str | None = None,
        scale: float = 0.05,
        overrides: dict | None = None,
        committed_edits: list[dict] | None = None,
    ):
        self.session_id = session_id
        self.spec = spec
        self.design = design
        self.obs = obs
        self.checkpoint_path = checkpoint_path
        if checkpoint_path is not None:
            config = replace(config, checkpoint=checkpoint_path)
        self.config = config
        # Replication descriptor: everything a replacement shard needs to
        # rebuild this session bit-identically (see repro.service.handoff).
        self.scale = float(scale)
        self.overrides = dict(overrides) if overrides else None
        self.committed_edits: list[dict] = list(committed_edits or [])
        self.sta = CrosstalkSTA(design, config, obs=obs, keep_propagators=True)
        self.lock = threading.Lock()
        self.results: dict[AnalysisMode, StaResult] = {}
        self._exposures: dict[AnalysisMode, list] = {}
        self.queries = 0
        self.whatifs = 0
        self.opened_at = time.monotonic()
        self.last_used = self.opened_at
        metrics = obs.metrics
        self._c_whatif_dirty = metrics.counter("service.whatif.dirty_arcs")
        self._c_whatif_reused = metrics.counter("service.whatif.reused_arcs")

    def _mode(self, mode: str | None) -> AnalysisMode:
        if mode is None:
            return self.config.mode
        try:
            return AnalysisMode(mode)
        except ValueError:
            raise InputError(
                f"unknown mode {mode!r}; have {[m.value for m in AnalysisMode]}"
            )

    # -- queries -------------------------------------------------------------

    def analyze(self, mode: str | None = None, force: bool = False) -> StaResult:
        """Run (or return the cached) analysis for one mode.

        The first call per mode pays the full price; repeats are served
        from the cached result, and a ``force`` re-run starts from the
        retained propagator's warm memo, so it re-anchors rather than
        re-solves.
        """
        resolved = self._mode(mode)
        self.queries += 1
        cached = self.results.get(resolved)
        if cached is not None and not force:
            return cached
        result = self.sta.run(resolved)
        self.results[resolved] = result
        self._exposures.pop(resolved, None)
        return result

    def exposures(self, mode: str | None = None) -> list:
        resolved = self._mode(mode)
        result = self.analyze(resolved.value)
        cached = self._exposures.get(resolved)
        if cached is None:
            cached = rank_crosstalk_nets(
                self.design, result.final_pass, top=None, slack=result.slack
            )
            self._exposures[resolved] = cached
        return cached

    def query_net(self, net: str, mode: str | None = None) -> dict:
        """Per-net timing view: events, quiescent times, coupling, rank."""
        resolved = self._mode(mode)
        load = self.design.loads.get(net)
        if load is None:
            raise InputError(f"unknown net {net!r}")
        result = self.analyze(resolved.value)
        state = result.final_pass.state
        events = {}
        quiescent = {}
        for direction in (RISING, FALLING):
            event = state.event(net, direction)
            events[direction] = (
                None
                if event is None
                else {
                    "t_cross": event.t_cross,
                    "t_cross_hex": float(event.t_cross).hex(),
                    "transition": event.transition,
                    "t_early": event.t_early,
                    "t_late": event.t_late,
                }
            )
            quiescent[direction] = _finite(state.quiet_time(net, direction))
        exposure = next((e for e in self.exposures(resolved.value) if e.net == net), None)
        rank = None
        if exposure is not None:
            rank = self.exposures(resolved.value).index(exposure) + 1
        return {
            "session": self.session_id,
            "mode": resolved.value,
            "net": net,
            "events": events,
            "quiescent": quiescent,
            "c_fixed": load.c_fixed,
            "couplings": dict(load.couplings),
            "coupling_cap_total": load.c_coupling_total,
            "exposure": exposure_to_dict(exposure) if exposure is not None else None,
            "rank": rank,
        }

    def query_path(self, mode: str | None = None) -> dict:
        """The worst path of one mode's analysis, as the export dict."""
        resolved = self._mode(mode)
        result = self.analyze(resolved.value)
        payload = path_to_dict(self.sta.critical_path(result))
        payload["session"] = self.session_id
        payload["mode"] = resolved.value
        payload["delay_hex"] = float(payload["delay"]).hex()
        return payload

    def explain(self, mode: str | None = None, paths: int = 1, top: int = 10) -> dict:
        """Worst-path breakdown with provenance (``repro.explain/1``).

        Validated before it leaves the session: stage contributions must
        telescope bit-exactly onto the reported path delay.
        """
        resolved = self._mode(mode)
        result = self.analyze(resolved.value)
        payload = explain_result(
            self.design.circuit, result, k=paths, top=top
        )
        validate_explain(payload)
        payload["session"] = self.session_id
        return payload

    def whatif(self, edit: dict, mode: str | None = None, commit: bool = False) -> dict:
        """Apply an ECO edit, re-analyze incrementally, report the delta.

        Transactional: the session's design, analyzer and cached results
        are replaced only when the analysis of the edited design
        succeeded *and* the client asked to ``commit``; any failure (bad
        edit, solver fault, degradation budget) leaves the session
        exactly as it was.
        """
        resolved = self._mode(mode)
        self.queries += 1
        baseline = self.analyze(resolved.value)
        edited_design, normalized = apply_edit(self.design, edit)
        config = replace(self.config, mode=resolved, checkpoint=None)
        after_sta = CrosstalkSTA(
            edited_design,
            config,
            calculator=self.sta.calculator,
            obs=self.obs,
            keep_propagators=True,
        )
        after_sta.warm_start_from(self.sta)
        after = after_sta.run()
        self.whatifs += 1
        dirty = sum(r.dirty_arcs for r in after.history)
        reused = sum(r.reused_arcs for r in after.history)
        self._c_whatif_dirty.inc(dirty)
        self._c_whatif_reused.inc(reused)
        if commit:
            self.design = edited_design
            self.sta = after_sta
            self.config = config
            self.results = {resolved: after}
            self._exposures = {}
            self.committed_edits.append(dict(normalized))
            self._drop_checkpoint()
        delta = after.longest_delay - baseline.longest_delay
        return {
            "session": self.session_id,
            "mode": resolved.value,
            "edit": normalized,
            "committed": bool(commit),
            "before": result_summary(baseline),
            "after": result_summary(after),
            "delta": {
                "longest_delay": delta,
                "longest_delay_ns": delta * 1e9,
                "improvement_ps": -delta * 1e12,
            },
        }

    def repair(
        self,
        mode: str | None = None,
        target_slack: float = 0.0,
        max_edits: int = 8,
        beam: int = 3,
        guard_tracks: int = 1,
        dont_touch: list[str] | None = None,
        cold_verify: bool = False,
    ) -> dict:
        """Autonomous crosstalk repair over this session's warm state.

        Delegates to :func:`repro.flow.optimizer.repair_session`: every
        candidate is evaluated through :meth:`whatif` (warm, dirty-cone
        only) and only strict worst-slack improvements are committed, so
        the session ends on the best design the loop found and
        ``committed_edits`` carries the full replayable edit list.
        """
        from repro.flow.optimizer import repair_session, validate_repair

        transcript = repair_session(
            self,
            mode=mode,
            target_slack=target_slack,
            max_edits=max_edits,
            beam=beam,
            guard_tracks=guard_tracks,
            dont_touch=dont_touch,
            cold_verify=cold_verify,
        )
        validate_repair(transcript)
        return transcript

    def _drop_checkpoint(self) -> None:
        """A committed edit changed the design; the stored baseline
        checkpoint no longer describes this session and must not be
        resumable (its filename is keyed by the *original* design)."""
        if self.checkpoint_path is not None:
            try:
                os.unlink(self.checkpoint_path)
            except FileNotFoundError:
                pass
            self.checkpoint_path = None

    def handoff(self) -> dict:
        """The checksummed replication payload for this session (what the
        fleet router replays onto a replacement shard on failover)."""
        return encode_handoff(
            self.session_id,
            self.spec,
            self.scale,
            self.overrides,
            self.committed_edits,
        )

    def info(self) -> dict:
        circuit = self.design.circuit
        coupling_pairs = (
            sum(len(load.couplings) for load in self.design.loads.values()) // 2
        )
        return {
            "session": self.session_id,
            "spec": self.spec,
            "design": self.design.name,
            "cells": circuit.cell_count(),
            "nets": len(circuit.nets),
            "coupling_pairs": coupling_pairs,
            "mode": self.config.mode.value,
            "engine": self.config.engine.value,
            "window_check": self.config.window_check.value,
            "incremental": self.config.incremental,
            "checkpoint": self.checkpoint_path,
            "analyzed_modes": sorted(m.value for m in self.results),
            "queries": self.queries,
            "whatifs": self.whatifs,
            "committed_edits": len(self.committed_edits),
        }

    def stats(self) -> dict:
        return {
            "session": self.session_id,
            "design": self.design.name,
            "queries": self.queries,
            "whatifs": self.whatifs,
            "analyzed_modes": sorted(m.value for m in self.results),
            "uptime_seconds": time.monotonic() - self.opened_at,
        }


class SessionManager:
    """Bounded registry of open sessions with LRU eviction."""

    def __init__(
        self,
        config: StaConfig | None = None,
        max_sessions: int = 8,
        checkpoint_dir: str | None = None,
        obs: Observability | None = None,
    ):
        if max_sessions < 1:
            raise InputError("max_sessions must be positive")
        self.config = config if config is not None else StaConfig()
        self.max_sessions = max_sessions
        self.checkpoint_dir = checkpoint_dir
        self.obs = obs if obs is not None else Observability.disabled()
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        self._lock = threading.Lock()
        metrics = self.obs.metrics
        self._g_sessions = metrics.gauge("service.sessions")
        self._g_sessions.set(0)
        self._c_opened = metrics.counter("service.sessions_opened")
        self._c_evicted = metrics.counter("service.sessions_evicted")

    def _checkpoint_path(self, spec: str, scale: float, design: Design, config: StaConfig) -> str | None:
        if self.checkpoint_dir is None or config.mode is not AnalysisMode.ITERATIVE:
            return None
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        digest = hashlib.sha256(
            f"{spec}|{float(scale).hex()}|{config!r}|{design_digest(design)}".encode()
        ).hexdigest()[:24]
        return os.path.join(self.checkpoint_dir, f"{digest}.ckpt")

    def open(
        self, netlist: str, scale: float = 0.05, config: dict | None = None
    ) -> Session:
        """Load and prepare a design, register a session for it."""
        session_config_ = session_config(self.config, config)
        circuit = resolve_circuit(netlist, scale)
        design = prepare_design(circuit)
        session = Session(
            session_id=uuid.uuid4().hex[:12],
            spec=netlist,
            design=design,
            config=session_config_,
            obs=self.obs,
            checkpoint_path=self._checkpoint_path(
                netlist, scale, design, session_config_
            ),
            scale=scale,
            overrides=config,
        )
        self._register(session)
        return session

    def restore(self, body: dict) -> Session:
        """Rebuild a session from a decoded handoff body (failover replay).

        Everything -- circuit, physical design, committed-edit replay,
        the session object itself -- is built *aside* before anything is
        registered, so a failure at any point (bad spec, inapplicable
        edit) leaves the manager, including any live session under the
        same id, exactly as it was: a handoff can reject, never
        half-restore.  The restored session keeps the handoff's session
        id, and an unedited iterative session re-attaches to the shared
        checkpoint file the dead owner wrote (same spec/config/digest
        key), so its first analyze resumes from the last completed pass.
        """
        session_config_ = session_config(self.config, body["config"])
        circuit = resolve_circuit(body["spec"], body["scale"])
        design = prepare_design(circuit)
        for edit in body["edits"]:
            design, _ = apply_edit(design, edit)
        # A committed edit invalidated the original checkpoint (the
        # session dropped it on commit); only pristine sessions resume.
        checkpoint_path = (
            self._checkpoint_path(body["spec"], body["scale"], design, session_config_)
            if not body["edits"]
            else None
        )
        session = Session(
            session_id=body["session"],
            spec=body["spec"],
            design=design,
            config=session_config_,
            obs=self.obs,
            checkpoint_path=checkpoint_path,
            scale=body["scale"],
            overrides=body["config"],
            committed_edits=body["edits"],
        )
        self._register(session)
        return session

    def _register(self, session: Session) -> None:
        """Insert (or atomically replace, on same-id restore) a fully
        built session, applying the LRU bound."""
        evicted: list[Session] = []
        with self._lock:
            self._sessions.pop(session.session_id, None)
            self._sessions[session.session_id] = session
            while len(self._sessions) > self.max_sessions:
                _, lru = self._sessions.popitem(last=False)
                evicted.append(lru)
            self._g_sessions.set(len(self._sessions))
        self._c_opened.inc()
        if evicted:
            self._c_evicted.inc(len(evicted))

    def get(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise ServiceError(
                    ERR_UNKNOWN_SESSION, f"unknown session {session_id!r}"
                )
            self._sessions.move_to_end(session_id)
        session.last_used = time.monotonic()
        return session

    def close(self, session_id: str) -> dict:
        with self._lock:
            session = self._sessions.pop(session_id, None)
            if session is None:
                raise ServiceError(
                    ERR_UNKNOWN_SESSION, f"unknown session {session_id!r}"
                )
            self._g_sessions.set(len(self._sessions))
        return session.stats()

    def close_all(self) -> int:
        with self._lock:
            count = len(self._sessions)
            self._sessions.clear()
            self._g_sessions.set(0)
        return count

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def ids(self) -> list[str]:
        with self._lock:
            return list(self._sessions)

    def values(self) -> list[Session]:
        """Open sessions without touching LRU order (for ``stats``)."""
        with self._lock:
            return list(self._sessions.values())
