"""Fleet router: the consistent-hash front door with warm failover.

The router speaks the same newline-delimited JSON protocol as a single
:class:`~repro.service.server.TimingServer` -- clients cannot tell a
fleet from one server -- and forwards session-bound methods to the
shard that owns the session's placement key.

**Replication.** The router keeps, per session, the same descriptor a
:func:`~repro.service.handoff.encode_handoff` payload carries: spec,
bit-exact scale, config overrides, and the ordered log of *committed*
what-if edits (appended from each successful ``whatif`` response).  It
never holds solver state -- the engine is deterministic, so replaying
the descriptor on any shard rebuilds the session bit-identically.

**Failover.** When the link to a shard drops (process death, reset, an
injected drop), the router marks the shard down, re-homes each of its
sessions on first touch -- ring walk over the *alive* shards, then an
``import_session`` replay of the handoff payload -- and retries the
caller's request there.  A shard that restarted and answers 404 for a
session the router knows gets the same replay.  If no shard is alive
the request is answered ``busy`` (429) with ``retry_after``, so a
retrying client (``call_with_retry``) rides out recovery with zero
failed requests.  A handoff the receiving shard rejects as corrupt
(``CheckpointError``) is re-encoded once from the router's record --
detection is the shard's job, recovery is the router's.

**Admission.** Before forwarding, the router checks its own in-flight
count against the shard's capacity (``workers + queue_limit``) and
rejects over-capacity requests with the same 429/``retry_after``
taxonomy the shard executor uses, so backpressure is enforced one hop
earlier and a saturated shard's queue never hides inside socket
buffers.

Every request lands in the JSONL access log with its shard; failover,
shard-down/up and handoff-retry events are logged in the same stream
(``"event"`` records), which is what the CI fleet-smoke job asserts on.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import math
import threading
import time
from typing import Any, Callable

from repro import __version__
from repro.errors import InputError
from repro.obs import Observability, render_prometheus
from repro.service.fleet import Fleet, HashRing, placement_key
from repro.service.handoff import decode_handoff, encode_handoff
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_BUSY,
    ERR_INTERNAL,
    ERR_UNKNOWN_METHOD,
    ERR_UNKNOWN_SESSION,
    FLEET_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    ServiceCallError,
    ServiceError,
    ServiceTransportError,
    decode_request,
    encode_error,
    encode_request,
    encode_response,
    error_payload,
)


class ShardLinkDown(ServiceTransportError):
    """The router's connection to a shard failed mid-call."""


class ShardLink:
    """One pipelined async connection from the router to a shard.

    Requests are matched to responses by id, so many forwarded calls
    share the connection concurrently.  When the connection dies, every
    pending call fails with :class:`ShardLinkDown` -- the router's
    failover trigger.
    """

    def __init__(self, index: int, address: str):
        self.index = index
        self.address = address
        self.in_flight = 0
        self.closed = False
        self.dropped = False  # fault injection: simulated link drop
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None

    async def connect(self) -> None:
        host, _, port = self.address.rpartition(":")
        self._reader, self._writer = await asyncio.open_connection(
            host, int(port), limit=2**20
        )
        self._reader_task = asyncio.create_task(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    payload = json.loads(line)
                except ValueError:
                    continue
                future = self._pending.pop(payload.get("id"), None)
                if future is None or future.done():
                    continue
                error = payload.get("error")
                if error is not None:
                    future.set_exception(
                        ServiceCallError(
                            code=error.get("code", ERR_INTERNAL),
                            kind=error.get("kind", "internal_fault"),
                            message=error.get("message", ""),
                            data=error.get("data") or {},
                        )
                    )
                else:
                    future.set_result(payload.get("result", {}))
        except (OSError, asyncio.IncompleteReadError, ValueError):
            pass
        finally:
            self.closed = True
            self._fail_pending(
                ShardLinkDown(f"link to shard {self.index} ({self.address}) is down")
            )

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def call(self, method: str, params: dict | None = None) -> dict:
        if self.dropped:
            raise ShardLinkDown(f"link to shard {self.index} dropped (injected)")
        if self.closed or self._writer is None:
            raise ShardLinkDown(f"link to shard {self.index} is closed")
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self.in_flight += 1
        try:
            try:
                self._writer.write(encode_request(request_id, method, params))
                await self._writer.drain()
            except (OSError, RuntimeError) as exc:
                self.closed = True
                self._pending.pop(request_id, None)
                raise ShardLinkDown(
                    f"write to shard {self.index} failed: {exc}"
                ) from exc
            return await future
        finally:
            self.in_flight -= 1

    async def close(self) -> None:
        self.closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reader_task
        if self._writer is not None:
            with contextlib.suppress(Exception):
                self._writer.close()
                await self._writer.wait_closed()
        self._fail_pending(ShardLinkDown(f"link to shard {self.index} closed"))


class _SessionRecord:
    """Router-side state of one fleet session: owner + replication log."""

    __slots__ = ("session_id", "shard", "spec", "scale", "config", "edits",
                 "lock", "failovers")

    def __init__(self, session_id: str, shard: int, spec: str, scale: float,
                 config: dict | None):
        self.session_id = session_id
        self.shard = shard
        self.spec = spec
        self.scale = float(scale)
        self.config = dict(config) if config else None
        self.edits: list[dict] = []
        self.lock = asyncio.Lock()
        self.failovers = 0


# Methods forwarded to the session's owning shard (all carry "session").
_SESSION_METHODS = frozenset({
    "session_info", "analyze", "query_net", "query_path", "net_report",
    "explain", "whatif", "repair", "export_session",
})


class FleetRouter:
    """Protocol-compatible front end over a :class:`Fleet` (see module
    docstring for routing, replication, failover and admission)."""

    def __init__(
        self,
        fleet: Fleet,
        access_log: str | None = None,
        obs: Observability | None = None,
        ring_replicas: int = 64,
    ):
        self.fleet = fleet
        self.options = fleet.options
        self.obs = obs if obs is not None else Observability.disabled()
        self.access_log = access_log
        self._access_lock = threading.Lock()
        self.ring = HashRing(ring_replicas)
        for index in fleet.shards:
            self.ring.add(index)
        self.alive: set[int] = set(fleet.shards)
        self.links: dict[int, ShardLink] = {}
        self._link_locks: dict[int, asyncio.Lock] = {}
        self.sessions: dict[str, _SessionRecord] = {}
        self.started_at = time.monotonic()
        self.stopping = False
        self.on_stop: Callable[[], None] | None = None
        # Fault injection: arm via repro.testing.faults.corrupt_handoff.
        self.handoff_fault: dict | None = None
        self.failovers = 0
        self.shard_deaths = 0
        self.handoff_retries = 0
        self._request_ids = itertools.count(1)
        self._server: asyncio.AbstractServer | None = None
        self._client_writers: set[asyncio.StreamWriter] = set()
        self._connections: set[asyncio.Task] = set()
        self.host = ""
        self.port = 0
        metrics = self.obs.metrics
        self._c_requests = metrics.counter("fleet.requests")
        self._c_rejected = metrics.counter("fleet.requests_rejected")
        self._c_failovers = metrics.counter("fleet.failovers")
        self._c_deaths = metrics.counter("fleet.shard_deaths")
        self._c_replays = metrics.counter("fleet.session_replays")

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- shard liveness (supervisor callbacks + internal detection) ----------

    async def mark_down(self, index: int, reason: str = "link down") -> None:
        if index in self.alive:
            self.alive.discard(index)
            self.shard_deaths += 1
            self._c_deaths.inc()
            self._log_event({"event": "shard_down", "shard": index,
                             "reason": reason})
        link = self.links.pop(index, None)
        if link is not None:
            await link.close()

    async def mark_up(self, index: int) -> None:
        if index not in self.alive:
            self.alive.add(index)
            self._log_event({"event": "shard_up", "shard": index})
        if index not in self.ring.shards():
            self.ring.add(index)

    async def _link(self, index: int) -> ShardLink:
        link = self.links.get(index)
        if link is not None and not link.closed:
            return link
        # Serialize per-shard reconnects: after a failover a burst of
        # session calls all want the survivor's link, and racing creates
        # would leak every overwritten link's reader task.
        async with self._link_locks.setdefault(index, asyncio.Lock()):
            link = self.links.get(index)
            if link is not None and not link.closed:
                return link
            if link is not None:
                await link.close()  # reap the stale link's reader task
            link = ShardLink(index, self.fleet.address(index))
            try:
                await link.connect()
            except OSError as exc:
                raise ShardLinkDown(
                    f"cannot connect to shard {index} at {link.address}: {exc}"
                ) from exc
            self.links[index] = link
            return link

    # -- placement, admission, failover --------------------------------------

    def _placement(self, spec: str, scale: float) -> int:
        owner = self.ring.owner(placement_key(spec, scale), self.alive)
        if owner is None:
            raise ServiceError(
                ERR_BUSY,
                "no live shard available (fleet is recovering)",
                retry_after=1.0,
            )
        return owner

    def _admit(self, index: int) -> None:
        link = self.links.get(index)
        in_flight = link.in_flight if link is not None and not link.closed else 0
        capacity = self.options.shard_capacity
        if in_flight >= capacity:
            self._c_rejected.inc()
            waves = math.ceil(
                max(in_flight - self.options.workers + 1, 1) / self.options.workers
            )
            raise ServiceError(
                ERR_BUSY,
                f"shard {index} at capacity ({in_flight} in flight, "
                f"capacity {capacity})",
                retry_after=max(0.1, 0.5 * waves),
                shard=index,
            )

    def _encode_payload(self, record: _SessionRecord) -> dict:
        payload = encode_handoff(
            record.session_id, record.spec, record.scale, record.config,
            record.edits,
        )
        fault = self.handoff_fault
        if fault and fault.get("times", 0) > 0:
            fault["times"] -= 1
            payload = json.loads(json.dumps(payload))  # corrupt a copy
            if fault.get("mode", "bitflip") == "truncate":
                payload["body"].pop("edits", None)  # torn mid-handoff
            else:
                head = payload["checksum"][0]
                payload["checksum"] = (
                    ("0" if head != "0" else "1") + payload["checksum"][1:]
                )
        return payload

    async def _replay(self, record: _SessionRecord, index: int) -> None:
        """Rebuild ``record``'s session on shard ``index`` from the
        router's replication log.  A corrupt-in-flight payload the shard
        rejects (CheckpointError) is re-encoded fresh and retried once."""
        link = await self._link(index)
        self._c_replays.inc()
        try:
            await link.call(
                "import_session", {"payload": self._encode_payload(record)}
            )
        except ServiceCallError as exc:
            if exc.data.get("exception") != "CheckpointError":
                raise
            self.handoff_retries += 1
            self._log_event({
                "event": "handoff_retry", "session": record.session_id,
                "shard": index, "error": str(exc),
            })
            await link.call(
                "import_session",
                {"payload": encode_handoff(
                    record.session_id, record.spec, record.scale,
                    record.config, record.edits,
                )},
            )

    async def _failover(self, record: _SessionRecord) -> None:
        """Re-home ``record`` onto a live shard and replay its state."""
        target = self._placement(record.spec, record.scale)
        await self._replay(record, target)
        self.failovers += 1
        record.failovers += 1
        self._c_failovers.inc()
        self._log_event({
            "event": "failover", "session": record.session_id,
            "from_shard": record.shard, "to_shard": target,
            "edits_replayed": len(record.edits),
        })
        record.shard = target

    async def _call_session(
        self, method: str, params: dict, record: _SessionRecord
    ) -> dict:
        async with record.lock:
            for _attempt in range(2):
                if record.shard not in self.alive:
                    await self._failover(record)
                index = record.shard
                self._admit(index)
                try:
                    link = await self._link(index)
                    result = await link.call(method, params)
                except ShardLinkDown as exc:
                    await self.mark_down(index, reason=str(exc))
                    continue
                except ServiceCallError as exc:
                    if exc.code != ERR_UNKNOWN_SESSION:
                        raise
                    # The shard restarted (or evicted) and lost the warm
                    # session the router still owns: replay it in place.
                    await self._replay(record, index)
                    result = await link.call(method, params)
                if method == "whatif" and result.get("committed"):
                    record.edits.append(dict(result["edit"]))
                if method == "repair":
                    # A repair run commits a whole batch of edits shard-side;
                    # append them to the replication log in order so a
                    # failover replays the repaired design bit-identically.
                    for edit in result.get("committed_edits", []):
                        record.edits.append(dict(edit))
                return result
            raise ServiceError(
                ERR_BUSY,
                f"session {record.session_id!r} is failing over; retry",
                retry_after=0.5,
            )

    # -- method handlers -----------------------------------------------------

    async def handle(self, method: str, params: dict) -> dict:
        self._c_requests.inc()
        if method in _SESSION_METHODS:
            session_id = params.get("session")
            record = (
                self.sessions.get(session_id)
                if isinstance(session_id, str) else None
            )
            if record is None:
                raise ServiceError(
                    ERR_UNKNOWN_SESSION, f"unknown session {session_id!r}"
                )
            return await self._call_session(method, params, record)
        handler = {
            "ping": self._m_ping,
            "open_session": self._m_open_session,
            "import_session": self._m_import_session,
            "close_session": self._m_close_session,
            "list_sessions": self._m_list_sessions,
            "stats": self._m_stats,
            "metrics": self._m_metrics,
            "shutdown": self._m_shutdown,
        }.get(method)
        if handler is None:
            raise ServiceError(
                ERR_UNKNOWN_METHOD,
                f"unknown method {method!r}; have "
                f"{sorted(_SESSION_METHODS | {'ping', 'open_session', 'import_session', 'close_session', 'list_sessions', 'stats', 'metrics', 'shutdown'})}",
            )
        return await handler(params)

    async def _m_ping(self, params: dict) -> dict:
        return {
            "protocol": FLEET_PROTOCOL_VERSION,
            "service_protocol": PROTOCOL_VERSION,
            "version": __version__,
            "uptime_seconds": time.monotonic() - self.started_at,
            "shards": len(self.fleet.shards),
            "alive": sorted(self.alive),
            "sessions": len(self.sessions),
            "failovers": self.failovers,
        }

    async def _m_open_session(self, params: dict) -> dict:
        spec = params.get("netlist")
        if not isinstance(spec, str) or not spec:
            raise InputError("missing required parameter 'netlist'")
        scale = params.get("scale", 0.05)
        if not isinstance(scale, (int, float)) or isinstance(scale, bool):
            raise InputError("parameter 'scale' must be a float")
        config = params.get("config")
        for _attempt in range(2):
            index = self._placement(spec, scale)
            self._admit(index)
            try:
                link = await self._link(index)
                result = await link.call("open_session", params)
            except ShardLinkDown as exc:
                await self.mark_down(index, reason=str(exc))
                continue
            record = _SessionRecord(
                result["session"], index, spec, float(scale), config
            )
            self.sessions[record.session_id] = record
            result["shard"] = index
            result["fleet_protocol"] = FLEET_PROTOCOL_VERSION
            return result
        raise ServiceError(
            ERR_BUSY,
            "no shard accepted open_session (fleet is recovering)",
            retry_after=0.5,
        )

    async def _m_import_session(self, params: dict) -> dict:
        """Adopt an externally exported session into the fleet: validate
        the payload here (reject before any placement), then replay it
        onto its placement owner."""
        payload = params.get("payload")
        body = decode_handoff(payload)
        record = _SessionRecord(
            body["session"], -1, body["spec"], body["scale"], body["config"]
        )
        record.edits = list(body["edits"])
        async with record.lock:
            index = self._placement(record.spec, record.scale)
            link = await self._link(index)
            result = await link.call("import_session", {"payload": payload})
            record.shard = index
        self.sessions[record.session_id] = record
        result["shard"] = index
        result["fleet_protocol"] = FLEET_PROTOCOL_VERSION
        return result

    async def _m_close_session(self, params: dict) -> dict:
        session_id = params.get("session")
        record = (
            self.sessions.get(session_id) if isinstance(session_id, str) else None
        )
        if record is None:
            raise ServiceError(
                ERR_UNKNOWN_SESSION, f"unknown session {session_id!r}"
            )
        async with record.lock:
            self.sessions.pop(session_id, None)
            try:
                link = await self._link(record.shard)
                return await link.call("close_session", params)
            except (ShardLinkDown, ServiceCallError):
                # The owner is gone; the fleet-level close still succeeds
                # (the session will not be failed over -- it is forgotten).
                return {"session": session_id, "shard_unreachable": True}

    async def _m_list_sessions(self, params: dict) -> dict:
        return {"sessions": sorted(self.sessions)}

    async def _m_stats(self, params: dict) -> dict:
        """Fleet-wide introspection: one row per shard plus aggregates."""
        rows = []
        totals = {"sessions": 0, "in_flight": 0, "queue_depth": 0}
        for index in sorted(self.fleet.shards):
            handle = self.fleet.shards[index]
            link = self.links.get(index)
            row: dict[str, Any] = {
                "shard": index,
                "address": self.fleet.address(index),
                "alive": index in self.alive,
                "restarts": handle.restarts,
                "router_in_flight": (
                    link.in_flight if link is not None and not link.closed else 0
                ),
            }
            if index in self.alive:
                try:
                    pong = await (await self._link(index)).call("ping")
                except (ShardLinkDown, ServiceCallError):
                    row["alive"] = False
                else:
                    row.update({
                        "sessions": pong.get("sessions"),
                        "in_flight": pong.get("in_flight"),
                        "queue_depth": pong.get("queue_depth"),
                        "capacity": pong.get("capacity"),
                        "uptime_seconds": pong.get("uptime_seconds"),
                    })
                    for key in totals:
                        value = pong.get(key)
                        if isinstance(value, (int, float)):
                            totals[key] += value
            rows.append(row)
        return {
            "fleet": {
                "protocol": FLEET_PROTOCOL_VERSION,
                "shards": len(self.fleet.shards),
                "alive": sum(1 for row in rows if row["alive"]),
                "sessions": len(self.sessions),
                "failovers": self.failovers,
                "shard_deaths": self.shard_deaths,
                "handoff_retries": self.handoff_retries,
                **totals,
            },
            "shards": rows,
            "router": {
                "uptime_seconds": time.monotonic() - self.started_at,
                "address": self.address,
            },
        }

    async def _m_metrics(self, params: dict) -> dict:
        fmt = params.get("format", "json")
        snapshot = self.obs.metrics.snapshot()
        if fmt == "prometheus":
            return {"exposition": render_prometheus(snapshot)}
        if fmt != "json":
            raise InputError(
                f"unknown metrics format {fmt!r}; have ['json', 'prometheus']"
            )
        return {"snapshot": snapshot}

    async def _m_shutdown(self, params: dict) -> dict:
        self.stopping = True
        if self.on_stop is not None:
            self.on_stop()
        return {"stopping": True, "sessions": len(self.sessions)}

    # -- socket front end ----------------------------------------------------

    async def start_server(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, host=host, port=port, limit=2**20
        )
        self.host = host
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop_server(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Close client connections so their read loops see EOF and exit
        # cleanly instead of being cancelled with the loop.
        for writer in list(self._client_writers):
            with contextlib.suppress(Exception):
                writer.close()
        if self._connections:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(*self._connections, return_exceptions=True),
                    10.0,
                )
        for link in list(self.links.values()):
            await link.close()
        self.links.clear()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        connection = asyncio.current_task()
        if connection is not None:
            self._connections.add(connection)
        self._client_writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._write(
                        writer, write_lock,
                        encode_error(None, ServiceError(
                            ERR_BAD_REQUEST, "request line too long"
                        )),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._handle_line(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._client_writers.discard(writer)
            if connection is not None:
                self._connections.discard(connection)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id: Any = None
        rid = f"fleet-req-{next(self._request_ids)}"
        method: str | None = None
        session_param: str | None = None
        outcome, code = "ok", None
        t0 = time.perf_counter()
        try:
            request_id, method, params = decode_request(line)
            raw_session = params.get("session")
            if isinstance(raw_session, str):
                session_param = raw_session
            result = await self.handle(method, params)
            payload = encode_response(request_id, result)
        except Exception as exc:  # answered, never disconnects
            payload = encode_error(request_id, exc)
            outcome = "error"
            code = error_payload(exc)["code"]
        record = (
            self.sessions.get(session_param) if session_param is not None else None
        )
        self._log_access({
            "ts": time.time(),
            "request_id": rid,
            "method": method,
            "session": session_param,
            "shard": record.shard if record is not None else None,
            "elapsed_s": time.perf_counter() - t0,
            "outcome": outcome,
            "code": code,
        })
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            await self._write(writer, write_lock, payload)

    def _log_event(self, record: dict) -> None:
        record = {"ts": time.time(), **record}
        self._log_access(record)

    def _log_access(self, record: dict) -> None:
        if self.access_log is None:
            return
        text = json.dumps(record, sort_keys=True) + "\n"
        with self._access_lock:
            with open(self.access_log, "a") as handle:
                handle.write(text)

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter, lock: asyncio.Lock, payload: bytes
    ) -> None:
        async with lock:
            writer.write(payload)
            await writer.drain()
