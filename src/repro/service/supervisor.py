"""Shard supervision: liveness probes and capped-backoff restarts.

The supervisor sweeps the fleet on a fixed interval.  A shard counts as
healthy when its process is alive *and* it answers a liveness ``ping``
on a fresh connection within the probe deadline -- the server answers
deadline-free pings on its event loop, bypassing executor admission, so
a shard saturated with long solves still proves it is alive and is
never killed for being busy.  A SIGSTOP'd (hung) shard, by contrast,
cannot answer and is treated exactly like a dead one.

Death handling: after ``failure_threshold`` consecutive failed probes
(one suffices when the process itself is gone) the shard is declared
down -- the router stops routing to it and fails its sessions over on
first touch -- then killed outright (a hung process would otherwise
keep its port) and restarted after a capped exponential backoff.  The
backoff attempt counter resets once a restarted shard passes a probe,
so an occasionally-crashing shard recovers fast while a crash-looping
one backs off to the cap instead of burning CPU on restart churn.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time

from repro.service.fleet import Fleet, ShardHandle
from repro.service.protocol import encode_request
from repro.service.router import FleetRouter


class ShardSupervisor:
    """Health-checks shards, declares deaths, restarts with backoff."""

    def __init__(
        self,
        fleet: Fleet,
        router: FleetRouter,
        interval: float = 0.5,
        probe_timeout: float = 2.0,
        failure_threshold: int = 2,
        backoff_base: float = 0.5,
        backoff_cap: float = 10.0,
    ):
        self.fleet = fleet
        self.router = router
        self.interval = interval
        self.probe_timeout = probe_timeout
        self.failure_threshold = failure_threshold
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._failures: dict[int, int] = {}
        self._attempts: dict[int, int] = {}
        self._restart_at: dict[int, float] = {}
        self.restarts = 0

    async def run(self, stop: asyncio.Event) -> None:
        """Sweep until ``stop`` is set (the runtime's shutdown event)."""
        while not stop.is_set():
            await self._sweep()
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(stop.wait(), self.interval)

    async def _sweep(self) -> None:
        for index in sorted(self.fleet.shards):
            handle = self.fleet.shards[index]
            if index in self.router.alive:
                await self._check(index, handle)
            elif time.monotonic() >= self._restart_at.get(index, 0.0):
                await self._restart(index)

    async def _check(self, index: int, handle: ShardHandle) -> None:
        process_alive = handle.process.is_alive()
        if process_alive and await self._probe(index):
            self._failures[index] = 0
            self._attempts[index] = 0
            return
        self._failures[index] = self._failures.get(index, 0) + 1
        # A vanished process needs no second opinion; an unresponsive one
        # gets failure_threshold probes before the kill (transient stalls
        # -- GC, a loaded host -- should not trigger failover).
        threshold = 1 if not process_alive else self.failure_threshold
        if self._failures[index] >= threshold:
            await self._declare_dead(index, handle, process_alive)

    async def _probe(self, index: int) -> bool:
        """Liveness ping on a fresh connection (a shared link could be
        poisoned by the very failure we are probing for)."""
        host, _, port = self.fleet.address(index).rpartition(":")
        writer = None
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, int(port)), self.probe_timeout
            )
            writer.write(encode_request("probe", "ping", {}))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), self.probe_timeout)
            if not line:
                return False
            return "result" in json.loads(line)
        except (OSError, asyncio.TimeoutError, ValueError):
            return False
        finally:
            if writer is not None:
                with contextlib.suppress(Exception):
                    writer.close()
                    await writer.wait_closed()

    async def _declare_dead(
        self, index: int, handle: ShardHandle, process_alive: bool
    ) -> None:
        reason = "probe failures" if process_alive else "process death"
        await self.router.mark_down(index, reason=reason)
        if process_alive:
            # Hung (e.g. SIGSTOP'd) processes hold their port; reclaim it.
            handle.process.kill()
        await asyncio.to_thread(handle.process.join, 5.0)
        attempts = self._attempts.get(index, 0)
        delay = min(self.backoff_cap, self.backoff_base * (2.0 ** attempts))
        self._attempts[index] = attempts + 1
        self._restart_at[index] = time.monotonic() + delay
        self._failures[index] = 0

    async def _restart(self, index: int) -> None:
        try:
            await asyncio.to_thread(self.fleet.spawn, index)
        except Exception:
            # Spawn itself failed (fork pressure, port exhaustion): back
            # off further and try again next sweep cycle.
            attempts = self._attempts.get(index, 1)
            delay = min(self.backoff_cap, self.backoff_base * (2.0 ** attempts))
            self._attempts[index] = attempts + 1
            self._restart_at[index] = time.monotonic() + delay
            return
        self.restarts += 1
        await self.router.mark_up(index)
