"""ECO edit vocabulary of the what-if path (compatibility shim).

The edit-application logic lives in :mod:`repro.flow.edits` so the
service what-if handler, the repair optimizer and the batch flow helpers
share one path; this module re-exports it under the historical service
location.
"""

from __future__ import annotations

from repro.flow.edits import EDIT_ACTIONS, apply_edit, edit_nets

__all__ = ["EDIT_ACTIONS", "apply_edit", "edit_nets"]
