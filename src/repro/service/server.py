"""The timing-query service: dispatcher and asyncio socket server.

:class:`TimingService` is the transport-independent half -- a method
registry over a :class:`~repro.service.session.SessionManager` and a
:class:`~repro.service.executor.RequestExecutor`.  It is what the
in-process client calls directly and what the socket server feeds.

:class:`TimingServer` speaks the newline-delimited JSON protocol of
:mod:`repro.service.protocol` over TCP or a Unix socket.  Each request
line becomes its own task, so one connection can pipeline requests and
receive responses out of order (matched by ``id``); writes per
connection are serialized.  Every failure -- malformed line, unknown
method, engine error, deadline, backpressure -- is answered with a
structured error object; the server never answers a request by
disconnecting.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import os
import signal
import threading
import time
from typing import Any, Callable

from repro import __version__
from repro.core.modes import StaConfig
from repro.core.netreport import net_report_payload
from repro.errors import InputError
from repro.obs import Observability, render_prometheus
from repro.service.executor import RequestExecutor
from repro.service.handoff import decode_handoff
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_UNKNOWN_METHOD,
    PROTOCOL_VERSION,
    ServiceError,
    decode_request,
    encode_error,
    encode_response,
    error_payload,
)
from repro.service.session import SessionManager, result_summary

_MISSING = object()


def _param(params: dict, key: str, types, default=_MISSING):
    value = params.get(key, _MISSING)
    if value is _MISSING or value is None:
        if default is _MISSING:
            raise InputError(f"missing required parameter {key!r}")
        return default
    if types is float and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, types) or (
        types in (int, float) and isinstance(value, bool)
    ):
        want = types.__name__ if isinstance(types, type) else "value"
        raise InputError(f"parameter {key!r} must be a {want}")
    return value


class TimingService:
    """Transport-independent dispatcher over persistent design sessions."""

    def __init__(
        self,
        config: StaConfig | None = None,
        max_sessions: int = 8,
        checkpoint_dir: str | None = None,
        workers: int = 4,
        queue_limit: int = 8,
        default_deadline: float | None = None,
        obs: Observability | None = None,
    ):
        self.obs = obs if obs is not None else Observability.disabled()
        self.sessions = SessionManager(
            config=config,
            max_sessions=max_sessions,
            checkpoint_dir=checkpoint_dir,
            obs=self.obs,
        )
        self.executor = RequestExecutor(
            workers=workers,
            queue_limit=queue_limit,
            default_deadline=default_deadline,
            obs=self.obs,
        )
        self.started_at = time.monotonic()
        self.shutdown_requested = False
        # The socket server installs a callback here to wake its loop.
        self.on_shutdown: Callable[[], None] | None = None
        self._request_ids = itertools.count(1)
        self._methods: dict[str, Callable[[dict], dict]] = {
            "ping": self._m_ping,
            "open_session": self._m_open_session,
            "list_sessions": self._m_list_sessions,
            "session_info": self._m_session_info,
            "analyze": self._m_analyze,
            "query_net": self._m_query_net,
            "query_path": self._m_query_path,
            "net_report": self._m_net_report,
            "explain": self._m_explain,
            "whatif": self._m_whatif,
            "repair": self._m_repair,
            "export_session": self._m_export_session,
            "import_session": self._m_import_session,
            "close_session": self._m_close_session,
            "metrics": self._m_metrics,
            "stats": self._m_stats,
            "shutdown": self._m_shutdown,
        }

    def methods(self) -> list[str]:
        return sorted(self._methods)

    def next_request_id(self) -> str:
        """A service-wide unique request id (``req-N``)."""
        return f"req-{next(self._request_ids)}"

    def dispatch(self, method: str, params: dict) -> dict:
        """Execute one request (synchronously; called on a worker)."""
        handler = self._methods.get(method)
        if handler is None:
            raise ServiceError(
                ERR_UNKNOWN_METHOD,
                f"unknown method {method!r}; have {self.methods()}",
            )
        return handler(params)

    def traced_dispatch(self, method: str, params: dict, request_id: str) -> dict:
        """Dispatch wrapped in a ``service.request`` span carrying the
        request id.  Runs on the worker thread, so every span the
        analysis opens becomes a child of this one -- that is what lets
        the server extract one request's complete span subtree."""
        with self.obs.tracer.span(
            "service.request", request_id=request_id, method=method
        ):
            return self.dispatch(method, params)

    def close(self) -> None:
        self.sessions.close_all()
        self.executor.shutdown(wait=True)

    # -- method handlers (each runs under the executor) ----------------------

    def _session(self, params: dict):
        return self.sessions.get(_param(params, "session", str))

    def _m_ping(self, params: dict) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "version": __version__,
            "uptime_seconds": time.monotonic() - self.started_at,
            "sessions": len(self.sessions),
            "in_flight": self.executor.pending,
            "capacity": self.executor.capacity,
            "queue_depth": self.executor.queue_depth,
        }

    def _m_open_session(self, params: dict) -> dict:
        netlist = _param(params, "netlist", str)
        scale = _param(params, "scale", float, 0.05)
        overrides = _param(params, "config", dict, None)
        session = self.sessions.open(netlist, scale=scale, config=overrides)
        info = session.info()
        info["protocol"] = PROTOCOL_VERSION
        return info

    def _m_list_sessions(self, params: dict) -> dict:
        return {"sessions": self.sessions.ids()}

    def _m_session_info(self, params: dict) -> dict:
        session = self._session(params)
        with session.lock:
            return session.info()

    def _m_analyze(self, params: dict) -> dict:
        session = self._session(params)
        mode = _param(params, "mode", str, None)
        force = _param(params, "force", bool, False)
        with session.lock:
            return result_summary(session.analyze(mode, force=force))

    def _m_query_net(self, params: dict) -> dict:
        session = self._session(params)
        net = _param(params, "net", str)
        mode = _param(params, "mode", str, None)
        with session.lock:
            return session.query_net(net, mode)

    def _m_query_path(self, params: dict) -> dict:
        session = self._session(params)
        mode = _param(params, "mode", str, None)
        with session.lock:
            return session.query_path(mode)

    def _m_net_report(self, params: dict) -> dict:
        session = self._session(params)
        mode = _param(params, "mode", str, None)
        top = _param(params, "top", int, 20)
        with session.lock:
            result = session.analyze(mode)
            exposures = session.exposures(mode)[:top]
            payload = net_report_payload(
                session.design, result.final_pass, exposures=exposures
            )
        payload["session"] = session.session_id
        payload["mode"] = result.mode.value
        return payload

    def _m_whatif(self, params: dict) -> dict:
        session = self._session(params)
        edit = _param(params, "edit", dict)
        mode = _param(params, "mode", str, None)
        commit = _param(params, "commit", bool, False)
        with session.lock:
            return session.whatif(edit, mode=mode, commit=commit)

    def _m_repair(self, params: dict) -> dict:
        """Autonomous crosstalk repair over the session's warm state.

        Candidates are evaluated through the transactional what-if path
        (commit only on strict worst-slack improvement); the response is
        the ``repro.repair/1`` transcript, whose ``committed_edits``
        list the fleet router appends to the session's replication log.
        """
        session = self._session(params)
        mode = _param(params, "mode", str, None)
        target_slack = _param(params, "target_slack", float, 0.0)
        max_edits = _param(params, "max_edits", int, 8)
        beam = _param(params, "beam", int, 3)
        guard_tracks = _param(params, "guard_tracks", int, 1)
        dont_touch = _param(params, "dont_touch", list, None)
        cold_verify = _param(params, "cold_verify", bool, False)
        if dont_touch is not None and not all(
            isinstance(n, str) for n in dont_touch
        ):
            raise InputError("parameter 'dont_touch' must be a list of net names")
        with session.lock:
            return session.repair(
                mode=mode,
                target_slack=target_slack,
                max_edits=max_edits,
                beam=beam,
                guard_tracks=guard_tracks,
                dont_touch=dont_touch,
                cold_verify=cold_verify,
            )

    def _m_explain(self, params: dict) -> dict:
        session = self._session(params)
        mode = _param(params, "mode", str, None)
        paths = _param(params, "paths", int, 1)
        top = _param(params, "top", int, 10)
        with session.lock:
            return session.explain(mode, paths=paths, top=top)

    def _m_export_session(self, params: dict) -> dict:
        """The session's checksummed replication payload (fleet handoff)."""
        session = self._session(params)
        with session.lock:
            return {"payload": session.handoff()}

    def _m_import_session(self, params: dict) -> dict:
        """Rebuild a session from a handoff payload (failover replay).

        The payload is validated (checksum, format, shape) *before* any
        state is touched -- a truncated or corrupt handoff raises
        ``CheckpointError`` (wire code 500) and leaves this shard's
        sessions, including any live one under the same id, untouched.
        """
        payload = _param(params, "payload", dict)
        body = decode_handoff(payload)
        session = self.sessions.restore(body)
        info = session.info()
        info["protocol"] = PROTOCOL_VERSION
        info["restored_edits"] = len(body["edits"])
        return info

    def _m_close_session(self, params: dict) -> dict:
        return self.sessions.close(_param(params, "session", str))

    def _m_metrics(self, params: dict) -> dict:
        fmt = _param(params, "format", str, "json")
        snapshot = self.obs.metrics.snapshot()
        if fmt == "prometheus":
            return {"exposition": render_prometheus(snapshot)}
        if fmt != "json":
            raise InputError(
                f"unknown metrics format {fmt!r}; have ['json', 'prometheus']"
            )
        return {"snapshot": snapshot}

    def _m_stats(self, params: dict) -> dict:
        """Service introspection: sessions with their warm-state sizes,
        executor depth, and registry size."""
        sessions = []
        for session in self.sessions.values():
            with session.lock:
                stats = session.stats()
                cache = session.sta.calculator.cache_stats()
                stats["arc_cache"] = {
                    key: value
                    for key, value in cache.items()
                    if isinstance(value, (int, float, str, bool))
                }
                memo: dict[str, int] = {}
                ledger_rows: dict[str, int] = {}
                for cfg, propagator in session.sta._propagators.items():
                    mode = cfg.mode.value
                    memo[mode] = memo.get(mode, 0) + propagator.memo_arcs
                    ledger_rows[mode] = ledger_rows.get(mode, 0) + len(
                        propagator.ledger
                    )
                stats["memo_arcs"] = memo
                stats["ledger_rows"] = ledger_rows
            sessions.append(stats)
        snapshot = self.obs.metrics.snapshot()
        return {
            "uptime_seconds": time.monotonic() - self.started_at,
            "sessions": sessions,
            "executor": {
                "workers": self.executor.workers,
                "capacity": self.executor.capacity,
                "pending": self.executor.pending,
            },
            "metrics_series": {
                kind: len(series) for kind, series in snapshot.items()
            },
        }

    def _m_shutdown(self, params: dict) -> dict:
        self.shutdown_requested = True
        if self.on_shutdown is not None:
            self.on_shutdown()
        return {"stopping": True, "sessions_closed": len(self.sessions)}


class TimingServer:
    """Asyncio front-end: newline-delimited JSON over TCP or Unix socket."""

    def __init__(
        self,
        service: TimingService,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: str | None = None,
        access_log: str | None = None,
        trace_dir: str | None = None,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.socket_path = socket_path
        # Structured JSONL access log: one record per request with the
        # request id, method, session, queue wait, solve time, outcome.
        self.access_log = access_log
        self._access_lock = threading.Lock()
        # Per-request span-subtree export: <trace_dir>/<request_id>.jsonl
        # (request ids are unique, so concurrent sessions never clobber
        # or interleave each other's streams).
        self.trace_dir = trace_dir
        if trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        self._tasks: set[asyncio.Task] = set()
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        service.on_shutdown = self._request_stop_threadsafe
        self._loop: asyncio.AbstractEventLoop | None = None

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"{self.host}:{self.port}"

    def _request_stop_threadsafe(self) -> None:
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(self._stop.set)

    def request_stop(self) -> None:
        """Begin the drain-then-close shutdown (loop-thread callers:
        signal handlers, supervisors).  Idempotent."""
        self._stop.set()

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        if self.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.socket_path, limit=2**20
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port, limit=2**20
            )
            self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` request (or :meth:`stop`) arrives,
        then drain in-flight requests and close."""
        if self._server is None:
            await self.start()
        await self._stop.wait()
        await self.stop()

    async def stop(self, drain_timeout: float = 30.0) -> None:
        self._stop.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._tasks:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(*self._tasks, return_exceptions=True),
                    drain_timeout,
                )
        # Close every connection so the per-client read loops see EOF and
        # exit on their own (no task is left to be cancelled by the loop).
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        if self._connections:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(*self._connections, return_exceptions=True),
                    drain_timeout,
                )
        self.service.close()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self._writers.add(writer)
        try:
            while not self._stop.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._write(
                        writer,
                        write_lock,
                        encode_error(
                            None, ServiceError(ERR_BAD_REQUEST, "request line too long")
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._handle_line(line, writer, write_lock)
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._connections.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id: Any = None
        rid = self.service.next_request_id()
        method: str | None = None
        session_param: str | None = None
        info: dict = {}
        outcome, code = "ok", None
        try:
            request_id, method, params = decode_request(line)
            raw_session = params.get("session")
            if isinstance(raw_session, str):
                session_param = raw_session
            deadline = params.pop("deadline", None)
            if deadline is not None and (
                not isinstance(deadline, (int, float))
                or isinstance(deadline, bool)
                or deadline <= 0
            ):
                raise ServiceError(
                    ERR_BAD_REQUEST, "'deadline' must be a positive number of seconds"
                )
            if method == "ping" and deadline is None:
                # Liveness fast path: answered on the event loop itself,
                # bypassing executor admission -- a shard saturated with
                # long solves still proves its loop is alive, so fleet
                # health checks never kill a merely-busy shard.
                result = self.service.dispatch(method, params)
            else:
                result = await self.service.executor.submit(
                    lambda: self.service.traced_dispatch(method, params, rid),
                    method=method,
                    deadline=deadline,
                    info=info,
                )
            payload = encode_response(request_id, result)
        except Exception as exc:  # answered, never disconnects
            payload = encode_error(request_id, exc)
            outcome = "error"
            code = error_payload(exc)["code"]
        self._log_access(rid, method, session_param, info, outcome, code)
        self._export_request_trace(rid)
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            await self._write(writer, write_lock, payload)

    def _log_access(
        self,
        rid: str,
        method: str | None,
        session: str | None,
        info: dict,
        outcome: str,
        code: int | None,
    ) -> None:
        if self.access_log is None:
            return
        record = {
            "ts": time.time(),
            "request_id": rid,
            "method": method,
            "session": session,
            "queue_wait_s": info.get("queue_wait_s"),
            "solve_s": info.get("solve_s"),
            "outcome": outcome,
            "code": code,
        }
        text = json.dumps(record, sort_keys=True) + "\n"
        with self._access_lock:
            with open(self.access_log, "a") as handle:
                handle.write(text)

    def _export_request_trace(self, rid: str) -> None:
        """Write this request's span subtree to its own JSONL file.

        Children record themselves before their parent closes and carry
        ``parent_id`` links, so walking parent links from the
        ``service.request`` root selects exactly the spans of this
        request even when the shared tracer interleaves many requests.
        """
        tracer = self.service.obs.tracer
        if self.trace_dir is None or not tracer.enabled:
            return
        events = tracer.events
        selected = [
            e for e in events if e.get("args", {}).get("request_id") == rid
        ]
        if not selected:
            return
        ids = {e["span_id"] for e in selected}
        remaining = [e for e in events if e["span_id"] not in ids]
        grew = True
        while grew:
            grew = False
            still: list[dict] = []
            for event in remaining:
                if event.get("parent_id") in ids:
                    ids.add(event["span_id"])
                    selected.append(event)
                    grew = True
                else:
                    still.append(event)
            remaining = still
        selected.sort(key=lambda e: e["ts"])
        path = os.path.join(self.trace_dir, f"{rid}.jsonl")
        with open(path, "w") as handle:
            for event in selected:
                handle.write(json.dumps(event, sort_keys=True) + "\n")

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter, lock: asyncio.Lock, payload: bytes
    ) -> None:
        async with lock:
            writer.write(payload)
            await writer.drain()


def install_signal_handlers(server: TimingServer) -> None:
    """Route SIGTERM/SIGINT into the drain-then-close shutdown path.

    A signalled server finishes its in-flight requests and exits 0 --
    the same path a clean ``shutdown`` RPC takes -- instead of dying
    mid-solve with a traceback.  Must be called from the event loop's
    (main) thread; on platforms without loop signal handlers this is a
    silent no-op and the default KeyboardInterrupt path applies.
    """
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            loop.add_signal_handler(signum, server.request_stop)


async def serve(
    service: TimingService,
    host: str = "127.0.0.1",
    port: int = 0,
    socket_path: str | None = None,
    ready: Callable[[TimingServer], None] | None = None,
    access_log: str | None = None,
    trace_dir: str | None = None,
    handle_signals: bool = True,
) -> None:
    """Start a server, report readiness, run until shutdown."""
    server = TimingServer(
        service,
        host=host,
        port=port,
        socket_path=socket_path,
        access_log=access_log,
        trace_dir=trace_dir,
    )
    await server.start()
    if handle_signals:
        install_signal_handlers(server)
    if ready is not None:
        ready(server)
    await server.serve_until_shutdown()
