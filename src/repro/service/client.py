"""Clients for the timing-query service.

:class:`ServiceClient` speaks the wire protocol over TCP or a Unix
socket -- one blocking request/response at a time (use one client per
thread; connections are cheap).  :class:`InProcessClient` wraps a
:class:`~repro.service.server.TimingService` directly with the *same*
call surface and error semantics (failures raise
:class:`~repro.service.protocol.ServiceCallError` in both), so tests and
embedding tools can switch transports without changing code.

Both clients honour backpressure: ``call_with_retry`` retries ``busy``
(429) rejections after the server-advised ``retry_after`` delay.
"""

from __future__ import annotations

import socket
import time
from typing import Any

from repro.errors import ReproError
from repro.service.protocol import (
    ERR_BUSY,
    ServiceCallError,
    decode_response,
    encode_request,
    error_payload,
)
from repro.service.server import TimingService


class _CallSurface:
    """Shared convenience methods over ``call``."""

    def call(self, method: str, params: dict | None = None) -> dict:
        raise NotImplementedError

    def call_with_retry(
        self,
        method: str,
        params: dict | None = None,
        max_retries: int = 8,
        max_wait: float = 60.0,
    ) -> dict:
        """Like :meth:`call`, but waits out ``busy`` rejections using the
        server's ``retry_after`` advice (bounded by ``max_wait``)."""
        waited = 0.0
        for attempt in range(max_retries + 1):
            try:
                return self.call(method, params)
            except ServiceCallError as exc:
                if exc.code != ERR_BUSY or attempt == max_retries:
                    raise
                delay = exc.retry_after if exc.retry_after is not None else 0.5
                if waited + delay > max_wait:
                    raise
                time.sleep(delay)
                waited += delay
        raise AssertionError("unreachable")

    # -- method wrappers -----------------------------------------------------

    def ping(self) -> dict:
        return self.call("ping")

    def open_session(
        self,
        netlist: str,
        scale: float = 0.05,
        config: dict | None = None,
    ) -> dict:
        params: dict[str, Any] = {"netlist": netlist, "scale": scale}
        if config is not None:
            params["config"] = config
        return self.call("open_session", params)

    def list_sessions(self) -> list[str]:
        return self.call("list_sessions")["sessions"]

    def session_info(self, session: str) -> dict:
        return self.call("session_info", {"session": session})

    def analyze(
        self,
        session: str,
        mode: str | None = None,
        force: bool = False,
        deadline: float | None = None,
    ) -> dict:
        params: dict[str, Any] = {"session": session, "force": force}
        if mode is not None:
            params["mode"] = mode
        if deadline is not None:
            params["deadline"] = deadline
        return self.call("analyze", params)

    def query_net(self, session: str, net: str, mode: str | None = None) -> dict:
        params: dict[str, Any] = {"session": session, "net": net}
        if mode is not None:
            params["mode"] = mode
        return self.call("query_net", params)

    def query_path(self, session: str, mode: str | None = None) -> dict:
        params: dict[str, Any] = {"session": session}
        if mode is not None:
            params["mode"] = mode
        return self.call("query_path", params)

    def net_report(
        self, session: str, mode: str | None = None, top: int = 20
    ) -> dict:
        params: dict[str, Any] = {"session": session, "top": top}
        if mode is not None:
            params["mode"] = mode
        return self.call("net_report", params)

    def whatif(
        self,
        session: str,
        edit: dict,
        mode: str | None = None,
        commit: bool = False,
        deadline: float | None = None,
    ) -> dict:
        params: dict[str, Any] = {"session": session, "edit": edit, "commit": commit}
        if mode is not None:
            params["mode"] = mode
        if deadline is not None:
            params["deadline"] = deadline
        return self.call("whatif", params)

    def explain(
        self,
        session: str,
        mode: str | None = None,
        paths: int = 1,
        top: int = 10,
    ) -> dict:
        params: dict[str, Any] = {"session": session, "paths": paths, "top": top}
        if mode is not None:
            params["mode"] = mode
        return self.call("explain", params)

    def close_session(self, session: str) -> dict:
        return self.call("close_session", {"session": session})

    def metrics(self) -> dict:
        return self.call("metrics")["snapshot"]

    def metrics_text(self) -> str:
        """The Prometheus text exposition of the server's registry."""
        return self.call("metrics", {"format": "prometheus"})["exposition"]

    def stats(self) -> dict:
        return self.call("stats")

    def shutdown(self) -> dict:
        return self.call("shutdown")


class ServiceClient(_CallSurface):
    """Blocking socket client.  ``address`` is ``host:port`` or
    ``unix:/path/to.sock``."""

    def __init__(self, address: str, timeout: float | None = 120.0):
        self.address = address
        if address.startswith("unix:"):
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(address[len("unix:") :])
        else:
            host, _, port = address.rpartition(":")
            if not host or not port.isdigit():
                raise ReproError(
                    f"bad service address {address!r}; want host:port or unix:/path"
                )
            self._sock = socket.create_connection((host, int(port)), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    def call(self, method: str, params: dict | None = None) -> dict:
        self._next_id += 1
        request_id = self._next_id
        self._file.write(encode_request(request_id, method, params))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ReproError(f"service at {self.address} closed the connection")
        response_id, result = decode_response(line)
        if response_id != request_id:
            raise ReproError(
                f"response id {response_id!r} does not match request {request_id!r}"
            )
        return result

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InProcessClient(_CallSurface):
    """Same-process client: dispatches straight into the service (no
    sockets, no event loop) while keeping wire error semantics --
    every failure surfaces as :class:`ServiceCallError` built from the
    exact error payload a socket client would have received.  Requests
    still pass the executor's admission control; deadlines do not apply
    (the caller blocks on its own call)."""

    def __init__(self, service: TimingService):
        self.service = service

    def call(self, method: str, params: dict | None = None) -> dict:
        params = dict(params or {})
        params.pop("deadline", None)
        request_id = self.service.next_request_id()
        try:
            return self.service.executor.run_sync(
                lambda: self.service.traced_dispatch(method, params, request_id),
                method=method,
            )
        except Exception as exc:
            error = error_payload(exc)
            raise ServiceCallError(
                code=error["code"],
                kind=error["kind"],
                message=error["message"],
                data=error["data"],
            ) from exc

    def close(self) -> None:  # symmetry with ServiceClient
        pass

    def __enter__(self) -> "InProcessClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
