"""Clients for the timing-query service.

:class:`ServiceClient` speaks the wire protocol over TCP or a Unix
socket -- one blocking request/response at a time (use one client per
thread; connections are cheap).  :class:`InProcessClient` wraps a
:class:`~repro.service.server.TimingService` directly with the *same*
call surface and error semantics (failures raise
:class:`~repro.service.protocol.ServiceCallError` in both), so tests and
embedding tools can switch transports without changing code.

Both clients honour backpressure: ``call_with_retry`` retries ``busy``
(429) rejections with capped exponential backoff plus full jitter,
never sleeping less than the server-advised ``retry_after``.  The
socket client additionally retries *transport* failures (connection
reset, server closed mid-call) by reconnecting -- against a fleet
router this is what makes shard failover invisible to callers.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any

from repro.errors import ReproError
from repro.service.protocol import (
    ERR_BUSY,
    ServiceCallError,
    ServiceTransportError,
    decode_response,
    encode_request,
    error_payload,
)
from repro.service.server import TimingService


def backoff_delay(
    attempt: int,
    floor: float = 0.0,
    base: float = 0.1,
    cap: float = 5.0,
    rng: random.Random | None = None,
) -> float:
    """Capped exponential backoff with full jitter.

    The jittered draw is uniform on ``[0, min(cap, base * 2**attempt)]``
    (full jitter decorrelates retry herds after a fleet-wide event), and
    a server-supplied ``retry_after`` acts as a *floor* -- the server
    knows its queue better than the client's clock does.
    """
    draw = (rng or random).uniform(0.0, min(cap, base * (2.0 ** attempt)))
    return max(floor, draw)


class _CallSurface:
    """Shared convenience methods over ``call``."""

    def call(self, method: str, params: dict | None = None) -> dict:
        raise NotImplementedError

    def _reconnect(self) -> bool:
        """Try to re-establish the transport; False when not applicable."""
        return False

    def call_with_retry(
        self,
        method: str,
        params: dict | None = None,
        max_retries: int = 8,
        max_wait: float = 60.0,
        base_delay: float = 0.1,
        max_delay: float = 5.0,
        rng: random.Random | None = None,
    ) -> dict:
        """Like :meth:`call`, but waits out ``busy`` (429) rejections and
        transport drops with jittered exponential backoff (total sleep
        bounded by ``max_wait``).  Transport failures are retried only
        if :meth:`_reconnect` succeeds -- against a fleet router the new
        connection transparently re-routes to the failed-over shard."""
        waited = 0.0
        for attempt in range(max_retries + 1):
            retry_floor = 0.0
            try:
                return self.call(method, params)
            except ServiceCallError as exc:
                if exc.code != ERR_BUSY or attempt == max_retries:
                    raise
                if exc.retry_after is not None:
                    retry_floor = exc.retry_after
                failure: ReproError = exc
            except ServiceTransportError as exc:
                if attempt == max_retries or not self._reconnect():
                    raise
                failure = exc
            delay = backoff_delay(
                attempt, floor=retry_floor, base=base_delay, cap=max_delay, rng=rng
            )
            if waited + delay > max_wait:
                raise failure
            time.sleep(delay)
            waited += delay
        raise AssertionError("unreachable")

    # -- method wrappers -----------------------------------------------------

    def ping(self) -> dict:
        return self.call("ping")

    def open_session(
        self,
        netlist: str,
        scale: float = 0.05,
        config: dict | None = None,
    ) -> dict:
        params: dict[str, Any] = {"netlist": netlist, "scale": scale}
        if config is not None:
            params["config"] = config
        return self.call("open_session", params)

    def list_sessions(self) -> list[str]:
        return self.call("list_sessions")["sessions"]

    def session_info(self, session: str) -> dict:
        return self.call("session_info", {"session": session})

    def analyze(
        self,
        session: str,
        mode: str | None = None,
        force: bool = False,
        deadline: float | None = None,
    ) -> dict:
        params: dict[str, Any] = {"session": session, "force": force}
        if mode is not None:
            params["mode"] = mode
        if deadline is not None:
            params["deadline"] = deadline
        return self.call("analyze", params)

    def query_net(self, session: str, net: str, mode: str | None = None) -> dict:
        params: dict[str, Any] = {"session": session, "net": net}
        if mode is not None:
            params["mode"] = mode
        return self.call("query_net", params)

    def query_path(self, session: str, mode: str | None = None) -> dict:
        params: dict[str, Any] = {"session": session}
        if mode is not None:
            params["mode"] = mode
        return self.call("query_path", params)

    def net_report(
        self, session: str, mode: str | None = None, top: int = 20
    ) -> dict:
        params: dict[str, Any] = {"session": session, "top": top}
        if mode is not None:
            params["mode"] = mode
        return self.call("net_report", params)

    def whatif(
        self,
        session: str,
        edit: dict,
        mode: str | None = None,
        commit: bool = False,
        deadline: float | None = None,
    ) -> dict:
        params: dict[str, Any] = {"session": session, "edit": edit, "commit": commit}
        if mode is not None:
            params["mode"] = mode
        if deadline is not None:
            params["deadline"] = deadline
        return self.call("whatif", params)

    def repair(
        self,
        session: str,
        mode: str | None = None,
        target_slack: float = 0.0,
        max_edits: int = 8,
        beam: int = 3,
        guard_tracks: int = 1,
        dont_touch: list[str] | None = None,
        cold_verify: bool = False,
        deadline: float | None = None,
    ) -> dict:
        """Run the autonomous crosstalk-repair loop on a warm session;
        returns the ``repro.repair/1`` transcript."""
        params: dict[str, Any] = {
            "session": session,
            "target_slack": target_slack,
            "max_edits": max_edits,
            "beam": beam,
            "guard_tracks": guard_tracks,
            "cold_verify": cold_verify,
        }
        if mode is not None:
            params["mode"] = mode
        if dont_touch is not None:
            params["dont_touch"] = list(dont_touch)
        if deadline is not None:
            params["deadline"] = deadline
        return self.call("repair", params)

    def explain(
        self,
        session: str,
        mode: str | None = None,
        paths: int = 1,
        top: int = 10,
    ) -> dict:
        params: dict[str, Any] = {"session": session, "paths": paths, "top": top}
        if mode is not None:
            params["mode"] = mode
        return self.call("explain", params)

    def close_session(self, session: str) -> dict:
        return self.call("close_session", {"session": session})

    def export_session(self, session: str) -> dict:
        """The session's handoff payload (see :mod:`repro.service.handoff`)."""
        return self.call("export_session", {"session": session})["payload"]

    def import_session(self, payload: dict) -> dict:
        """Rebuild a session from a handoff payload on this server."""
        return self.call("import_session", {"payload": payload})

    def metrics(self) -> dict:
        return self.call("metrics")["snapshot"]

    def metrics_text(self) -> str:
        """The Prometheus text exposition of the server's registry."""
        return self.call("metrics", {"format": "prometheus"})["exposition"]

    def stats(self) -> dict:
        return self.call("stats")

    def shutdown(self) -> dict:
        return self.call("shutdown")


class ServiceClient(_CallSurface):
    """Blocking socket client.  ``address`` is ``host:port`` or
    ``unix:/path/to.sock``."""

    def __init__(self, address: str, timeout: float | None = 120.0):
        self.address = address
        self.timeout = timeout
        self._next_id = 0
        self._connect()

    def _connect(self) -> None:
        if self.address.startswith("unix:"):
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(self.timeout)
            self._sock.connect(self.address[len("unix:") :])
        else:
            host, _, port = self.address.rpartition(":")
            if not host or not port.isdigit():
                raise ReproError(
                    f"bad service address {self.address!r}; want host:port or unix:/path"
                )
            self._sock = socket.create_connection(
                (host, int(port)), timeout=self.timeout
            )
        self._file = self._sock.makefile("rwb")

    def _reconnect(self) -> bool:
        try:
            self.close()
        except OSError:
            pass
        try:
            self._connect()
        except OSError:
            return False
        return True

    def call(self, method: str, params: dict | None = None) -> dict:
        self._next_id += 1
        request_id = self._next_id
        try:
            self._file.write(encode_request(request_id, method, params))
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            raise ServiceTransportError(
                f"service at {self.address}: transport failure: {exc}"
            ) from exc
        if not line:
            raise ServiceTransportError(
                f"service at {self.address} closed the connection"
            )
        response_id, result = decode_response(line)
        if response_id != request_id:
            raise ReproError(
                f"response id {response_id!r} does not match request {request_id!r}"
            )
        return result

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InProcessClient(_CallSurface):
    """Same-process client: dispatches straight into the service (no
    sockets, no event loop) while keeping wire error semantics --
    every failure surfaces as :class:`ServiceCallError` built from the
    exact error payload a socket client would have received.  Requests
    still pass the executor's admission control; deadlines do not apply
    (the caller blocks on its own call)."""

    def __init__(self, service: TimingService):
        self.service = service

    def call(self, method: str, params: dict | None = None) -> dict:
        params = dict(params or {})
        params.pop("deadline", None)
        request_id = self.service.next_request_id()
        try:
            return self.service.executor.run_sync(
                lambda: self.service.traced_dispatch(method, params, request_id),
                method=method,
            )
        except Exception as exc:
            error = error_payload(exc)
            raise ServiceCallError(
                code=error["code"],
                kind=error["kind"],
                message=error["message"],
                data=error["data"],
            ) from exc

    def close(self) -> None:  # symmetry with ServiceClient
        pass

    def __enter__(self) -> "InProcessClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
