"""Session handoff payloads: warm-session replication for the fleet.

A handoff payload is everything a *replacement* shard needs to rebuild a
session whose owning shard died: the netlist specifier, the scale, the
client's config overrides and the ordered log of committed ECO edits.
It deliberately carries no solver state -- the analysis engine is
deterministic, so replaying the descriptor reproduces the dead shard's
session bit-identically, and iterative sessions additionally resume
their per-pass state from the shared checkpoint directory
(:mod:`repro.core.checkpoint`), whose filenames are keyed by the design
digest and therefore survive the shard that wrote them.

Like the PR 3 checkpoint format, the payload is self-validating: a
SHA-256 checksum over the canonical JSON body detects truncation and
bit rot, and every shape violation raises :class:`CheckpointError` (the
taxonomy's persistent-state error) *before* any session state is
touched -- a corrupt handoff can reject, never half-restore.
"""

from __future__ import annotations

import hashlib
import json

from repro.errors import CheckpointError

HANDOFF_FORMAT = 1

# Keys every payload body must carry (types checked in decode_handoff).
_REQUIRED = ("format", "session", "spec", "scale", "config", "edits")


def _body_checksum(body: dict) -> str:
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def encode_handoff(
    session_id: str,
    spec: str,
    scale: float,
    config: dict | None,
    edits: list[dict],
) -> dict:
    """Build the wire form of one session's replication descriptor.

    ``scale`` travels as ``float.hex()`` so the replacement shard
    resolves the *bit-identical* circuit the original opened.
    """
    body = {
        "format": HANDOFF_FORMAT,
        "session": session_id,
        "spec": spec,
        "scale": float(scale).hex(),
        "config": dict(config) if config else None,
        "edits": [dict(edit) for edit in edits],
    }
    return {"body": body, "checksum": _body_checksum(body)}


def decode_handoff(payload) -> dict:
    """Validate a handoff payload and return its body.

    Raises :class:`CheckpointError` on *any* damage -- missing keys
    (truncation), checksum mismatch (bit rot, corruption in flight),
    wrong format, wrong types.  Nothing is restored from a payload that
    fails here.
    """
    if not isinstance(payload, dict):
        raise CheckpointError("handoff payload must be an object")
    body = payload.get("body")
    checksum = payload.get("checksum")
    if not isinstance(body, dict) or not isinstance(checksum, str):
        raise CheckpointError("handoff payload truncated: needs 'body' and 'checksum'")
    if _body_checksum(body) != checksum:
        raise CheckpointError("handoff payload checksum mismatch (corrupt in flight)")
    missing = [key for key in _REQUIRED if key not in body]
    if missing:
        raise CheckpointError(f"handoff body truncated: missing {missing}")
    if body["format"] != HANDOFF_FORMAT:
        raise CheckpointError(
            f"unknown handoff format {body['format']!r} (want {HANDOFF_FORMAT})"
        )
    if not isinstance(body["session"], str) or not body["session"]:
        raise CheckpointError("handoff 'session' must be a non-empty string")
    if not isinstance(body["spec"], str) or not body["spec"]:
        raise CheckpointError("handoff 'spec' must be a non-empty string")
    try:
        scale = float.fromhex(body["scale"])
    except (TypeError, ValueError):
        raise CheckpointError("handoff 'scale' must be a float.hex() string")
    if body["config"] is not None and not isinstance(body["config"], dict):
        raise CheckpointError("handoff 'config' must be an object or null")
    if not isinstance(body["edits"], list) or not all(
        isinstance(edit, dict) for edit in body["edits"]
    ):
        raise CheckpointError("handoff 'edits' must be a list of edit objects")
    decoded = dict(body)
    decoded["scale"] = scale
    return decoded


def loads_handoff(text: str | bytes) -> dict:
    """Parse a serialized handoff payload (e.g. from a replication log).

    A torn write leaves unparsable JSON; that is classified exactly like
    in-memory damage -- :class:`CheckpointError`, never a bare
    ``ValueError`` from deep inside.
    """
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise CheckpointError(f"handoff payload is not valid JSON: {exc}")
    return decode_handoff(payload)
