"""Bounded execution layer of the timing-query service.

Analysis work is CPU-bound and runs in a small thread pool; the asyncio
event loop only parses lines and writes responses.  Three policies live
here:

* **Backpressure** -- admission is bounded by ``workers + queue_limit``
  in-flight requests.  Past that the request is rejected *immediately*
  with a ``busy`` (429) error carrying ``retry_after`` seconds, instead
  of queueing without bound; the client decides whether to wait.
* **Deadlines** -- a per-request deadline (client-supplied or the
  server default) bounds how long the *caller* waits.  The worker
  thread itself cannot be interrupted safely mid-solve, so on timeout
  the request is answered with ``deadline_exceeded`` (408) while the
  thread finishes in the background; its slot is released only when it
  actually finishes, which keeps the admission count honest.
* **Accounting** -- per-method request counters, end-to-end latency and
  queue-wait histograms, plus an in-flight gauge (see
  docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.obs import Observability
from repro.service.protocol import ERR_BUSY, ERR_DEADLINE, ServiceError

LATENCY_BUCKETS = (
    0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class RequestExecutor:
    """Bounded thread-pool bridge with admission control and deadlines."""

    def __init__(
        self,
        workers: int = 4,
        queue_limit: int = 8,
        default_deadline: float | None = None,
        obs: Observability | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.workers = workers
        self.capacity = workers + queue_limit
        self.default_deadline = default_deadline
        self.obs = obs if obs is not None else Observability.disabled()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service"
        )
        self._pending = 0
        self._lock = threading.Lock()
        metrics = self.obs.metrics
        self._g_in_flight = metrics.gauge("service.requests_in_flight")
        self._g_in_flight.set(0)
        self._c_rejected = metrics.counter("service.requests_rejected")
        self._c_deadline = metrics.counter("service.requests_deadline_exceeded")

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    @property
    def queue_depth(self) -> int:
        """Admitted requests waiting for a worker (0 when the pool keeps
        up) -- the number fleet routers watch for shard backpressure."""
        with self._lock:
            return max(0, self._pending - self.workers)

    def _admit(self) -> None:
        with self._lock:
            if self._pending >= self.capacity:
                self._c_rejected.inc()
                raise ServiceError(
                    ERR_BUSY,
                    f"server busy: {self._pending} requests in flight "
                    f"(capacity {self.capacity})",
                    retry_after=self._retry_after(self._pending),
                )
            self._pending += 1
            self._g_in_flight.set(self._pending)

    def _release(self) -> None:
        with self._lock:
            self._pending -= 1
            self._g_in_flight.set(self._pending)

    def _retry_after(self, pending: int) -> float:
        """Advisory wait before retrying a rejected request: half a
        second per queued-ahead batch of workers, floored at 0.1 s."""
        waves = math.ceil(max(pending - self.workers + 1, 1) / self.workers)
        return max(0.1, 0.5 * waves)

    def retry_after(self) -> float:
        with self._lock:
            pending = self._pending
        return self._retry_after(pending)

    def _instrument(
        self,
        fn: Callable[[], Any],
        method: str,
        admitted_at: float,
        info: dict | None,
    ) -> Callable[[], Any]:
        """Wrap ``fn`` to time its queue wait (admission to worker
        pickup) and solve time on the worker thread; the optional
        ``info`` dict receives both for the caller's access log."""
        queue_hist = self.obs.metrics.histogram(
            "service.queue_wait_seconds", boundaries=LATENCY_BUCKETS, method=method
        )

        def run() -> Any:
            started = time.perf_counter()
            wait = started - admitted_at
            queue_hist.observe(wait)
            if info is not None:
                info["queue_wait_s"] = wait
            try:
                return fn()
            finally:
                if info is not None:
                    info["solve_s"] = time.perf_counter() - started

        return run

    async def submit(
        self,
        fn: Callable[[], Any],
        method: str = "request",
        deadline: float | None = None,
        info: dict | None = None,
    ) -> Any:
        """Run ``fn`` on the pool; enforce admission and the deadline."""
        self._admit()
        metrics = self.obs.metrics
        metrics.counter("service.requests", method=method).inc()
        histogram = metrics.histogram(
            "service.latency_seconds", boundaries=LATENCY_BUCKETS, method=method
        )
        loop = asyncio.get_running_loop()
        t0 = time.perf_counter()
        future = loop.run_in_executor(
            self._pool, self._instrument(fn, method, t0, info)
        )
        # The slot is freed when the *thread* finishes, not when the
        # caller stops waiting -- a timed-out request still occupies a
        # worker, and admission control must see that.
        future.add_done_callback(lambda _f: self._release())
        if deadline is None:
            deadline = self.default_deadline
        try:
            if deadline is None:
                result = await future
            else:
                result = await asyncio.wait_for(asyncio.shield(future), deadline)
        except asyncio.TimeoutError:
            self._c_deadline.inc()
            _silence(future)
            raise ServiceError(
                ERR_DEADLINE,
                f"{method} exceeded its {deadline:g}s deadline "
                "(the analysis continues in the background; retry to reuse "
                "its warm state)",
                deadline=deadline,
            )
        finally:
            histogram.observe(time.perf_counter() - t0)
        return result

    def run_sync(
        self,
        fn: Callable[[], Any],
        method: str = "request",
        info: dict | None = None,
    ) -> Any:
        """Same admission control and accounting, for the in-process
        client (no event loop, no deadline -- the caller blocks on its
        own call, so the queue wait is effectively zero)."""
        self._admit()
        metrics = self.obs.metrics
        metrics.counter("service.requests", method=method).inc()
        histogram = metrics.histogram(
            "service.latency_seconds", boundaries=LATENCY_BUCKETS, method=method
        )
        t0 = time.perf_counter()
        try:
            return self._instrument(fn, method, t0, info)()
        finally:
            histogram.observe(time.perf_counter() - t0)
            self._release()

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)


def _silence(future: asyncio.Future) -> None:
    """Swallow the abandoned future's eventual exception (the request
    was already answered with deadline_exceeded)."""

    def _consume(f: asyncio.Future) -> None:
        if not f.cancelled():
            f.exception()

    future.add_done_callback(_consume)
