"""End-to-end design preparation (place -> route -> extract -> loads)."""

from repro.flow.design import Design, NetLoad, prepare_design
from repro.flow.repair import (
    RepairOutcome,
    adjust_coupling,
    repair_crosstalk,
    respace_nets,
    upsize_drivers,
)

__all__ = [
    "Design",
    "NetLoad",
    "RepairOutcome",
    "adjust_coupling",
    "prepare_design",
    "repair_crosstalk",
    "respace_nets",
    "upsize_drivers",
]
