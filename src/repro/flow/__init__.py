"""End-to-end design preparation (place -> route -> extract -> loads)."""

from repro.flow.design import Design, NetLoad, prepare_design
from repro.flow.edits import EDIT_ACTIONS, apply_edit, edit_nets
from repro.flow.optimizer import (
    REPAIR_SCHEMA,
    format_repair,
    repair_session,
    validate_repair,
)
from repro.flow.repair import (
    RepairOutcome,
    adjust_coupling,
    repair_crosstalk,
    respace_nets,
    upsize_drivers,
)

__all__ = [
    "Design",
    "EDIT_ACTIONS",
    "NetLoad",
    "REPAIR_SCHEMA",
    "RepairOutcome",
    "adjust_coupling",
    "apply_edit",
    "edit_nets",
    "format_repair",
    "prepare_design",
    "repair_crosstalk",
    "repair_session",
    "respace_nets",
    "upsize_drivers",
    "validate_repair",
]
