"""Crosstalk repair by spacing.

The classic fix for a crosstalk-critical wire is to give it room: route it
with guard spacing so no neighbour runs on the adjacent tracks.  This
module re-routes a design with selected victims shielded and rebuilds the
parasitics, producing a new :class:`~repro.flow.design.Design` whose
coupling on those nets is (mostly) gone -- at the cost of routing
resources elsewhere.

Together with :func:`repro.core.netreport.rank_crosstalk_nets` this closes
the analyze -> rank -> fix -> re-analyze loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.flow.design import Design, NetLoad, _net_load

if TYPE_CHECKING:  # imported lazily at runtime: repro.core imports repro.flow
    from repro.core.analyzer import StaResult
    from repro.core.modes import AnalysisMode
from repro.layout.extraction import extract
from repro.layout.routing import reroute_nets, route


@dataclass
class RepairOutcome:
    """Before/after record of one repair round."""

    repaired_nets: list[str]
    design: Design
    before_delay: float
    after_delay: float
    before_coupling: dict[str, float] = field(default_factory=dict)
    after_coupling: dict[str, float] = field(default_factory=dict)

    @property
    def improvement(self) -> float:
        return self.before_delay - self.after_delay

    def summary(self) -> str:
        lines = [
            f"repaired {len(self.repaired_nets)} nets: "
            f"{self.before_delay * 1e9:.3f} -> {self.after_delay * 1e9:.3f} ns "
            f"({self.improvement * 1e12:+.1f} ps)"
        ]
        for net in self.repaired_nets:
            before = self.before_coupling.get(net, 0.0)
            after = self.after_coupling.get(net, 0.0)
            lines.append(
                f"  {net}: C_c {before * 1e15:.2f} -> {after * 1e15:.2f} fF"
            )
        return "\n".join(lines)


def respace_nets(
    design: Design,
    nets: list[str],
    guard_tracks: int = 1,
    rip_up_only: bool = True,
) -> Design:
    """Re-route the given nets with shield spacing; placement is kept,
    extraction and loads are rebuilt.

    With ``rip_up_only`` (default) every other net keeps its geometry
    (local rip-up-and-reroute); otherwise the whole design is re-routed
    with the victims shielded first, which can perturb unrelated nets.
    """
    if rip_up_only:
        routing = reroute_nets(
            design.circuit,
            design.placement,
            design.routing,
            nets,
            guard_tracks=guard_tracks,
            technology=design.technology,
        )
    else:
        guard = {net: guard_tracks for net in nets}
        routing = route(
            design.circuit, design.placement, design.technology, guard_nets=guard
        )
    extraction = extract(routing, design.technology)
    repaired = Design(
        circuit=design.circuit,
        placement=design.placement,
        routing=routing,
        extraction=extraction,
        process=design.process,
        technology=design.technology,
    )
    for net in design.circuit.nets.values():
        repaired.loads[net.name] = _net_load(net, extraction, design.process)
    return repaired


def adjust_coupling(
    design: Design, net: str, neighbour: str, cap: float = 0.0
) -> Design:
    """Set (or, with ``cap <= 0``, drop) one coupling capacitance,
    symmetrically on both nets' load views.

    This is the cheapest what-if edit: geometry and extraction are
    untouched and shared with the source design; only the two affected
    :class:`NetLoad` entries are replaced.  It models the effect of a
    planned fix (drop) or of a suspected extraction miss (add) without
    paying for a re-route.
    """
    from repro.errors import InputError

    if design.loads.get(net) is None:
        raise InputError(f"unknown net {net!r}")
    if design.loads.get(neighbour) is None:
        raise InputError(f"unknown net {neighbour!r}")
    if net == neighbour:
        raise InputError("a net cannot couple to itself")
    if cap <= 0.0 and neighbour not in design.loads[net].couplings:
        raise InputError(f"{net!r} has no coupling entry for {neighbour!r}")

    edited = Design(
        circuit=design.circuit,
        placement=design.placement,
        routing=design.routing,
        extraction=design.extraction,
        process=design.process,
        technology=design.technology,
    )
    edited.loads.update(design.loads)
    for name, other in ((net, neighbour), (neighbour, net)):
        old = edited.loads[name]
        couplings = dict(old.couplings)
        if cap <= 0.0:
            couplings.pop(other, None)
        else:
            couplings[other] = cap
        edited.loads[name] = NetLoad(
            net=old.net,
            c_fixed=old.c_fixed,
            couplings=couplings,
            sink_elmore=dict(old.sink_elmore),
        )
    return edited


_DRIVE_ORDER = ["X1", "X2", "X4"]


def upsize_drivers(design: Design, nets: list[str], steps: int = 1) -> Design:
    """Strengthen the drivers of the given nets by ``steps`` drive classes.

    The other classic crosstalk fix: a stronger victim driver recovers
    from the coupling glitch faster (and is harder to deflect in the
    first place).  The circuit is cloned with the affected cells swapped
    to their higher-drive variants and the whole physical flow re-runs
    (cell footprints change, so placement must be redone).
    """
    from repro.flow.design import prepare_design

    source = design.circuit
    upsized: dict[str, str] = {}
    for net_name in nets:
        net = source.nets.get(net_name)
        if net is None:
            continue
        driver = net.driver_cell()
        if driver is None:
            continue
        base, _, drive = driver.ctype.name.rpartition("_")
        try:
            index = _DRIVE_ORDER.index(drive)
        except ValueError:
            continue
        new_drive = _DRIVE_ORDER[min(index + steps, len(_DRIVE_ORDER) - 1)]
        if new_drive != drive:
            upsized[driver.name] = f"{base}_{new_drive}"

    from repro.circuit.netlist import Circuit

    clone = Circuit(source.name, source.library)
    for name, port in source.inputs.items():
        if port.net is not None and port.net.is_clock:
            clone.add_clock(name)
        else:
            clone.add_input(name, net_name=port.net.name if port.net else None)
    for cell in source.cells.values():
        ctype_name = upsized.get(cell.name, cell.ctype.name)
        connections = {
            pin.name: pin.net.name for pin in cell.pins.values() if pin.net is not None
        }
        clone.add_cell(ctype_name, cell.name, connections)
    for name, port in source.outputs.items():
        clone.add_output(name, net_name=port.net.name if port.net else None)
    for name, net in source.nets.items():
        if net.is_clock and name in clone.nets:
            clone.nets[name].is_clock = True

    return prepare_design(clone, design.technology, design.process)


def repair_crosstalk(
    design: Design,
    sta_result: "StaResult | None" = None,
    top: int = 10,
    guard_tracks: int = 1,
    mode: "AnalysisMode | None" = None,
) -> RepairOutcome:
    """One analyze -> rank -> respace -> re-analyze round.

    Picks the ``top`` crosstalk-critical nets of the (possibly supplied)
    analysis, shields them, and re-runs the same analysis on the repaired
    design.  The shielding goes through :func:`repro.flow.edits.apply_edit`
    -- the same edit-application path the service what-if and the repair
    optimizer use.
    """
    from repro.core.analyzer import CrosstalkSTA
    from repro.core.modes import AnalysisMode as _Mode
    from repro.core.netreport import rank_crosstalk_nets
    from repro.flow.edits import apply_edit

    if mode is None:
        mode = _Mode.ITERATIVE
    if sta_result is None:
        sta_result = CrosstalkSTA(design).run(mode)
    assert sta_result.final_pass is not None
    exposures = rank_crosstalk_nets(
        design, sta_result.final_pass, top=top, slack=sta_result.slack
    )
    victims = [e.net for e in exposures]

    repaired, _ = apply_edit(
        design,
        {"action": "respace", "nets": victims, "guard_tracks": guard_tracks},
    )
    after = CrosstalkSTA(repaired).run(mode)  # noqa: F821 (lazy import above)

    return RepairOutcome(
        repaired_nets=victims,
        design=repaired,
        before_delay=sta_result.longest_delay,
        after_delay=after.longest_delay,
        before_coupling={n: design.loads[n].c_coupling_total for n in victims},
        after_coupling={n: repaired.loads[n].c_coupling_total for n in victims},
    )
