"""The prepared design: netlist + physical data in timing-ready form.

``prepare_design`` runs the full physical flow (place, route, extract) and
precomputes everything the timing engine consumes per net: fixed load,
coupling neighbours, per-sink Elmore delays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.netlist import Circuit, Net, Pin, Port
from repro.devices.params import ProcessParams, default_process
from repro.interconnect.elmore import sink_delays
from repro.layout.extraction import ExtractionResult, extract
from repro.layout.placement import Placement, place
from repro.layout.routing import RoutingResult, route
from repro.layout.technology import Technology, default_technology


@dataclass
class NetLoad:
    """Timing-ready electrical view of one net.

    ``c_fixed`` is the always-grounded part of the driver's load: wire
    ground capacitance, sink pin capacitances and the driver's output
    junction capacitance.  ``couplings`` maps neighbour net names to the
    extracted coupling capacitance.  ``sink_elmore`` maps sink terminal
    full-names to the Elmore wire delay from the driver.
    """

    net: str
    c_fixed: float
    couplings: dict[str, float] = field(default_factory=dict)
    sink_elmore: dict[str, float] = field(default_factory=dict)

    @property
    def c_coupling_total(self) -> float:
        return sum(self.couplings.values())


@dataclass
class Design:
    """A circuit with completed physical design and extracted parasitics."""

    circuit: Circuit
    placement: Placement
    routing: RoutingResult
    extraction: ExtractionResult
    process: ProcessParams
    technology: Technology
    loads: dict[str, NetLoad] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.circuit.name

    def load_of(self, net: Net) -> NetLoad:
        return self.loads[net.name]

    def coupling_cap_total(self) -> float:
        return sum(load.c_coupling_total for load in self.loads.values()) / 2.0

    def wire_cap_total(self) -> float:
        return self.extraction.total_ground_cap()


def prepare_design(
    circuit: Circuit,
    technology: Technology | None = None,
    process: ProcessParams | None = None,
) -> Design:
    """Run placement, routing and extraction; build per-net load views."""
    tech = technology if technology is not None else default_technology()
    proc = process if process is not None else default_process()
    placement = place(circuit, tech)
    routing = route(circuit, placement, tech)
    extraction = extract(routing, tech)

    design = Design(
        circuit=circuit,
        placement=placement,
        routing=routing,
        extraction=extraction,
        process=proc,
        technology=tech,
    )
    for net in circuit.nets.values():
        design.loads[net.name] = _net_load(net, extraction, proc)
    return design


def _net_load(net: Net, extraction: ExtractionResult, proc: ProcessParams) -> NetLoad:
    c_pins = 0.0
    for sink in net.sinks:
        if isinstance(sink, Pin):
            c_pins += sink.cell.ctype.input_cap(sink.name, proc)
    c_driver = 0.0
    driver = net.driver
    if isinstance(driver, Pin):
        c_driver = driver.cell.ctype.output_parasitic_cap(proc)

    pnet = extraction.nets.get(net.name)
    if pnet is None:
        return NetLoad(net=net.name, c_fixed=c_pins + c_driver)
    return NetLoad(
        net=net.name,
        c_fixed=pnet.c_wire_ground + c_pins + c_driver,
        couplings=dict(pnet.couplings),
        sink_elmore=sink_delays(pnet.rc_tree),
    )
