"""Autonomous crosstalk repair over warm what-if sessions.

The repair loop closes the paper's analyze -> rank -> fix cycle without a
designer in it: rank victims by true required-time slack weighted by
coupling exposure (:func:`repro.core.netreport.rank_crosstalk_nets` over
the backward pass of :mod:`repro.core.slack`), propose candidate fixes
from the ECO vocabulary (:mod:`repro.flow.edits`), evaluate every
candidate *warm* through the session's transactional what-if path (which
re-solves only the dirty cone, bit-identical to a cold analysis), commit
only the candidate that strictly improves worst slack, and iterate until
the target slack is met or the edit budget is exhausted.

Because candidates are evaluated warm and committed transactionally, the
loop never performs a cold re-analysis itself; the optional
``cold_verify`` step at the end runs exactly one cold analysis of the
committed design and records whether it lands bit-identically on the
warm result -- the acceptance check the CI ``repair-smoke`` job asserts.

The returned transcript (schema ``repro.repair/1``) is machine-readable
and self-validating: :func:`validate_repair` re-checks the monotone
slack trajectory from the hex-pinned floats, and ``committed_edits``
carries the normalized edit list the fleet router replays onto a
replacement shard on failover.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.errors import InputError, ReproError
from repro.flow.edits import edit_nets
from repro.flow.repair import _DRIVE_ORDER

if TYPE_CHECKING:
    from repro.core.netreport import NetExposure
    from repro.flow.design import Design
    from repro.service.session import Session

REPAIR_SCHEMA = "repro.repair/1"


def propose_edits(
    design: "Design",
    exposure: "NetExposure",
    dont_touch: frozenset[str],
    guard_tracks: int = 1,
) -> list[dict]:
    """Candidate ECO edits for one victim net, cheapest model first.

    Per victim: drop the largest aggressor coupling (models a planned
    shield, costs nothing to apply), re-route the victim with guard
    spacing (the classic physical fix), and upsize the victim's driver
    when it has drive headroom.  Edits touching a dont-touch net are
    never proposed.
    """
    victim = exposure.net
    if victim in dont_touch:
        return []
    edits: list[dict] = []
    load = design.loads.get(victim)
    if load is not None and load.couplings:
        aggressors = sorted(load.couplings.items(), key=lambda kv: (-kv[1], kv[0]))
        for neighbour, _cap in aggressors:
            if neighbour not in dont_touch:
                edits.append(
                    {"action": "drop_coupling", "net": victim, "neighbour": neighbour}
                )
                break
    edits.append(
        {"action": "respace", "nets": [victim], "guard_tracks": guard_tracks}
    )
    net = design.circuit.nets.get(victim)
    driver = net.driver_cell() if net is not None else None
    if driver is not None:
        _base, _, drive = driver.ctype.name.rpartition("_")
        if drive in _DRIVE_ORDER and drive != _DRIVE_ORDER[-1]:
            edits.append({"action": "upsize", "nets": [victim], "steps": 1})
    return [e for e in edits if not (set(edit_nets(e)) & dont_touch)]


def _edit_key(edit: dict) -> tuple:
    """Canonical identity of an edit (for the no-retry rejected set)."""
    return tuple(sorted((k, repr(v)) for k, v in edit.items()))


def _slack_point(worst_slack: float) -> dict:
    return {
        "worst_slack": worst_slack,
        "worst_slack_hex": float(worst_slack).hex(),
        "worst_slack_ps": worst_slack * 1e12,
    }


def repair_session(
    session: "Session",
    mode: str | None = None,
    target_slack: float = 0.0,
    max_edits: int = 8,
    beam: int = 3,
    guard_tracks: int = 1,
    dont_touch: list[str] | tuple[str, ...] | None = None,
    cold_verify: bool = False,
) -> dict:
    """Run the autonomous repair loop on one warm session.

    The session must carry a ``clock_period`` (so every analysis comes
    with a backward slack pass).  Returns the ``repro.repair/1``
    transcript; the session's design, analyzer state and
    ``committed_edits`` reflect every committed fix on return.
    """
    if session.config.clock_period is None:
        raise InputError(
            "repair needs a clock period; open the session with a "
            "'clock_period' config override (or pass --clock-period)"
        )
    if max_edits < 1:
        raise InputError("max_edits must be positive")
    if beam < 1:
        raise InputError("beam must be positive")
    dont = frozenset(dont_touch or ())
    unknown = sorted(n for n in dont if n not in session.design.circuit.nets)
    if unknown:
        raise InputError(f"dont_touch names unknown nets: {unknown}")

    resolved = session._mode(mode)
    baseline = session.analyze(resolved.value)
    assert baseline.slack is not None
    current = baseline.slack.worst_slack

    trajectory = [_slack_point(current)]
    rounds: list[dict] = []
    committed: list[dict] = []
    rejected: set[tuple] = set()
    evaluations = 0
    dirty_arcs = 0
    reused_arcs = 0
    stop_reason = "target_reached"

    while current < target_slack:
        if len(committed) >= max_edits:
            stop_reason = "budget_exhausted"
            break
        exposures = session.exposures(resolved.value)
        victims = [e for e in exposures if e.slack < target_slack] or exposures[:beam]
        candidates: list[dict] = []
        for exposure in victims:
            proposed = [
                e
                for e in propose_edits(
                    session.design, exposure, dont, guard_tracks=guard_tracks
                )
                if _edit_key(e) not in rejected
            ]
            if proposed:
                candidates.extend(proposed)
            if len({tuple(edit_nets(c)) for c in candidates}) >= beam:
                break
        if not candidates:
            stop_reason = "no_candidates"
            break

        round_entry: dict = {
            "round": len(rounds) + 1,
            "worst_slack_before": current,
            "worst_slack_before_hex": float(current).hex(),
            "candidates": [],
            "committed": None,
        }
        best_edit = None
        best_slack = current
        for edit in candidates:
            record: dict = {"edit": dict(edit)}
            try:
                response = session.whatif(edit, mode=resolved.value, commit=False)
            except ReproError as exc:
                record["error"] = str(exc)
                rejected.add(_edit_key(edit))
                round_entry["candidates"].append(record)
                continue
            evaluations += 1
            after = response["after"]
            dirty_arcs += after.get("dirty_arcs", 0)
            reused_arcs += after.get("reused_arcs", 0)
            worst = after["worst_slack"]
            record.update(_slack_point(worst))
            record["improvement_ps"] = (worst - current) * 1e12
            round_entry["candidates"].append(record)
            if worst > best_slack:
                best_slack = worst
                best_edit = response["edit"]
        if best_edit is None:
            # Nothing improved: retire this round's candidates and try the
            # next victims; a later round with no fresh candidates ends the
            # loop.  Worst slack never moves, so the trajectory stays
            # monotone by construction.
            for edit in candidates:
                rejected.add(_edit_key(edit))
            rounds.append(round_entry)
            continue
        response = session.whatif(best_edit, mode=resolved.value, commit=True)
        evaluations += 1
        after = response["after"]
        dirty_arcs += after.get("dirty_arcs", 0)
        reused_arcs += after.get("reused_arcs", 0)
        committed.append(dict(response["edit"]))
        current = after["worst_slack"]
        round_entry["committed"] = dict(response["edit"])
        round_entry.update(
            {
                "worst_slack_after": current,
                "worst_slack_after_hex": float(current).hex(),
            }
        )
        rounds.append(round_entry)
        trajectory.append(_slack_point(current))

    final_result = session.analyze(resolved.value)
    assert final_result.slack is not None
    final = final_result.slack

    cold = None
    cold_analyses = 0
    if cold_verify:
        from repro.core.analyzer import CrosstalkSTA

        cold_config = replace(session.config, mode=resolved, checkpoint=None)
        cold_result = CrosstalkSTA(
            session.design, cold_config, obs=session.obs
        ).run()
        cold_analyses = 1
        assert cold_result.slack is not None
        cold = {
            "longest_delay_hex": float(cold_result.longest_delay).hex(),
            "warm_longest_delay_hex": float(final_result.longest_delay).hex(),
            "worst_slack_hex": float(cold_result.slack.worst_slack).hex(),
            "warm_worst_slack_hex": float(final.worst_slack).hex(),
        }
        cold["identical"] = (
            cold["longest_delay_hex"] == cold["warm_longest_delay_hex"]
            and cold["worst_slack_hex"] == cold["warm_worst_slack_hex"]
        )

    warm_total = dirty_arcs + reused_arcs
    return {
        "schema": REPAIR_SCHEMA,
        "session": session.session_id,
        "design": session.design.name,
        "mode": resolved.value,
        "clock_period": session.config.clock_period,
        "target_slack": target_slack,
        "max_edits": max_edits,
        "beam": beam,
        "guard_tracks": guard_tracks,
        "dont_touch": sorted(dont),
        "baseline": _slack_point(baseline.slack.worst_slack)
        | {
            "violations": baseline.slack.violations,
            "total_negative_slack": baseline.slack.total_negative_slack,
        },
        "final": _slack_point(final.worst_slack)
        | {
            "violations": final.violations,
            "total_negative_slack": final.total_negative_slack,
            "met": final.worst_slack >= target_slack,
        },
        "stop_reason": stop_reason,
        "rounds": rounds,
        "trajectory": trajectory,
        "committed_edits": committed,
        "edits_committed": len(committed),
        "evaluations": evaluations,
        "cold_analyses": cold_analyses,
        "warm": {
            "dirty_arcs": dirty_arcs,
            "reused_arcs": reused_arcs,
            "reuse_ratio": (reused_arcs / warm_total) if warm_total else 0.0,
        },
        "cold_verify": cold,
    }


def validate_repair(payload: dict) -> None:
    """Re-check a repair transcript from its hex-pinned floats.

    Raises :class:`ValueError` when the trajectory is not monotone
    non-worsening, the committed-edit count disagrees with the rounds,
    or a requested cold verification did not land bit-identically.
    """
    if payload.get("schema") != REPAIR_SCHEMA:
        raise ValueError(
            f"repair schema {payload.get('schema')!r} != {REPAIR_SCHEMA!r}"
        )
    trajectory = payload.get("trajectory")
    if not isinstance(trajectory, list) or not trajectory:
        raise ValueError("repair transcript has no trajectory")
    values = [float.fromhex(point["worst_slack_hex"]) for point in trajectory]
    for before, after in zip(values, values[1:]):
        if after < before:
            raise ValueError(
                f"slack trajectory worsened: {before!r} -> {after!r}"
            )
    committed = payload.get("committed_edits", [])
    if len(committed) != payload.get("edits_committed"):
        raise ValueError("edits_committed disagrees with committed_edits")
    committed_rounds = [
        r for r in payload.get("rounds", []) if r.get("committed") is not None
    ]
    if len(committed_rounds) != len(committed):
        raise ValueError("rounds with commits disagree with committed_edits")
    if len(values) != len(committed) + 1:
        raise ValueError("trajectory length disagrees with committed_edits")
    final_hex = payload.get("final", {}).get("worst_slack_hex")
    if final_hex != trajectory[-1]["worst_slack_hex"]:
        raise ValueError("final worst slack disagrees with trajectory tail")
    cold = payload.get("cold_verify")
    if cold is not None and not cold.get("identical"):
        raise ValueError(
            "cold re-analysis of the committed design is not bit-identical "
            f"to the warm result: {cold}"
        )


def format_repair(payload: dict) -> str:
    """Human-readable rendering of a repair transcript."""
    baseline = payload["baseline"]
    final = payload["final"]
    lines = [
        f"repair [{payload['design']}] mode={payload['mode']} "
        f"clock={payload['clock_period'] * 1e9:.3f} ns "
        f"target={payload['target_slack'] * 1e12:+.1f} ps",
        f"  worst slack {baseline['worst_slack_ps']:+.1f} -> "
        f"{final['worst_slack_ps']:+.1f} ps, "
        f"violations {baseline['violations']} -> {final['violations']} "
        f"({'met' if final['met'] else payload['stop_reason']})",
        f"  {payload['edits_committed']} edits committed, "
        f"{payload['evaluations']} warm evaluations, "
        f"{payload['cold_analyses']} cold analyses "
        f"(warm reuse {payload['warm']['reuse_ratio']:.1%})",
    ]
    for entry in payload["rounds"]:
        chosen = entry.get("committed")
        if chosen is None:
            lines.append(
                f"  round {entry['round']}: {len(entry['candidates'])} "
                "candidates, none improved"
            )
            continue
        after_ps = entry["worst_slack_after"] * 1e12
        lines.append(
            f"  round {entry['round']}: {chosen['action']} "
            f"{','.join(edit_nets(chosen))} -> {after_ps:+.1f} ps "
            f"({len(entry['candidates'])} candidates)"
        )
    cold = payload.get("cold_verify")
    if cold is not None:
        lines.append(
            "  cold verify: "
            + ("bit-identical" if cold["identical"] else "MISMATCH")
        )
    return "\n".join(lines)
