"""ECO (engineering change order) edits: the one edit-application path.

An edit is a small JSON-friendly description of a physical fix the
designer is considering::

    {"action": "respace",      "nets": ["N89"], "guard_tracks": 1}
    {"action": "upsize",       "nets": ["N74"], "steps": 1}
    {"action": "drop_coupling", "net": "N89", "neighbour": "N74"}
    {"action": "set_coupling",  "net": "N89", "neighbour": "N74", "cap": 1e-15}

``apply_edit`` validates the description and produces the edited
:class:`~repro.flow.design.Design` *without touching the source design*
-- the session's what-if handler analyzes the copy and only swaps it in
when the client asked to commit, so a failed edit or analysis rolls back
by simply dropping the copy.

Every consumer -- the service's transactional ``whatif``, the repair
optimizer's candidate proposals, and the batch ``repair_crosstalk``
round -- goes through :func:`apply_edit`, so the edit vocabulary and its
validation cannot drift between the flow helpers and the service layer
(:mod:`repro.service.whatif` re-exports this module for compatibility).
"""

from __future__ import annotations

from repro.errors import InputError
from repro.flow.design import Design
from repro.flow.repair import adjust_coupling, respace_nets, upsize_drivers

EDIT_ACTIONS = ("respace", "upsize", "drop_coupling", "set_coupling")


def _require_nets(design: Design, edit: dict) -> list[str]:
    nets = edit.get("nets")
    if not isinstance(nets, list) or not nets or not all(
        isinstance(n, str) for n in nets
    ):
        raise InputError("edit needs 'nets': a non-empty list of net names")
    for net in nets:
        if net not in design.circuit.nets:
            raise InputError(f"unknown net {net!r}")
    return nets


def _require_pair(edit: dict) -> tuple[str, str]:
    net, neighbour = edit.get("net"), edit.get("neighbour")
    if not isinstance(net, str) or not isinstance(neighbour, str):
        raise InputError("edit needs string 'net' and 'neighbour'")
    return net, neighbour


def edit_nets(edit: dict) -> list[str]:
    """The nets a normalized edit touches (victim side first)."""
    if "nets" in edit:
        return list(edit["nets"])
    nets = []
    for key in ("net", "neighbour"):
        value = edit.get(key)
        if isinstance(value, str):
            nets.append(value)
    return nets


def apply_edit(design: Design, edit: dict) -> tuple[Design, dict]:
    """Apply one ECO edit; returns ``(edited_design, normalized_edit)``.

    Raises :class:`InputError` on any malformed or inapplicable edit --
    before any expensive work, so a rejected what-if costs nothing.
    """
    if not isinstance(edit, dict):
        raise InputError("edit must be an object")
    action = edit.get("action")
    if action == "respace":
        nets = _require_nets(design, edit)
        guard_tracks = edit.get("guard_tracks", 1)
        if not isinstance(guard_tracks, int) or guard_tracks < 1:
            raise InputError("'guard_tracks' must be a positive integer")
        edited = respace_nets(design, nets, guard_tracks=guard_tracks)
        return edited, {"action": action, "nets": nets, "guard_tracks": guard_tracks}
    if action == "upsize":
        nets = _require_nets(design, edit)
        steps = edit.get("steps", 1)
        if not isinstance(steps, int) or steps < 1:
            raise InputError("'steps' must be a positive integer")
        edited = upsize_drivers(design, nets, steps=steps)
        return edited, {"action": action, "nets": nets, "steps": steps}
    if action == "drop_coupling":
        net, neighbour = _require_pair(edit)
        edited = adjust_coupling(design, net, neighbour, cap=0.0)
        return edited, {"action": action, "net": net, "neighbour": neighbour}
    if action == "set_coupling":
        net, neighbour = _require_pair(edit)
        cap = edit.get("cap")
        if not isinstance(cap, (int, float)) or isinstance(cap, bool) or cap <= 0:
            raise InputError("'cap' must be a positive number (farads)")
        edited = adjust_coupling(design, net, neighbour, cap=float(cap))
        return edited, {
            "action": action,
            "net": net,
            "neighbour": neighbour,
            "cap": float(cap),
        }
    raise InputError(f"unknown edit action {action!r}; have {EDIT_ACTIONS}")
