"""Geometric primitives for placement and routing.

Everything lives on a track grid: horizontal metal-1 segments occupy
(channel, track) rows, vertical metal-2 segments occupy column tracks.
Coordinates are in micrometres.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A location in the placement plane (um)."""

    x: float
    y: float

    def manhattan(self, other: "Point") -> float:
        return abs(self.x - other.x) + abs(self.y - other.y)


@dataclass(frozen=True)
class TrackSegment:
    """A straight wire piece on one routing track.

    ``layer`` is 1 (horizontal M1) or 2 (vertical M2).  For M1, ``track``
    identifies a global horizontal track index and ``lo``/``hi`` are x
    coordinates; for M2, ``track`` is a vertical track index and
    ``lo``/``hi`` are y coordinates.
    """

    net: str
    layer: int
    track: int
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.layer not in (1, 2):
            raise ValueError(f"layer must be 1 or 2, got {self.layer}")
        if self.hi < self.lo:
            raise ValueError(f"segment with hi < lo: {self}")

    @property
    def length(self) -> float:
        return self.hi - self.lo

    def overlap(self, other: "TrackSegment") -> float:
        """Length of the parallel overlap with another segment (same
        layer assumed; tracks may differ)."""
        return max(0.0, min(self.hi, other.hi) - max(self.lo, other.lo))


def interval_overlaps(lo_a: float, hi_a: float, lo_b: float, hi_b: float) -> bool:
    """True if open intervals (lo_a, hi_a) and (lo_b, hi_b) intersect."""
    return min(hi_a, hi_b) - max(lo_a, lo_b) > 1e-9


class TrackOccupancy:
    """First-fit interval bookkeeping for one routing track.

    Claimed intervals never overlap (the router only adds after ``fits``),
    so they are kept sorted and queried with bisection: O(log n) per
    check instead of a linear scan -- the difference between minutes and
    hours when routing paper-size circuits.
    """

    __slots__ = ("intervals",)

    def __init__(self) -> None:
        self.intervals: list[tuple[float, float]] = []

    def fits(self, lo: float, hi: float, clearance: float = 0.0) -> bool:
        from bisect import bisect_left

        intervals = self.intervals
        index = bisect_left(intervals, (lo, lo))
        # The predecessor may reach into [lo, hi]; successors start after
        # lo and only the first can matter (they are disjoint and sorted).
        if index > 0 and interval_overlaps(
            lo - clearance, hi + clearance, *intervals[index - 1]
        ):
            return False
        if index < len(intervals) and interval_overlaps(
            lo - clearance, hi + clearance, *intervals[index]
        ):
            return False
        return True

    def add(self, lo: float, hi: float) -> None:
        from bisect import insort

        insort(self.intervals, (lo, hi))
