"""Two-layer track router.

Routes every net in trunk-and-branch style on the 0.5 um two-metal grid:

* one horizontal **metal-1 trunk** spanning the x extent of the net's
  terminals, placed on the free horizontal track nearest the driver, and
* vertical **metal-2 branches** dropping from each terminal to the trunk.

Track assignment is first-fit with outward search from the preferred
track, so congested regions push nets onto neighbouring tracks -- which is
precisely what creates the parallel adjacent runs whose coupling the paper
studies.  The router guarantees no two nets share a (layer, track)
interval; the extractor then derives coupling from adjacent-track overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.netlist import Circuit, Net, Pin
from repro.layout.geometry import Point, TrackOccupancy, TrackSegment
from repro.layout.placement import Placement
from repro.layout.technology import Technology


@dataclass
class NetRoute:
    """Routed topology of one net.

    ``trunk`` may be ``None`` for nets whose terminals share one vertical
    track.  ``taps`` maps terminal names (pin/port full names) to their
    (x, branch segment) on the trunk; the driver's entry is under
    ``driver_tap``.
    """

    net: str
    trunk: TrackSegment | None
    trunk_y: float
    driver_tap: tuple[str, float, TrackSegment | None]
    sink_taps: list[tuple[str, float, TrackSegment | None]] = field(default_factory=list)

    def segments(self) -> list[TrackSegment]:
        segs = []
        if self.trunk is not None and self.trunk.length > 0:
            segs.append(self.trunk)
        for _, _, branch in [self.driver_tap] + self.sink_taps:
            if branch is not None and branch.length > 0:
                segs.append(branch)
        return segs

    def wirelength(self) -> float:
        return sum(seg.length for seg in self.segments())


@dataclass
class RoutingResult:
    """All net routes plus congestion statistics."""

    routes: dict[str, NetRoute] = field(default_factory=dict)
    overflow_count: int = 0

    def total_wirelength(self) -> float:
        return sum(route.wirelength() for route in self.routes.values())

    def all_segments(self) -> list[TrackSegment]:
        segs: list[TrackSegment] = []
        for route in self.routes.values():
            segs.extend(route.segments())
        return segs


class _TrackGrid:
    """Occupancy maps for both layers with outward first-fit search."""

    def __init__(self, pitch: float, clearance: float):
        self.pitch = pitch
        self.clearance = clearance
        self.h_tracks: dict[int, TrackOccupancy] = {}
        self.v_tracks: dict[int, TrackOccupancy] = {}
        self.overflows = 0

    def _occupancy(self, layer: int, track: int) -> TrackOccupancy:
        table = self.h_tracks if layer == 1 else self.v_tracks
        occ = table.get(track)
        if occ is None:
            occ = TrackOccupancy()
            table[track] = occ
        return occ

    def claim(
        self,
        layer: int,
        preferred_track: int,
        lo: float,
        hi: float,
        net: str,
        soft_radius: int = 6,
        guard_tracks: int = 0,
    ) -> TrackSegment:
        """Find the nearest free track to ``preferred_track`` and claim the
        interval.  Searches outward; beyond ``soft_radius`` the claim is
        counted as overflow but still succeeds (tracks are unbounded).

        ``guard_tracks`` > 0 additionally reserves the same interval on
        the neighbouring tracks (shield spacing): later nets cannot run
        adjacent to this one, eliminating its nearest-neighbour coupling.
        """
        offset = 0
        while True:
            for sign in (1, -1) if offset else (1,):
                track = preferred_track + sign * offset
                fits = all(
                    self._occupancy(layer, track + g).fits(lo, hi, self.clearance)
                    for g in range(-guard_tracks, guard_tracks + 1)
                )
                if fits:
                    for g in range(-guard_tracks, guard_tracks + 1):
                        self._occupancy(layer, track + g).add(lo, hi)
                    if offset > soft_radius:
                        self.overflows += 1
                    return TrackSegment(net=net, layer=layer, track=track, lo=lo, hi=hi)
            offset += 1


def route(
    circuit: Circuit,
    placement: Placement,
    technology: Technology | None = None,
    guard_nets: dict[str, int] | None = None,
) -> RoutingResult:
    """Route every multi-terminal net of the circuit.

    ``guard_nets`` maps net names to a shield spacing in tracks: those
    nets are routed first and keep that many neighbouring tracks free on
    both sides (the crosstalk-repair move -- trading routing resources for
    eliminated coupling).
    """
    tech = technology if technology is not None else placement.technology
    guard_nets = guard_nets if guard_nets is not None else {}
    pitch = tech.track_pitch
    grid = _TrackGrid(pitch=pitch, clearance=0.25 * pitch)
    result = RoutingResult()

    # Guarded nets first (they need contiguous free tracks), then short
    # nets before long so long nets detour around them.
    nets = [n for n in circuit.nets.values() if n.driver is not None and n.sinks]
    nets.sort(
        key=lambda n: (
            0 if n.name in guard_nets else 1,
            _span_estimate(n, placement),
            n.name,
        )
    )

    for net in nets:
        result.routes[net.name] = _route_net(
            net, placement, grid, pitch, guard_nets.get(net.name, 0)
        )
    result.overflow_count = grid.overflows
    return result


def reroute_nets(
    circuit: Circuit,
    placement: Placement,
    routing: RoutingResult,
    nets: list[str],
    guard_tracks: int = 1,
    technology: Technology | None = None,
) -> RoutingResult:
    """Rip up and re-route only the given nets, with guard spacing.

    Every other net keeps its exact geometry: the track grid is replayed
    from the surviving segments before the victims are re-routed, so the
    repair is local -- the classic rip-up-and-reroute move.
    """
    tech = technology if technology is not None else placement.technology
    pitch = tech.track_pitch
    victims = set(nets)
    grid = _TrackGrid(pitch=pitch, clearance=0.25 * pitch)

    result = RoutingResult()
    for name, net_route in routing.routes.items():
        if name in victims:
            continue
        result.routes[name] = net_route
        for seg in net_route.segments():
            grid._occupancy(seg.layer, seg.track).add(seg.lo, seg.hi)

    for name in sorted(victims):
        net = circuit.nets.get(name)
        if net is None or net.driver is None or not net.sinks:
            continue
        result.routes[name] = _route_net(
            net, placement, grid, pitch, guard_tracks=guard_tracks
        )
    result.overflow_count = routing.overflow_count + grid.overflows
    return result


def _terminal_name_and_point(terminal, placement: Placement) -> tuple[str, Point]:
    if isinstance(terminal, Pin):
        return terminal.full_name, placement.cell_pos[terminal.cell.name]
    return terminal.name, placement.port_pos[terminal.name]


def _span_estimate(net: Net, placement: Placement) -> float:
    points = [_terminal_name_and_point(t, placement)[1] for t in [net.driver] + net.sinks]
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def _route_net(
    net: Net,
    placement: Placement,
    grid: _TrackGrid,
    pitch: float,
    guard_tracks: int = 0,
) -> NetRoute:
    driver_name, driver_pt = _terminal_name_and_point(net.driver, placement)
    sinks = [_terminal_name_and_point(s, placement) for s in net.sinks]

    xs = [driver_pt.x] + [p.x for _, p in sinks]
    x_lo, x_hi = min(xs), max(xs)

    # Trunk at the median terminal y: minimises total vertical branch
    # length (the binding routing resource on a two-layer grid).
    ys = sorted([driver_pt.y] + [p.y for _, p in sinks])
    median_y = ys[len(ys) // 2]
    trunk_track_pref = round(median_y / pitch)
    if x_hi - x_lo > 1e-9:
        trunk = grid.claim(
            1, trunk_track_pref, x_lo, x_hi, net.name, guard_tracks=guard_tracks
        )
        trunk_y = trunk.track * pitch
    else:
        trunk = None
        trunk_y = trunk_track_pref * pitch

    def branch_for(name: str, pt: Point) -> tuple[str, float, TrackSegment | None]:
        y_lo, y_hi = sorted((pt.y, trunk_y))
        if y_hi - y_lo <= 1e-9:
            return name, pt.x, None
        seg = grid.claim(
            2, round(pt.x / pitch), y_lo, y_hi, net.name, guard_tracks=guard_tracks
        )
        return name, seg.track * pitch, seg

    driver_tap = branch_for(driver_name, driver_pt)
    route_obj = NetRoute(
        net=net.name,
        trunk=trunk,
        trunk_y=trunk_y,
        driver_tap=driver_tap,
    )
    for name, pt in sinks:
        route_obj.sink_taps.append(branch_for(name, pt))
    return route_obj
