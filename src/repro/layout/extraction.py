"""Parasitic extraction from routed geometry.

Produces, for every routed net, what the crosstalk-aware STA consumes
(DESIGN.md section 3.3):

* an RC tree (wire resistance + grounded wire capacitance), and
* the set of coupling capacitances to neighbouring nets, from parallel
  runs on adjacent tracks of the same layer.

Coupling between tracks at distance *d* uses the technology's
``coupling_cap_per_um(d)``; same-track nets never overlap (router
guarantee) and end-to-end fringe coupling is ignored.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.interconnect.rctree import RCTree
from repro.layout.routing import NetRoute, RoutingResult
from repro.layout.technology import Technology, default_technology


@dataclass
class ParasiticNet:
    """Extracted parasitics of one net."""

    name: str
    rc_tree: RCTree
    c_wire_ground: float
    couplings: dict[str, float] = field(default_factory=dict)

    @property
    def c_coupling_total(self) -> float:
        return sum(self.couplings.values())

    @property
    def r_total(self) -> float:
        return self.rc_tree.total_resistance()


@dataclass
class ExtractionResult:
    """Parasitics for all routed nets."""

    nets: dict[str, ParasiticNet] = field(default_factory=dict)

    def coupling_pairs(self) -> list[tuple[str, str, float]]:
        """All distinct (net_a, net_b, C_c) pairs with net_a < net_b."""
        pairs = []
        for name, pnet in self.nets.items():
            for other, cap in pnet.couplings.items():
                if name < other:
                    pairs.append((name, other, cap))
        return pairs

    def total_coupling_cap(self) -> float:
        return sum(cap for _, _, cap in self.coupling_pairs())

    def total_ground_cap(self) -> float:
        return sum(p.c_wire_ground for p in self.nets.values())


def extract(
    routing: RoutingResult,
    technology: Technology | None = None,
) -> ExtractionResult:
    """Extract RC trees and coupling capacitances from a routing."""
    tech = technology if technology is not None else default_technology()
    result = ExtractionResult()
    for route in routing.routes.values():
        tree = _build_rc_tree(route, tech)
        # The tree's trunk pieces span tap-to-tap; the routed trunk may
        # overhang the extreme taps slightly (branch track shifts).  Lump
        # any residual metal capacitance at the root so the tree accounts
        # for every routed micron -- never less than the drawn wire.
        drawn_cap = sum(seg.length for seg in route.segments()) * tech.c_ground_per_um
        residual = drawn_cap - tree.total_cap()
        if residual > 0:
            tree.add_cap(tree.root, residual)
        result.nets[route.net] = ParasiticNet(
            name=route.net,
            rc_tree=tree,
            c_wire_ground=tree.total_cap(),
        )
    _extract_coupling(routing, tech, result)
    return result


def _build_rc_tree(route: NetRoute, tech: Technology) -> RCTree:
    """Trunk-and-branch RC tree: driver -> driver tap -> trunk chain ->
    sink taps -> sinks.  Segment capacitance is split half/half onto the
    segment's end nodes."""
    tree = RCTree(route.net)
    driver_name, driver_x, driver_branch = route.driver_tap
    root = tree.add_node(-1, 0.0, 0.0, name=driver_name)

    # Driver branch (vertical, M2) from the driver pin down to the trunk.
    branch_r, branch_c = _segment_rc(driver_branch, tech, vertical=True)
    drv_tap = tree.add_node(root, branch_r + (tech.via_resistance if driver_branch else 0.0))
    tree.add_cap(root, branch_c / 2.0)
    tree.add_cap(drv_tap, branch_c / 2.0)

    # Order sink taps along the trunk; chain them left and right of the
    # driver tap.
    taps = sorted(route.sink_taps, key=lambda t: t[1])
    left = [t for t in taps if t[1] <= driver_x]
    right = [t for t in taps if t[1] > driver_x]

    for group, reverse in ((left, True), (right, False)):
        ordered = list(reversed(group)) if reverse else group
        prev_node, prev_x = drv_tap, driver_x
        for sink_name, tap_x, branch in ordered:
            trunk_r = abs(tap_x - prev_x) * tech.r_per_um
            trunk_c = abs(tap_x - prev_x) * tech.c_ground_per_um
            tap_node = tree.add_node(prev_node, trunk_r)
            tree.add_cap(prev_node, trunk_c / 2.0)
            tree.add_cap(tap_node, trunk_c / 2.0)
            branch_r, branch_c = _segment_rc(branch, tech, vertical=True)
            sink_node = tree.add_node(
                tap_node,
                branch_r + (tech.via_resistance if branch else 0.0),
                name=sink_name,
            )
            tree.add_cap(tap_node, branch_c / 2.0)
            tree.add_cap(sink_node, branch_c / 2.0)
            prev_node, prev_x = tap_node, tap_x
    return tree


def _segment_rc(segment, tech: Technology, vertical: bool) -> tuple[float, float]:
    if segment is None:
        return 0.0, 0.0
    r_per_um = tech.r_per_um_m2 if vertical else tech.r_per_um
    return segment.length * r_per_um, segment.length * tech.c_ground_per_um


def _extract_coupling(
    routing: RoutingResult,
    tech: Technology,
    result: ExtractionResult,
) -> None:
    """Adjacent-track overlap sweep over all segments of each layer."""
    by_track: dict[tuple[int, int], list] = defaultdict(list)
    for seg in routing.all_segments():
        by_track[(seg.layer, seg.track)].append(seg)
    for segs in by_track.values():
        segs.sort(key=lambda s: s.lo)

    pair_caps: dict[tuple[str, str], float] = defaultdict(float)
    for (layer, track), segs in by_track.items():
        for distance in range(1, tech.max_coupling_tracks + 1):
            neighbour = by_track.get((layer, track + distance))
            if not neighbour:
                continue
            c_per_um = tech.coupling_cap_per_um(distance)
            if c_per_um <= 0.0:
                continue
            _sweep_overlaps(segs, neighbour, c_per_um, pair_caps)

    for (net_a, net_b), cap in pair_caps.items():
        if net_a in result.nets:
            result.nets[net_a].couplings[net_b] = (
                result.nets[net_a].couplings.get(net_b, 0.0) + cap
            )
        if net_b in result.nets:
            result.nets[net_b].couplings[net_a] = (
                result.nets[net_b].couplings.get(net_a, 0.0) + cap
            )


def _sweep_overlaps(
    segs_a: list,
    segs_b: list,
    c_per_um: float,
    pair_caps: dict[tuple[str, str], float],
) -> None:
    """Two-pointer sweep accumulating overlap * c_per_um per net pair."""
    i = j = 0
    while i < len(segs_a) and j < len(segs_b):
        a, b = segs_a[i], segs_b[j]
        overlap = min(a.hi, b.hi) - max(a.lo, b.lo)
        if overlap > 0 and a.net != b.net:
            key = (a.net, b.net) if a.net < b.net else (b.net, a.net)
            pair_caps[key] += overlap * c_per_um
        if a.hi <= b.hi:
            i += 1
        else:
            j += 1
