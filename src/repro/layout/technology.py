"""Physical technology description: 0.5 um, two metal layers.

The paper routes the benchmarks "in a 0.5 um process technology with two
metal layers".  The constants below describe such a process: metal 1 routes
horizontally, metal 2 vertically, both on a regular track grid.  Coupling
capacitance between same-layer neighbours falls off with spacing; the
values are chosen so that, as in the paper, the coupling impact on path
delay clearly exceeds the wire-resistance impact (Section 6: 1.4-2.8 ns of
coupling impact against 0.2-0.5 ns of wire delay).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """Routing-layer electrical and geometric constants.

    Lengths are in micrometres; electrical values per micrometre of wire.

    Attributes
    ----------
    track_pitch:
        Routing track pitch on both metal layers (um).
    row_height:
        Standard-cell row height (um).
    cell_unit_width:
        Cell width per transistor pair (um).
    channel_tracks:
        Horizontal routing tracks available in the channel above each row.
    r_per_um:
        Wire resistance per um (ohm/um) -- metal 1; metal 2 is thicker.
    r_per_um_m2:
        Metal-2 resistance per um.
    c_ground_per_um:
        Area+fringe capacitance to ground per um of wire (farad/um).
    c_couple_per_um:
        Coupling capacitance to a neighbour on an *adjacent* track
        (minimum spacing) per um of parallel run (farad/um).
    coupling_decay:
        Coupling falls as ``c_couple_per_um / (track distance)**coupling_decay``;
        beyond ``max_coupling_tracks`` it is ignored.
    max_coupling_tracks:
        Neighbour search radius in tracks.
    via_resistance:
        Resistance of one M1-M2 via (ohm).
    """

    track_pitch: float = 1.5
    row_height: float = 24.0
    cell_unit_width: float = 2.0
    channel_tracks: int = 10
    r_per_um: float = 0.12
    r_per_um_m2: float = 0.07
    c_ground_per_um: float = 0.045e-15
    c_couple_per_um: float = 0.090e-15
    coupling_decay: float = 2.0
    max_coupling_tracks: int = 2
    via_resistance: float = 1.5

    def coupling_cap_per_um(self, track_distance: int) -> float:
        """Coupling capacitance per um at the given track separation."""
        if track_distance < 1:
            raise ValueError("track distance must be >= 1")
        if track_distance > self.max_coupling_tracks:
            return 0.0
        return self.c_couple_per_um / (track_distance ** self.coupling_decay)

    def cell_width(self, transistor_count: int) -> float:
        """Footprint width of a cell with the given transistor count."""
        pairs = max(1, (transistor_count + 1) // 2)
        return self.cell_unit_width * (pairs + 1)


_DEFAULT = Technology()


def default_technology() -> Technology:
    """Return the shared default technology."""
    return _DEFAULT
