"""Physical design substrate: placement, routing, parasitic extraction."""

from repro.layout.extraction import ExtractionResult, ParasiticNet, extract
from repro.layout.geometry import Point, TrackOccupancy, TrackSegment
from repro.layout.placement import Placement, place
from repro.layout.routing import NetRoute, RoutingResult, route
from repro.layout.technology import Technology, default_technology

__all__ = [
    "ExtractionResult",
    "NetRoute",
    "ParasiticNet",
    "Placement",
    "Point",
    "RoutingResult",
    "Technology",
    "TrackOccupancy",
    "TrackSegment",
    "default_technology",
    "extract",
    "place",
    "route",
]
