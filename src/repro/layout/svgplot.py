"""SVG rendering of placement and routing.

Produces a self-contained SVG of the die: cell rows, placed cells, metal-1
(horizontal) and metal-2 (vertical) segments, optionally highlighting a
set of nets (e.g. the critical path) and the coupling neighbourhoods of a
victim.  Pure string generation -- no drawing dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from xml.sax.saxutils import escape

from repro.layout.placement import Placement
from repro.layout.routing import RoutingResult


@dataclass(frozen=True)
class SvgStyle:
    """Colors and geometry of the rendering."""

    scale: float = 2.0  # SVG pixels per micrometre
    cell_fill: str = "#d7dde4"
    cell_stroke: str = "#8b98a5"
    row_stroke: str = "#eef1f4"
    m1_color: str = "#4d7fb2"
    m2_color: str = "#b25d4d"
    highlight_color: str = "#d4a017"
    highlight_width: float = 2.4
    wire_width: float = 0.8
    background: str = "#ffffff"


def render_layout(
    placement: Placement,
    routing: RoutingResult | None = None,
    highlight_nets: set[str] | None = None,
    style: SvgStyle | None = None,
    title: str | None = None,
) -> str:
    """Render the layout as an SVG document string."""
    style = style if style is not None else SvgStyle()
    highlight = highlight_nets if highlight_nets is not None else set()
    tech = placement.technology
    s = style.scale
    width = placement.die_width * s
    height = placement.die_height * s

    parts: list[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.1f} {height:.1f}">'
    )
    parts.append(
        f'<rect x="0" y="0" width="{width:.1f}" height="{height:.1f}" '
        f'fill="{style.background}"/>'
    )
    if title:
        parts.append(
            f'<title>{escape(title)}</title>'
        )

    # Rows.
    row_pitch = placement.row_pitch or tech.row_height
    for row in range(placement.n_rows):
        y = row * row_pitch * s
        parts.append(
            f'<rect x="0" y="{y:.1f}" width="{width:.1f}" '
            f'height="{row_pitch * s:.1f}" fill="none" '
            f'stroke="{style.row_stroke}"/>'
        )

    # Cells.
    circuit = placement.circuit
    for name, point in placement.cell_pos.items():
        cell = circuit.cells[name]
        cell_width = tech.cell_width(cell.ctype.transistor_count()) * s
        cell_height = min(tech.row_height, row_pitch) * 0.6 * s
        x = point.x * s - cell_width / 2
        y = point.y * s - cell_height / 2
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{cell_width:.1f}" '
            f'height="{cell_height:.1f}" fill="{style.cell_fill}" '
            f'stroke="{style.cell_stroke}" stroke-width="0.5">'
            f'<title>{escape(name)} ({escape(cell.ctype.name)})</title></rect>'
        )

    # Wires.
    if routing is not None:
        pitch = placement.technology.track_pitch
        for net_name, route in routing.routes.items():
            emphasized = net_name in highlight
            color = (
                style.highlight_color
                if emphasized
                else (style.m1_color)
            )
            for seg in route.segments():
                stroke = style.highlight_color if emphasized else (
                    style.m1_color if seg.layer == 1 else style.m2_color
                )
                stroke_width = style.highlight_width if emphasized else style.wire_width
                if seg.layer == 1:
                    y = seg.track * pitch * s
                    x1, x2 = seg.lo * s, seg.hi * s
                    line = (
                        f'<line x1="{x1:.1f}" y1="{y:.1f}" x2="{x2:.1f}" '
                        f'y2="{y:.1f}"'
                    )
                else:
                    x = seg.track * pitch * s
                    y1, y2 = seg.lo * s, seg.hi * s
                    line = (
                        f'<line x1="{x:.1f}" y1="{y1:.1f}" x2="{x:.1f}" '
                        f'y2="{y2:.1f}"'
                    )
                parts.append(
                    f'{line} stroke="{stroke}" stroke-width="{stroke_width}">'
                    f'<title>{escape(net_name)}</title></line>'
                )

    parts.append("</svg>")
    return "\n".join(parts)


def save_layout_svg(
    path: str,
    placement: Placement,
    routing: RoutingResult | None = None,
    highlight_nets: set[str] | None = None,
    style: SvgStyle | None = None,
    title: str | None = None,
) -> None:
    """Render and write the SVG to ``path``."""
    svg = render_layout(placement, routing, highlight_nets, style, title)
    with open(path, "w") as handle:
        handle.write(svg)
