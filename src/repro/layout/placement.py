"""Row-based standard-cell placement.

A lightweight timing-driven-ish placer: cells are sorted by logic level so
that connected cells land in nearby rows/columns, then packed into rows of
roughly equal width (serpentine order).  Ports sit on the die edges.  The
point of this placer is not optimality -- it is to give the router and the
extractor realistic geometry: mostly-short nets with a tail of long ones,
and many parallel adjacent runs in the channels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.circuit.netlist import Circuit
from repro.layout.geometry import Point
from repro.layout.technology import Technology, default_technology


@dataclass
class Placement:
    """Placement result: cell and port locations (um).

    ``row_pitch`` is the realised row spacing: at least the technology's
    ``row_height``, stretched when routing demand needs taller channels
    (channel-routed designs grow their channels to fit; see
    :func:`_stretch_for_routability`).
    """

    circuit: Circuit
    technology: Technology
    cell_pos: dict[str, Point] = field(default_factory=dict)
    port_pos: dict[str, Point] = field(default_factory=dict)
    n_rows: int = 0
    die_width: float = 0.0
    die_height: float = 0.0
    row_pitch: float = 0.0

    def location(self, terminal: str) -> Point:
        """Location of a cell (by name) or port (by name)."""
        pos = self.cell_pos.get(terminal)
        if pos is not None:
            return pos
        pos = self.port_pos.get(terminal)
        if pos is not None:
            return pos
        raise KeyError(f"unknown terminal {terminal!r}")

    def row_of(self, y: float) -> int:
        """Row index containing the given y coordinate."""
        pitch = self.row_pitch or self.technology.row_height
        return max(0, min(self.n_rows - 1, int(y / pitch)))

    def total_wirelength_estimate(self) -> float:
        """Half-perimeter wirelength estimate over all nets (um)."""
        total = 0.0
        for net in self.circuit.nets.values():
            points = []
            if net.driver is not None:
                points.append(self._terminal_point(net.driver))
            for sink in net.sinks:
                points.append(self._terminal_point(sink))
            if len(points) < 2:
                continue
            xs = [p.x for p in points]
            ys = [p.y for p in points]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total

    def _terminal_point(self, pin_or_port) -> Point:
        cell = getattr(pin_or_port, "cell", None)
        if cell is not None:
            return self.cell_pos[cell.name]
        return self.port_pos[pin_or_port.name]


def place(
    circuit: Circuit,
    technology: Technology | None = None,
    refine_iterations: int = 8,
) -> Placement:
    """Place the circuit's cells into rows.

    Two phases: a serpentine seed placement in topological order, then
    ``refine_iterations`` rounds of force-directed refinement (each cell
    pulled to the centroid of its connected cells) with row legalization.
    """
    tech = technology if technology is not None else default_technology()
    cells = _ordered_cells(circuit)
    widths = {c.name: tech.cell_width(c.ctype.transistor_count()) for c in cells}
    total_width = sum(widths.values())

    # Near-square die: n_rows * row_height ~ total_width / n_rows.
    n_rows = max(1, round(math.sqrt(total_width / tech.row_height)))
    row_capacity = total_width / n_rows * 1.15

    placement = Placement(circuit=circuit, technology=tech, n_rows=n_rows)
    placement.die_width = row_capacity
    placement.die_height = n_rows * tech.row_height

    _legalize(placement, cells, widths, [i for i, _ in enumerate(cells)], row_capacity, n_rows)
    _place_ports(circuit, placement)

    neighbours = _neighbour_map(circuit)
    best_positions = dict(placement.cell_pos)
    best_wirelength = placement.total_wirelength_estimate()
    for _ in range(refine_iterations):
        _refine_once(placement, cells, widths, neighbours, row_capacity, n_rows)
        wirelength = placement.total_wirelength_estimate()
        if wirelength < best_wirelength:
            best_wirelength = wirelength
            best_positions = dict(placement.cell_pos)
    placement.cell_pos = best_positions
    _stretch_for_routability(placement)
    return placement


def _stretch_for_routability(placement: Placement, margin: float = 1.3) -> None:
    """Grow the row pitch until the horizontal track supply covers the
    estimated trunk demand.

    Channel-routed two-metal designs size their channels to demand; a
    fixed row height starves large designs (demand grows ~N^1.5, supply
    ~N) and sends the router on long overflow searches.  Stretching only
    y coordinates leaves x demand unchanged while the track supply scales
    with the factor.
    """
    tech = placement.technology
    demand = 0.0  # um of horizontal trunk
    for net in placement.circuit.nets.values():
        terminals = ([net.driver] if net.driver is not None else []) + net.sinks
        if len(terminals) < 2:
            continue
        xs = [placement._terminal_point(t).x for t in terminals]
        demand += max(xs) - min(xs)
    tracks_per_row = tech.row_height / tech.track_pitch
    supply = tracks_per_row * placement.n_rows * placement.die_width
    factor = max(1.0, margin * demand / max(supply, 1e-9))
    placement.row_pitch = tech.row_height * factor
    if factor > 1.0:
        placement.cell_pos = {
            name: Point(p.x, p.y * factor) for name, p in placement.cell_pos.items()
        }
        placement.port_pos = {
            name: Point(p.x, p.y * factor) for name, p in placement.port_pos.items()
        }
        placement.die_height *= factor


def _neighbour_map(circuit: Circuit) -> dict[str, list[str]]:
    """Cell -> connected terminals (cell or port names), net-degree capped
    so huge nets (clock root) do not dominate the centroid."""
    neighbours: dict[str, list[str]] = {c: [] for c in circuit.cells}
    for net in circuit.nets.values():
        terminals = []
        if net.driver is not None:
            terminals.append(net.driver)
        terminals.extend(net.sinks)
        if len(terminals) < 2 or len(terminals) > 16:
            continue
        names = [
            t.cell.name if hasattr(t, "cell") else t.name  # Pin vs Port
            for t in terminals
        ]
        for t, name in zip(terminals, names):
            if hasattr(t, "cell"):
                others = [n for n in names if n != name]
                neighbours[name].extend(others)
    return neighbours


def _refine_once(placement, cells, widths, neighbours, row_capacity, n_rows) -> None:
    """One force-directed sweep: targets = neighbour centroids, then
    legalize by sorting into rows."""
    targets: dict[str, Point] = {}
    for cell in cells:
        conn = neighbours.get(cell.name, ())
        if not conn:
            targets[cell.name] = placement.cell_pos[cell.name]
            continue
        sx = sy = 0.0
        for other in conn:
            p = placement.cell_pos.get(other) or placement.port_pos.get(other)
            sx += p.x
            sy += p.y
        targets[cell.name] = Point(sx / len(conn), sy / len(conn))
    order = sorted(range(len(cells)), key=lambda i: (targets[cells[i].name].y, targets[cells[i].name].x))
    _legalize(placement, cells, widths, order, row_capacity, n_rows, targets)


def _legalize(placement, cells, widths, order, row_capacity, n_rows, targets=None) -> None:
    """Pack cells into rows following ``order``; within a row, cells are
    sorted by target x and packed abutting from the left."""
    tech = placement.technology
    row = 0
    row_cells: list[int] = []
    used = 0.0

    def flush(row_index: int, members: list[int]) -> None:
        if targets is not None:
            members.sort(key=lambda i: targets[cells[i].name].x)
        x = 0.0
        total = sum(widths[cells[i].name] for i in members)
        # Spread slack evenly so rows stay aligned with the die width.
        gap = max(0.0, (row_capacity - total)) / (len(members) + 1)
        for i in members:
            w = widths[cells[i].name]
            x += gap
            placement.cell_pos[cells[i].name] = Point(
                x + w / 2.0, (row_index + 0.5) * tech.row_height
            )
            x += w

    for i in order:
        w = widths[cells[i].name]
        if used + w > row_capacity and row < n_rows - 1 and row_cells:
            flush(row, row_cells)
            row += 1
            row_cells = []
            used = 0.0
        row_cells.append(i)
        used += w
    if row_cells:
        flush(row, row_cells)
    placement.n_rows = max(placement.n_rows, row + 1)


def _ordered_cells(circuit: Circuit):
    """Cells in placement seed order: depth-first through the fanout from
    each timing source, so logically connected cells (clusters) receive
    consecutive placement slots."""
    ordered = []
    seen: set[str] = set()

    def visit(cell) -> None:
        stack = [cell]
        while stack:
            current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            ordered.append(current)
            out_net = current.output_pin.net
            if out_net is None:
                continue
            for sink_cell in out_net.sink_cells():
                if sink_cell.name not in seen:
                    stack.append(sink_cell)

    for net in circuit.timing_sources():
        driver = net.driver_cell()
        if driver is not None and driver.name not in seen:
            visit(driver)
        for sink_cell in net.sink_cells():
            if sink_cell.name not in seen:
                visit(sink_cell)
    # Anything unreachable (clock buffers, isolated cells) goes last.
    for cell in circuit.cells.values():
        if cell.name not in seen:
            visit(cell)
    return ordered


def _place_ports(circuit: Circuit, placement: Placement) -> None:
    tech = placement.technology
    inputs = sorted(circuit.inputs)
    outputs = sorted(circuit.outputs)
    for i, name in enumerate(inputs):
        y = (i + 1) * placement.die_height / (len(inputs) + 1)
        placement.port_pos[name] = Point(0.0, _snap(y, tech))
    for i, name in enumerate(outputs):
        y = (i + 1) * placement.die_height / (len(outputs) + 1)
        placement.port_pos[name] = Point(placement.die_width, _snap(y, tech))


def _snap(y: float, tech: Technology) -> float:
    return round(y / tech.track_pitch) * tech.track_pitch
