"""repro -- Crosstalk-aware static timing analysis.

A from-scratch reproduction of M. Ringe, T. Lindenkreuz, E. Barke,
"Static Timing Analysis Taking Crosstalk into Account" (DATE 2000):
a transistor-level static timing analyzer whose longest-path bound
accounts for the delay impact of capacitive coupling, together with every
substrate the paper relies on -- standard-cell netlists, a 0.5 um
two-metal place/route/extract flow, table-based device models, and an MNA
transient simulator for validation.

Quick start::

    from repro import AnalysisMode, CrosstalkSTA, prepare_design, s27

    design = prepare_design(s27())
    sta = CrosstalkSTA(design)
    results = sta.run_all_modes()
    for mode, result in results.items():
        print(mode.value, result.longest_delay_ns, "ns")
"""

from repro.circuit import (
    Circuit,
    default_library,
    generate_circuit,
    load_bench,
    map_to_circuit,
    parse_bench,
    s27,
    s35932_like,
    s38417_like,
    s38584_like,
    validate_circuit,
)
from repro.core import (
    AnalysisMode,
    CriticalPath,
    CrosstalkSTA,
    MinAnalysisMode,
    MinPropagator,
    SlackResult,
    StaConfig,
    StaResult,
    WindowCheck,
    check_hold,
    check_mode_ordering,
    check_setup,
    compute_slack,
    extract_critical_path,
    format_table,
    minimum_period,
    rank_crosstalk_nets,
)
from repro.flow import (
    Design,
    prepare_design,
    repair_crosstalk,
    repair_session,
    respace_nets,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisMode",
    "Circuit",
    "CriticalPath",
    "CrosstalkSTA",
    "Design",
    "MinAnalysisMode",
    "MinPropagator",
    "SlackResult",
    "StaConfig",
    "StaResult",
    "WindowCheck",
    "__version__",
    "check_hold",
    "check_mode_ordering",
    "check_setup",
    "compute_slack",
    "default_library",
    "extract_critical_path",
    "format_table",
    "generate_circuit",
    "load_bench",
    "map_to_circuit",
    "parse_bench",
    "minimum_period",
    "prepare_design",
    "rank_crosstalk_nets",
    "repair_crosstalk",
    "repair_session",
    "respace_nets",
    "s27",
    "s35932_like",
    "s38417_like",
    "s38584_like",
    "validate_circuit",
]
