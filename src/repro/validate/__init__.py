"""Paper-style validation: longest-path simulation with aggressor
alignment, compared against the STA bounds."""

from repro.validate.align import (
    AlignmentRecord,
    SimulationOutcome,
    align_aggressors,
    quiet_simulation,
    simulate_path,
)
from repro.validate.compare import TableComparison, run_table_comparison
from repro.validate.pathsim import AggressorHandle, PathCircuit, build_path_circuit

__all__ = [
    "AggressorHandle",
    "AlignmentRecord",
    "PathCircuit",
    "SimulationOutcome",
    "TableComparison",
    "align_aggressors",
    "build_path_circuit",
    "quiet_simulation",
    "run_table_comparison",
    "simulate_path",
]
