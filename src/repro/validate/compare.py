"""STA-versus-simulation comparison (the paper's table methodology).

For one design: run the five analysis modes, extract the longest path of
the reference mode, simulate it quiet (coupling ignored) and with
iteratively aligned worst-case aggressors, and assemble one record per
paper table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analyzer import CrosstalkSTA, StaResult
from repro.core.modes import AnalysisMode
from repro.core.paths import CriticalPath
from repro.flow.design import Design
from repro.validate.align import align_aggressors, quiet_simulation
from repro.validate.pathsim import build_path_circuit


@dataclass
class TableComparison:
    """Everything one paper table reports for one circuit."""

    design_name: str
    cell_count: int
    results: dict[AnalysisMode, StaResult]
    path: CriticalPath
    sim_quiet_delay: float | None = None
    sim_windowed_delay: float | None = None
    sim_worst_delay: float | None = None
    alignment_iterations: int = 0

    def delays_ns(self) -> dict[str, float]:
        table = {
            mode.value: res.longest_delay * 1e9 for mode, res in self.results.items()
        }
        if self.sim_quiet_delay is not None:
            table["simulation_quiet"] = self.sim_quiet_delay * 1e9
        if self.sim_windowed_delay is not None:
            table["simulation_windowed"] = self.sim_windowed_delay * 1e9
        if self.sim_worst_delay is not None:
            table["simulation_worst"] = self.sim_worst_delay * 1e9
        return table

    @property
    def coupling_impact(self) -> float:
        """Worst-case minus best-case delay -- the paper's measure of how
        much coupling matters (Section 6 quotes 1.4-2.8 ns)."""
        return (
            self.results[AnalysisMode.WORST_CASE].longest_delay
            - self.results[AnalysisMode.BEST_CASE].longest_delay
        )


def run_table_comparison(
    design: Design,
    sta: CrosstalkSTA | None = None,
    reference_mode: AnalysisMode = AnalysisMode.ITERATIVE,
    simulate: bool = True,
    aggressor_transition: float = 10e-12,
    sim_steps: int = 2400,
    modes: list[AnalysisMode] | None = None,
) -> TableComparison:
    """Produce one paper-style table for a prepared design."""
    if sta is None:
        sta = CrosstalkSTA(design)
    mode_list = modes if modes is not None else list(AnalysisMode)
    results = {mode: sta.run(mode) for mode in mode_list}

    reference = results[reference_mode]
    path = sta.critical_path(reference)
    comparison = TableComparison(
        design_name=design.name,
        cell_count=design.circuit.cell_count(),
        results=results,
        path=path,
    )
    if not simulate or not path.steps:
        return comparison

    assert reference.final_pass is not None
    state = reference.final_pass.state

    # Each simulation must launch with the stimulus of the mode it
    # validates: the bound includes the mode's own launch timing, so e.g.
    # driving the quiet simulation with the (later, coupled) iterative
    # launch would not be comparable to the best-case bound.
    quiet_state = state
    if AnalysisMode.BEST_CASE in results:
        best = results[AnalysisMode.BEST_CASE]
        assert best.final_pass is not None
        quiet_state = best.final_pass.state
    worst_state = state
    if AnalysisMode.WORST_CASE in results:
        worst_result = results[AnalysisMode.WORST_CASE]
        assert worst_result.final_pass is not None
        worst_state = worst_result.final_pass.state

    # Quiet aggressors: validates the best-case row.
    quiet_circuit = build_path_circuit(
        design, path, quiet_state, aggressor_transition=aggressor_transition
    )
    comparison.sim_quiet_delay = quiet_simulation(
        quiet_circuit, steps=sim_steps
    ).path_delay

    # Feasible-window alignment: validates the one-step/iterative rows.
    circuit = build_path_circuit(
        design, path, state, aggressor_transition=aggressor_transition
    )
    windowed = align_aggressors(
        circuit, steps=sim_steps, quiet_times=state.quiet_snapshot()
    )
    comparison.sim_windowed_delay = windowed.path_delay

    # Unconstrained alignment: validates the worst-case row.
    worst_circuit = build_path_circuit(
        design, path, worst_state, aggressor_transition=aggressor_transition
    )
    worst = align_aggressors(worst_circuit, steps=sim_steps)
    comparison.sim_worst_delay = worst.path_delay
    comparison.alignment_iterations = len(worst.history)
    return comparison
