"""Build a transistor-level simulation circuit for a critical path.

Reproduces the paper's validation methodology (Section 6): "The
simulations of the longest paths were done with lumped resistances and
capacitances extracted from the layout", with the coupling capacitances
attached to piecewise-linear aggressor sources.

The simulation circuit contains, for every stage on the path:

* the driving cell's full transistor network (internal stack nodes
  included), side inputs tied to their non-controlling rails,
* explicit gate and drain-junction capacitances for each device,
* the extracted RC tree of the output net with off-path sink pin loads,
* one floating coupling capacitance per extracted neighbour, attached to
  a PWL aggressor source (or, when the neighbour itself lies on the path,
  directly between the two victim nets).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.circuit.netlist import Cell, Pin
from repro.core.graph import TimingState
from repro.core.paths import CriticalPath, PathStep
from repro.devices.mosfet import Mosfet, MosfetParams
from repro.flow.design import Design
from repro.spice.netlist import SimCircuit
from repro.spice.elements import PwlSource
from repro.waveform.pwl import FALLING, RISING, opposite

_MIN_TREE_RESISTANCE = 1e-3  # ohms; stands in for zero-length tree edges

VDD_NODE = "vdd"
GND_NODE = "0"


@dataclass
class AggressorHandle:
    """One adjustable aggressor source in the path circuit."""

    victim_net: str
    aggressor_net: str
    node: str
    coupling_cap: float
    direction: str  # the aggressor's own transition direction
    t_switch: float
    transition: float

    def pwl_points(self, vdd: float) -> list[tuple[float, float]]:
        ramp = max(self.transition, 1e-15)
        if self.direction == RISING:
            v0, v1 = 0.0, vdd
        else:
            v0, v1 = vdd, 0.0
        return [(self.t_switch, v0), (self.t_switch + ramp, v1)]


@dataclass
class PathCircuit:
    """The assembled simulation circuit plus its measurement metadata."""

    sim: SimCircuit
    design: Design
    path: CriticalPath
    stimulus_node: str
    stimulus_direction: str
    stimulus_t_start: float
    stimulus_transition: float
    endpoint_node: str
    endpoint_direction: str
    net_probe: dict[str, str] = field(default_factory=dict)
    net_direction: dict[str, str] = field(default_factory=dict)
    aggressors: list[AggressorHandle] = field(default_factory=list)
    initial_voltages: dict[str, float] = field(default_factory=dict)
    t_horizon: float = 0.0

    def rebuild_sources(self) -> None:
        """Re-emit the aggressor PWL points after alignment changes.

        Aggressor sources are stored by reference in the sim circuit, so
        replacing their points requires rebuilding the source list.
        """
        vdd = self.design.process.vdd
        keep = [
            s
            for s in self.sim.sources
            if not s.a.startswith("aggr::")
        ]
        self.sim.sources = keep
        for handle in self.aggressors:
            self.sim.add_source(
                PwlSource(handle.node, GND_NODE, handle.pwl_points(vdd))
            )


def build_path_circuit(
    design: Design,
    path: CriticalPath,
    state: TimingState,
    aggressor_transition: float = 10e-12,
    include_aggressors: bool = True,
    distributed_coupling: bool = False,
) -> PathCircuit:
    """Assemble the simulation circuit for a critical path.

    ``distributed_coupling`` spreads each victim's coupling capacitance
    uniformly over its RC-tree nodes instead of lumping it at the driver
    -- the fidelity experiment for the paper's noted model restriction
    ("the model ... is restricted to lumped capacitances").
    """
    if not path.steps:
        raise ValueError("cannot simulate an empty path")
    builder = _PathBuilder(
        design, path, state, aggressor_transition, include_aggressors,
        distributed_coupling,
    )
    return builder.build()


class _PathBuilder:
    def __init__(
        self,
        design: Design,
        path: CriticalPath,
        state: TimingState,
        aggressor_transition: float,
        include_aggressors: bool,
        distributed_coupling: bool = False,
    ):
        self.design = design
        self.path = path
        self.state = state
        self.aggressor_transition = aggressor_transition
        self.include_aggressors = include_aggressors
        self.distributed_coupling = distributed_coupling
        self.process = design.process
        self.sim = SimCircuit(f"path::{path.endpoint}")
        self.initial: dict[str, float] = {VDD_NODE: self.process.vdd}
        self.net_probe: dict[str, str] = {}
        self.net_direction: dict[str, str] = {}
        self.aggressors: list[AggressorHandle] = []

    # -- top level ----------------------------------------------------------

    def build(self) -> PathCircuit:
        design = self.design
        process = self.process
        self.sim.add_vdc(VDD_NODE, process.vdd)

        steps = self.path.steps
        first_comb = 0
        if design.circuit.cells[steps[0].cell].is_sequential:
            first_comb = 1

        # Record each on-path net's transition direction.
        if first_comb == 0:
            self.net_direction[steps[0].in_net] = steps[0].in_direction
        for step in steps[first_comb:]:
            self.net_direction.setdefault(step.in_net, step.in_direction)
            self.net_direction[step.out_net] = step.out_direction
        if first_comb == 1:
            self.net_direction[steps[0].out_net] = steps[0].out_direction

        # Stimulus: the launch transition on the path's source net.
        if first_comb == 1:
            source_net = steps[0].out_net
            source_dir = steps[0].out_direction
            source_event = self.state.event(source_net, source_dir)
        else:
            source_net = steps[0].in_net
            source_dir = steps[0].in_direction
            source_event = self.state.event(source_net, source_dir)
        if source_event is None:
            raise ValueError(f"no event recorded on source net {source_net!r}")
        stim_transition = max(source_event.transition, 1e-12)
        stim_start = source_event.t_cross - 0.5 * stim_transition

        # Wire networks for every on-path net (source included).
        for net_name in self.net_direction:
            self._add_net_wires(net_name)

        # Gate stages.
        for step in steps[first_comb:]:
            self._add_stage(step)

        # Stimulus source at the source net's driver node.
        stim_node = self._net_root(source_net)
        v0 = 0.0 if source_dir == RISING else process.vdd
        v1 = process.vdd - v0
        self.sim.add_source(
            PwlSource(stim_node, GND_NODE, [(stim_start, v0), (stim_start + stim_transition, v1)])
        )
        self.initial[stim_node] = v0

        # Coupling capacitances and aggressor sources.
        if self.include_aggressors:
            self._add_coupling()

        # Endpoint probe.
        last = steps[-1]
        endpoint_node = self._endpoint_node(last)
        endpoint_event = self.state.event(last.out_net, last.out_direction)
        horizon = (
            (endpoint_event.t_late if endpoint_event is not None else 0.0)
            * 1.6
            + 2e-9
        )

        circuit = PathCircuit(
            sim=self.sim,
            design=self.design,
            path=self.path,
            stimulus_node=stim_node,
            stimulus_direction=source_dir,
            stimulus_t_start=stim_start,
            stimulus_transition=stim_transition,
            endpoint_node=endpoint_node,
            endpoint_direction=last.out_direction,
            net_probe=self.net_probe,
            net_direction=self.net_direction,
            aggressors=self.aggressors,
            initial_voltages=self.initial,
            t_horizon=horizon,
        )
        circuit.rebuild_sources()
        return circuit

    # -- pieces --------------------------------------------------------------

    def _net_root(self, net_name: str) -> str:
        """Simulator node at the driver output of a net."""
        probe = self.net_probe.get(net_name)
        if probe is not None:
            return probe
        # Unrouted net: a single shared node.
        node = f"net::{net_name}"
        self.net_probe[net_name] = node
        return node

    def _net_sink_node(self, net_name: str, terminal: str) -> str:
        """Simulator node at a sink terminal of a net."""
        pnet = self.design.extraction.nets.get(net_name)
        if pnet is None:
            return self._net_root(net_name)
        names = set(pnet.rc_tree.terminal_names())
        if terminal in names:
            return f"{net_name}::{terminal}"
        return self._net_root(net_name)

    def _add_net_wires(self, net_name: str) -> None:
        """Instantiate the extracted RC tree of a net, plus off-path sink
        pin loads."""
        process = self.process
        net = self.design.circuit.nets.get(net_name)
        direction = self.net_direction[net_name]
        initial = 0.0 if direction == RISING else process.vdd

        pnet = self.design.extraction.nets.get(net_name)
        if pnet is None:
            node = self._net_root(net_name)
            self.initial[node] = initial
            load = self.design.loads.get(net_name)
            if load is not None and load.c_fixed > 0:
                self.sim.add_capacitor(node, GND_NODE, load.c_fixed)
            return

        tree = pnet.rc_tree
        node_names: list[str] = []
        for tree_node in tree.nodes:
            if tree_node.name:
                name = f"{net_name}::{tree_node.name}"
            else:
                name = f"{net_name}::t{tree_node.index}"
            node_names.append(name)
            self.initial[name] = initial
            if tree_node.cap > 0:
                self.sim.add_capacitor(name, GND_NODE, tree_node.cap)
            if tree_node.parent >= 0:
                self.sim.add_resistor(
                    node_names[tree_node.parent],
                    name,
                    max(tree_node.r_to_parent, _MIN_TREE_RESISTANCE),
                )
        self.net_probe[net_name] = node_names[tree.root]

        # Pin loads of sinks whose gates are not instantiated.
        on_path_cells = {step.cell for step in self.path.steps}
        if net is not None:
            for sink in net.sinks:
                if isinstance(sink, Pin) and sink.cell.name in on_path_cells:
                    continue  # physical transistors provide this load
                terminal = sink.full_name if isinstance(sink, Pin) else sink.name
                cap = 0.0
                if isinstance(sink, Pin):
                    cap = sink.cell.ctype.input_cap(sink.name, process)
                if cap > 0:
                    self.sim.add_capacitor(
                        self._net_sink_node(net_name, terminal), GND_NODE, cap
                    )

    def _add_stage(self, step: PathStep) -> None:
        """Instantiate one on-path cell at transistor level."""
        process = self.process
        cell = self.design.circuit.cells[step.cell]
        ctype = cell.ctype
        out_node = self._net_root(step.out_net)
        in_node = self._net_sink_node(step.in_net, f"{step.cell}/{step.in_pin}")

        side_values = _sensitizing_side_inputs(ctype, step.in_pin)
        devices = ctype.topology.flatten(
            output=out_node, vdd=VDD_NODE, gnd=GND_NODE, prefix=step.cell
        )
        for index, flat in enumerate(devices):
            if flat.gate_pin == step.in_pin:
                gate_node = in_node
            else:
                gate_node = VDD_NODE if side_values[flat.gate_pin] else GND_NODE
            device = Mosfet(
                MosfetParams(polarity=flat.polarity, width=flat.width, length=process.l_min),
                process,
            )
            self.sim.add_mosfet(
                f"{step.cell}.m{index}", flat.drain, gate_node, flat.source, device
            )
            # Device parasitics the collapsed timing model accounts for via
            # pin/junction caps: make them physical here.
            self.sim.add_capacitor(gate_node, GND_NODE, process.gate_cap(flat.width))
            self.sim.add_capacitor(flat.drain, GND_NODE, process.c_junction * flat.width)
            # Internal stack nodes start near their conducting rail.
            for terminal in (flat.drain, flat.source):
                if terminal.startswith(step.cell + "."):
                    self.initial.setdefault(
                        terminal,
                        0.0 if flat.polarity > 0 else process.vdd,
                    )

    def _victim_attachment_nodes(self, net_name: str) -> list[str]:
        """Where a victim's coupling capacitance attaches: the driver node
        (lumped, the model's assumption) or spread over the wire's tree
        nodes (distributed)."""
        if not self.distributed_coupling:
            return [self._net_root(net_name)]
        pnet = self.design.extraction.nets.get(net_name)
        if pnet is None:
            return [self._net_root(net_name)]
        nodes = []
        for tree_node in pnet.rc_tree.nodes:
            if tree_node.name:
                nodes.append(f"{net_name}::{tree_node.name}")
            else:
                nodes.append(f"{net_name}::t{tree_node.index}")
        return nodes

    def _add_coupling(self) -> None:
        """Attach every extracted coupling capacitance of on-path nets."""
        process = self.process
        done_pairs: set[tuple[str, str]] = set()
        for net_name, direction in self.net_direction.items():
            load = self.design.loads.get(net_name)
            if load is None:
                continue
            attach = self._victim_attachment_nodes(net_name)
            for other, cap in load.couplings.items():
                if cap <= 0:
                    continue
                if other in self.net_direction:
                    # Neighbour is itself on the path: real victim-victim
                    # coupling, one capacitor for the pair.
                    key = (min(net_name, other), max(net_name, other))
                    if key in done_pairs:
                        continue
                    done_pairs.add(key)
                    self.sim.add_capacitor(
                        self._net_root(net_name), self._net_root(other), cap
                    )
                    continue
                aggressor_dir = opposite(direction)
                node = f"aggr::{net_name}::{other}"
                event = self.state.event(net_name, direction)
                t_guess = event.t_early if event is not None else 0.0
                handle = AggressorHandle(
                    victim_net=net_name,
                    aggressor_net=other,
                    node=node,
                    coupling_cap=cap,
                    direction=aggressor_dir,
                    t_switch=t_guess,
                    transition=self.aggressor_transition,
                )
                self.aggressors.append(handle)
                share = cap / len(attach)
                for victim_node in attach:
                    self.sim.add_capacitor(victim_node, node, share)
                self.initial[node] = 0.0 if aggressor_dir == RISING else process.vdd

    def _endpoint_node(self, last: PathStep) -> str:
        """Node where the endpoint arrival is measured: the endpoint
        terminal on the last net's tree if present, else the driver."""
        pnet = self.design.extraction.nets.get(last.out_net)
        if pnet is None:
            return self._net_root(last.out_net)
        terminals = pnet.rc_tree.terminal_names()
        endpoint = self.path.endpoint
        if endpoint in terminals:
            return f"{last.out_net}::{endpoint}"
        return self._net_root(last.out_net)


def _sensitizing_side_inputs(ctype, switching_pin: str) -> dict[str, bool]:
    """Pick constant values for the non-switching inputs so the output
    follows the switching pin (the gate is sensitized)."""
    others = [p for p in ctype.inputs if p != switching_pin]
    if ctype.function is None:
        # Sequential cell output driver is an inverter on "A".
        return {}
    for assignment in itertools.product((True, False), repeat=len(others)):
        values = dict(zip(others, assignment))
        lo = dict(values)
        hi = dict(values)
        lo[switching_pin] = False
        hi[switching_pin] = True
        if ctype.evaluate(lo) != ctype.evaluate(hi):
            return values
    raise ValueError(
        f"cannot sensitize {ctype.name} through pin {switching_pin!r}"
    )
