"""Iterative aggressor alignment.

The paper's validation runs required that "piecewise linear sources had to
be iteratively adjusted to obtain worst-case path delays at every coupling
capacitance" (Section 6).  This module implements that adjustment as a
fixed-point iteration: simulate, observe when each victim actually crosses
its trigger voltage, move each aggressor's switching instant there, and
repeat until the endpoint delay stops increasing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spice.measure import crossing, last_crossing
from repro.spice.transient import TransientResult, TransientSimulator
from repro.validate.pathsim import PathCircuit
from repro.waveform.coupling import CouplingLoad
from repro.waveform.pwl import FALLING, RISING


@dataclass
class AlignmentRecord:
    """One alignment iteration."""

    iteration: int
    endpoint_arrival: float
    moved: float  # largest aggressor-time adjustment this round


@dataclass
class SimulationOutcome:
    """Measured results of one (aligned or quiet) path simulation."""

    endpoint_arrival: float
    stimulus_cross: float
    result: TransientResult
    history: list[AlignmentRecord] = field(default_factory=list)

    @property
    def path_delay(self) -> float:
        """Launch-to-capture delay (endpoint arrival, the quantity the
        paper's tables report)."""
        return self.endpoint_arrival


def simulate_path(
    circuit: PathCircuit,
    steps: int = 2400,
) -> SimulationOutcome:
    """One transient run of the path circuit as currently configured."""
    sim = TransientSimulator(circuit.sim)
    dt = circuit.t_horizon / steps
    result = sim.run(
        t_stop=circuit.t_horizon,
        dt=dt,
        initial_voltages=circuit.initial_voltages,
    )
    vdd = circuit.design.process.vdd
    endpoint_arrival = last_crossing(
        result, circuit.endpoint_node, 0.5 * vdd, circuit.endpoint_direction
    )
    stimulus_cross = crossing(
        result, circuit.stimulus_node, 0.5 * vdd, circuit.stimulus_direction
    )
    return SimulationOutcome(
        endpoint_arrival=endpoint_arrival,
        stimulus_cross=stimulus_cross,
        result=result,
    )


def quiet_simulation(circuit: PathCircuit, steps: int = 2400) -> SimulationOutcome:
    """Simulate with all aggressors held at their initial rails (coupling
    capacitances still present, i.e. the best-case assumption)."""
    saved = [(h.t_switch,) for h in circuit.aggressors]
    for handle in circuit.aggressors:
        handle.t_switch = circuit.t_horizon * 10.0  # never fires
    circuit.rebuild_sources()
    try:
        return simulate_path(circuit, steps)
    finally:
        for handle, (t,) in zip(circuit.aggressors, saved):
            handle.t_switch = t
        circuit.rebuild_sources()


def align_aggressors(
    circuit: PathCircuit,
    max_iterations: int = 5,
    tolerance: float = 1e-12,
    steps: int = 2400,
    quiet_times: dict[tuple[str, str], float] | None = None,
    windows: dict[tuple[str, str], tuple[float, float]] | None = None,
) -> SimulationOutcome:
    """Fixed-point alignment of every aggressor source.

    Each iteration simulates the path, then re-times every aggressor so
    its swing is centred on the moment its victim crosses the trigger
    voltage of the coupling model (the empirically worst instant: the
    divider drop then pulls the victim back the farthest without being
    absorbed by the driver early in the transition).

    ``quiet_times`` optionally constrains each aggressor to its *feasible*
    window: a per-(net, direction) quiescence map (from an STA pass).  An
    aggressor whose transition cannot complete before its quiescent time
    is pulled earlier; one that can never make the opposite transition is
    held quiet.  ``windows`` additionally supplies the earliest possible
    activity per (net, direction) so aggressors are also kept from firing
    before they feasibly could (needed to validate the two-sided OVERLAP
    check).  Unconstrained alignment validates the worst-case mode;
    constrained alignment validates the window-based modes, whose whole
    point is that some aggressors are provably quiet by the time the
    victim switches.
    """
    vdd = circuit.design.process.vdd
    process = circuit.design.process
    best: SimulationOutcome | None = None
    history: list[AlignmentRecord] = []

    for iteration in range(1, max_iterations + 1):
        outcome = simulate_path(circuit, steps)
        if best is None or outcome.endpoint_arrival > best.endpoint_arrival:
            best = outcome

        moved = 0.0
        for handle in circuit.aggressors:
            victim_dir = circuit.net_direction[handle.victim_net]
            load = circuit.design.loads[handle.victim_net]
            trigger = CouplingLoad(
                c_ground=load.c_fixed + load.c_coupling_total - handle.coupling_cap,
                c_couple_active=handle.coupling_cap,
            ).trigger_voltage(victim_dir, process)
            trigger = min(max(trigger, 0.05 * vdd), 0.95 * vdd)
            probe = circuit.net_probe[handle.victim_net]
            try:
                t_trigger = crossing(outcome.result, probe, trigger, victim_dir)
            except ValueError:
                continue
            target = t_trigger - 0.5 * handle.transition
            key = (handle.aggressor_net, handle.direction)
            t_feasible_early = float("-inf")
            t_feasible_quiet = None
            if windows is not None:
                t_feasible_early, t_feasible_quiet = windows.get(
                    key, (float("inf"), float("-inf"))
                )
            elif quiet_times is not None:
                t_feasible_quiet = quiet_times.get(key, float("-inf"))
            if t_feasible_quiet is not None:
                if t_feasible_quiet == float("-inf"):
                    # This aggressor never makes the opposite transition.
                    target = circuit.t_horizon * 10.0
                else:
                    target = min(target, t_feasible_quiet - handle.transition)
                    target = max(target, t_feasible_early)
                    if target > t_feasible_quiet - handle.transition:
                        # Window too narrow for the ramp: hold quiet.
                        target = circuit.t_horizon * 10.0
            moved = max(moved, abs(target - handle.t_switch))
            handle.t_switch = target
        circuit.rebuild_sources()
        history.append(
            AlignmentRecord(
                iteration=iteration,
                endpoint_arrival=outcome.endpoint_arrival,
                moved=moved,
            )
        )
        if moved < tolerance:
            break

    assert best is not None
    best.history = history
    return best
