"""Metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per analysis run (shared by the analyzer,
the propagator and the gate-delay calculator) replaces the ad-hoc
statistics dicts that used to live in each of those modules.  Series are
keyed by name plus optional labels; instruments are plain mutable
objects, so hot paths resolve them once and call ``inc``/``observe``
without any dict lookup.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-safe dicts.
They support two algebraic operations the system needs:

* :meth:`MetricsRegistry.merge_snapshot` -- fold a snapshot produced in
  another process (the ``ProcessPoolExecutor`` arc-solver workers) into
  this registry: counters and histogram buckets add, gauges last-write;
* :func:`diff_snapshots` -- per-run deltas, so each analysis mode of a
  shared-cache analyzer reports only its own work.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable

# Bucket boundaries for total Newton iterations per solved arc (a stage
# integrates ~120-480 backward-Euler steps at ~1-3 iterations each).
NEWTON_ITER_BUCKETS = (60, 120, 180, 240, 360, 480, 720, 960, 1440, 1920)

# Generic small-count boundaries (waves per level, passes, ...).
SMALL_COUNT_BUCKETS = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)


class Counter:
    """Monotonically increasing value (ints or float seconds)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """Last-written value (``None`` until first set)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = None

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = None


class Histogram:
    """Fixed-boundary histogram (``len(boundaries) + 1`` buckets).

    Bucket ``i`` counts observations ``v`` with
    ``boundaries[i-1] < v <= boundaries[i]``; the last bucket is the
    overflow (``v > boundaries[-1]``).
    """

    __slots__ = ("boundaries", "bucket_counts", "count", "total", "vmin", "vmax")
    kind = "histogram"

    def __init__(self, boundaries: Iterable[float]):
        self.boundaries = tuple(sorted(boundaries))
        if not self.boundaries:
            raise ValueError("histogram needs at least one bucket boundary")
        self.bucket_counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = None
        self.vmax = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = None
        self.vmax = None


def series_key(name: str, labels: dict) -> str:
    """Canonical series key: ``name`` or ``name{k=v,...}`` (sorted keys)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Named, labelled instruments with JSON-safe snapshots."""

    def __init__(self):
        self._series: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, key: str, factory, kind: str):
        with self._lock:
            instrument = self._series.get(key)
            if instrument is None:
                instrument = factory()
                self._series[key] = instrument
            elif instrument.kind != kind:
                raise ValueError(
                    f"metric {key!r} already registered as {instrument.kind}"
                )
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(series_key(name, labels), Counter, "counter")

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(series_key(name, labels), Gauge, "gauge")

    def histogram(
        self, name: str, boundaries: Iterable[float] = SMALL_COUNT_BUCKETS, **labels
    ) -> Histogram:
        return self._get_or_create(
            series_key(name, labels), lambda: Histogram(boundaries), "histogram"
        )

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict copy of every series (JSON-serializable)."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        with self._lock:
            for key, instrument in self._series.items():
                if instrument.kind == "counter":
                    counters[key] = instrument.value
                elif instrument.kind == "gauge":
                    gauges[key] = instrument.value
                else:
                    histograms[key] = {
                        "boundaries": list(instrument.boundaries),
                        "counts": list(instrument.bucket_counts),
                        "count": instrument.count,
                        "sum": instrument.total,
                        "min": instrument.vmin,
                        "max": instrument.vmax,
                    }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a snapshot from another registry (typically a worker
        process) into this one: counters and histogram buckets add,
        gauges take the merged value when set."""
        for key, value in snapshot.get("counters", {}).items():
            self.counter(key).inc(value)
        for key, value in snapshot.get("gauges", {}).items():
            if value is not None:
                self.gauge(key).set(value)
        for key, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(key, boundaries=data["boundaries"])
            if list(histogram.boundaries) != list(data["boundaries"]):
                raise ValueError(
                    f"histogram {key!r} bucket boundaries do not match: "
                    f"{list(histogram.boundaries)} vs {data['boundaries']}"
                )
            for i, count in enumerate(data["counts"]):
                histogram.bucket_counts[i] += count
            histogram.count += data["count"]
            histogram.total += data["sum"]
            for bound_name, better in (("min", min), ("max", max)):
                incoming = data.get(bound_name)
                if incoming is None:
                    continue
                attr = "v" + bound_name
                current = getattr(histogram, attr)
                setattr(
                    histogram,
                    attr,
                    incoming if current is None else better(current, incoming),
                )

    def reset(self) -> None:
        with self._lock:
            for instrument in self._series.values():
                instrument.reset()


def diff_snapshots(before: dict, after: dict) -> dict:
    """Per-run delta between two snapshots of the same registry.

    Counters and histogram counts subtract; gauges and histogram
    min/max report the ``after`` value (they are not additive).  Series
    absent from ``before`` pass through unchanged.
    """
    counters = {}
    for key, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(key, 0)
        if delta:
            counters[key] = delta
    gauges = {
        key: value
        for key, value in after.get("gauges", {}).items()
        if value is not None
    }
    histograms = {}
    for key, data in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(key)
        if prior is None:
            if data["count"]:
                histograms[key] = dict(data)
            continue
        count = data["count"] - prior["count"]
        if count <= 0:
            continue
        histograms[key] = {
            "boundaries": list(data["boundaries"]),
            "counts": [a - b for a, b in zip(data["counts"], prior["counts"])],
            "count": count,
            "sum": data["sum"] - prior["sum"],
            "min": data["min"],
            "max": data["max"],
        }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}
