"""Run-level telemetry: the tracer/metrics bundle and its artifacts.

:class:`Observability` is what instrumented code receives: a tracer
(possibly the null one) plus a metrics registry.  :class:`RunTelemetry`
is what one finished analysis run attaches to its result -- the per-run
metrics delta, per-pass records and phase wall-clock -- and what the CLI
serializes behind ``--metrics``.  The module also carries the schema
validators shared by the test suite and the CI smoke job.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

METRICS_SCHEMA = "repro.obs.metrics/1"


@dataclass
class Observability:
    """The tracer + metrics pair threaded through an analysis."""

    tracer: Tracer | NullTracer
    metrics: MetricsRegistry

    @classmethod
    def disabled(cls) -> "Observability":
        """Metrics only (always cheap); tracing compiled out via the
        shared null tracer."""
        return cls(tracer=NULL_TRACER, metrics=MetricsRegistry())

    @classmethod
    def tracing(cls, process_name: str = "repro") -> "Observability":
        """Metrics plus an active span tracer."""
        return cls(tracer=Tracer(process_name), metrics=MetricsRegistry())

    @property
    def tracing_enabled(self) -> bool:
        return self.tracer.enabled


@dataclass
class RunTelemetry:
    """Structured self-description of one finished analysis run."""

    mode: str
    design: str
    runtime_seconds: float
    passes: list[dict] = field(default_factory=list)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    def counter(self, name: str, default: float = 0) -> float:
        """A counter's per-run delta by series key."""
        return self.metrics.get("counters", {}).get(name, default)

    def histogram(self, name: str) -> dict | None:
        return self.metrics.get("histograms", {}).get(name)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "design": self.design,
            "runtime_seconds": self.runtime_seconds,
            "passes": self.passes,
            "phase_seconds": self.phase_seconds,
            "metrics": self.metrics,
        }


def metrics_payload(
    design: str,
    telemetries: dict[str, RunTelemetry],
    registry: MetricsRegistry | None = None,
) -> dict:
    """The ``--metrics`` artifact: per-mode telemetry plus, optionally,
    the cumulative registry snapshot of the whole invocation."""
    payload = {
        "schema": METRICS_SCHEMA,
        "design": design,
        "modes": {mode: tel.to_dict() for mode, tel in telemetries.items()},
    }
    if registry is not None:
        payload["cumulative"] = registry.snapshot()
    return payload


def write_metrics(payload: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


# -- schema validation (shared by tests and the CI smoke job) ---------------


def validate_snapshot(snapshot: dict, where: str = "snapshot") -> list[str]:
    """Structural checks on a metrics snapshot; returns error strings."""
    errors: list[str] = []
    if not isinstance(snapshot, dict):
        return [f"{where}: not an object"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(section, {}), dict):
            errors.append(f"{where}.{section}: not an object")
    for key, data in snapshot.get("histograms", {}).items():
        if not isinstance(data, dict):
            errors.append(f"{where}.histograms[{key}]: not an object")
            continue
        boundaries = data.get("boundaries")
        counts = data.get("counts")
        if not isinstance(boundaries, list) or not boundaries:
            errors.append(f"{where}.histograms[{key}]: missing boundaries")
        if not isinstance(counts, list) or (
            isinstance(boundaries, list) and len(counts) != len(boundaries) + 1
        ):
            errors.append(
                f"{where}.histograms[{key}]: counts must have len(boundaries)+1 entries"
            )
        if isinstance(counts, list) and data.get("count") != sum(
            c for c in counts if isinstance(c, (int, float))
        ):
            errors.append(f"{where}.histograms[{key}]: count != sum(counts)")
    return errors


def validate_metrics_payload(payload: dict) -> list[str]:
    """Validate a ``--metrics`` file; returns error strings (empty = ok)."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["metrics payload: not an object"]
    if payload.get("schema") != METRICS_SCHEMA:
        errors.append(
            f"metrics payload: schema {payload.get('schema')!r} != {METRICS_SCHEMA!r}"
        )
    modes = payload.get("modes")
    if not isinstance(modes, dict) or not modes:
        errors.append("metrics payload: no modes recorded")
        return errors
    for mode, tel in modes.items():
        if not isinstance(tel, dict):
            errors.append(f"modes[{mode}]: not an object")
            continue
        for required in ("mode", "design", "runtime_seconds", "passes", "metrics"):
            if required not in tel:
                errors.append(f"modes[{mode}]: missing {required!r}")
        if not isinstance(tel.get("passes", []), list):
            errors.append(f"modes[{mode}].passes: not a list")
        errors.extend(validate_snapshot(tel.get("metrics", {}), f"modes[{mode}].metrics"))
    if "cumulative" in payload:
        errors.extend(validate_snapshot(payload["cumulative"], "cumulative"))
    return errors


def validate_chrome_trace(payload: dict) -> list[str]:
    """Validate a ``--trace`` file against the Chrome trace-event format;
    returns error strings (empty = ok)."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["trace: not an object (array-form traces are not emitted here)"]
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["trace: traceEvents missing or empty"]
    spans = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"traceEvents[{i}]: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(event.get("name"), str):
            errors.append(f"traceEvents[{i}]: missing name")
        if ph not in ("X", "i", "M", "B", "E"):
            errors.append(f"traceEvents[{i}]: unexpected phase {ph!r}")
        if ph in ("X", "i"):
            if not isinstance(event.get("ts"), (int, float)):
                errors.append(f"traceEvents[{i}]: missing ts")
            if not isinstance(event.get("pid"), int) or not isinstance(
                event.get("tid"), int
            ):
                errors.append(f"traceEvents[{i}]: missing pid/tid")
        if ph == "X":
            spans += 1
            if not isinstance(event.get("dur"), (int, float)):
                errors.append(f"traceEvents[{i}]: complete event missing dur")
    if spans == 0:
        errors.append("trace: no complete ('X') span events")
    return errors
