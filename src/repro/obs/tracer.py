"""Hierarchical span tracer.

A :class:`Tracer` records *spans* -- named, attributed intervals on a
monotonic clock (:func:`time.perf_counter_ns`) -- through a
context-manager API::

    tracer = Tracer()
    with tracer.span("sta.run", mode="one_step"):
        with tracer.span("sta.pass") as span:
            ...
            span.set(arcs=1234)

Spans nest per thread (a thread-local stack assigns parent ids), and the
finished-event list is guarded by a lock, so one tracer may be shared
across threads.  Worker processes do not trace directly; their
aggregated statistics travel back as metrics snapshots
(:meth:`repro.obs.metrics.MetricsRegistry.merge_snapshot`) and foreign
event lists can be folded in with :meth:`Tracer.absorb`.

Two serializations are offered:

* :meth:`Tracer.chrome_payload` / :meth:`write_chrome` -- the Chrome
  trace-event format (``{"traceEvents": [...]}``), loadable directly in
  ``chrome://tracing`` or https://ui.perfetto.dev;
* :meth:`Tracer.write_jsonl` / :func:`read_jsonl` -- one JSON event per
  line, for streaming consumers and machine diffing.

The :data:`NULL_TRACER` singleton implements the same surface as pure
no-ops; instrumented code holds a tracer unconditionally and pays only a
method call returning a shared null span when tracing is disabled.
"""

from __future__ import annotations

import json
import os
import threading
import time

TRACE_SCHEMA = "repro.obs.trace/1"


class _NullSpan:
    """Shared do-nothing span (returned by :class:`NullTracer`)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer stand-in whose every operation is a no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def instant(self, name: str, **attrs) -> None:
        return None

    @property
    def events(self) -> list[dict]:
        return []


NULL_TRACER = NullTracer()


class _Span:
    """One open span; records itself on the tracer when it exits."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "_start_us")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = None
        self._start_us = 0.0

    def set(self, **attrs) -> "_Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        stack = tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.span_id = tracer._new_id()
        stack.append(self)
        self._start_us = tracer._now_us()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        end_us = tracer._now_us()
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        tracer._record(
            {
                "name": self.name,
                "ph": "X",
                "ts": self._start_us,
                "dur": max(end_us - self._start_us, 0.0),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "args": self.attrs,
            }
        )
        return False


class Tracer:
    """Collects spans and instant events on one monotonic time origin."""

    enabled = True

    def __init__(self, process_name: str = "repro"):
        self.process_name = process_name
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._origin_ns = time.perf_counter_ns()
        self._next_id = 0

    # -- span machinery -----------------------------------------------------

    def span(self, name: str, **attrs) -> _Span:
        """A new span; use as a context manager."""
        return _Span(self, name, attrs)

    def instant(self, name: str, **attrs) -> None:
        """Record a zero-duration marker event."""
        self._record(
            {
                "name": name,
                "ph": "i",
                "ts": self._now_us(),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "span_id": self._new_id(),
                "parent_id": None,
                "args": attrs,
                "s": "t",
            }
        )

    def _now_us(self) -> float:
        return (time.perf_counter_ns() - self._origin_ns) / 1000.0

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _new_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def _record(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    # -- aggregation --------------------------------------------------------

    @property
    def events(self) -> list[dict]:
        """Snapshot of the finished events (chronological record order)."""
        with self._lock:
            return list(self._events)

    def absorb(self, events: list[dict]) -> None:
        """Fold finished events from another tracer (e.g. deserialized
        from a worker process) into this one."""
        with self._lock:
            self._events.extend(events)

    # -- serialization ------------------------------------------------------

    def chrome_payload(self) -> dict:
        """The Chrome trace-event JSON object for this tracer's spans."""
        meta = {
            "name": "process_name",
            "ph": "M",
            "pid": os.getpid(),
            "tid": 0,
            "args": {"name": self.process_name},
        }
        return {
            "traceEvents": [meta] + self.events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": TRACE_SCHEMA},
        }

    def write_chrome(self, path: str) -> int:
        """Write the Chrome trace file; returns the number of span events."""
        events = self.events
        with open(path, "w") as handle:
            json.dump(self.chrome_payload(), handle)
        return len(events)

    def write_jsonl(self, path: str) -> int:
        """Write one JSON event per line; returns the number of events."""
        events = self.events
        with open(path, "w") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return len(events)


def read_jsonl(path: str) -> list[dict]:
    """Load a JSONL event stream written by :meth:`Tracer.write_jsonl`."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
