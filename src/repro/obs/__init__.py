"""Observability: structured tracing and metrics for analysis runs.

See ``docs/OBSERVABILITY.md`` for the API, event schema and how to open
traces in the Chrome trace viewer / Perfetto.
"""

from repro.obs.metrics import (
    NEWTON_ITER_BUCKETS,
    SMALL_COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    series_key,
)
from repro.obs.prometheus import parse_prometheus, render_prometheus
from repro.obs.telemetry import (
    METRICS_SCHEMA,
    Observability,
    RunTelemetry,
    metrics_payload,
    validate_chrome_trace,
    validate_metrics_payload,
    validate_snapshot,
    write_metrics,
)
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    Tracer,
    read_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS_SCHEMA",
    "NEWTON_ITER_BUCKETS",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "RunTelemetry",
    "SMALL_COUNT_BUCKETS",
    "TRACE_SCHEMA",
    "Tracer",
    "diff_snapshots",
    "metrics_payload",
    "parse_prometheus",
    "read_jsonl",
    "render_prometheus",
    "series_key",
    "validate_chrome_trace",
    "validate_metrics_payload",
    "validate_snapshot",
    "write_metrics",
]
