"""Prometheus text-format exposition of a metrics snapshot.

:func:`render_prometheus` turns a
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict into the
`text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_:
counters and gauges as single samples, histograms as cumulative
``_bucket`` series (``le`` labels plus ``+Inf``) with ``_sum`` and
``_count``.  Series names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``); the registry's ``name{k=v,...}`` series
keys become proper quoted label sets.

:func:`parse_prometheus` is the inverse reader used by tests and the CI
smoke job to prove the exposition actually parses: it returns the
``# TYPE`` table and every sample, and enforces the histogram
invariants (cumulative buckets are monotone; the ``+Inf`` bucket equals
``_count``).
"""

from __future__ import annotations

import math
import re

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def metric_name(raw: str) -> str:
    """Sanitize a registry series name to the Prometheus grammar."""
    name = _NAME_BAD.sub("_", raw)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _split_series(key: str) -> tuple[str, dict[str, str]]:
    """Registry ``name{k=v,...}`` key -> (name, labels)."""
    if key.endswith("}") and "{" in key:
        raw_name, _, inner = key.partition("{")
        labels = {}
        for part in inner[:-1].split(","):
            label, _, value = part.partition("=")
            labels[metric_name(label)] = value
        return metric_name(raw_name), labels
    return metric_name(key), {}


def _escape(value: str) -> str:
    return (
        str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape(labels[key])}"' for key in sorted(labels)
    )
    return "{" + inner + "}"


def _number(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(value) if value != int(value) else str(int(value))


def render_prometheus(snapshot: dict) -> str:
    """The text exposition of one metrics snapshot (trailing newline)."""
    # Group label-sets under their base metric so each metric gets
    # exactly one # TYPE line.
    grouped: dict[str, dict] = {}
    for kind in ("counters", "gauges", "histograms"):
        for key, value in snapshot.get(kind, {}).items():
            name, labels = _split_series(key)
            entry = grouped.setdefault(name, {"kind": kind, "series": []})
            if entry["kind"] != kind:
                # Same sanitized name under two kinds: keep both apart.
                name = f"{name}_{kind}"
                entry = grouped.setdefault(name, {"kind": kind, "series": []})
            entry["series"].append((labels, value))
    lines: list[str] = []
    for name in sorted(grouped):
        kind = grouped[name]["kind"]
        series = grouped[name]["series"]
        if kind == "counters":
            lines.append(f"# TYPE {name} counter")
            for labels, value in series:
                lines.append(f"{name}{_labels_text(labels)} {_number(value)}")
        elif kind == "gauges":
            lines.append(f"# TYPE {name} gauge")
            for labels, value in series:
                if value is None:
                    continue
                lines.append(f"{name}{_labels_text(labels)} {_number(value)}")
        else:
            lines.append(f"# TYPE {name} histogram")
            for labels, data in series:
                cumulative = 0
                for boundary, count in zip(data["boundaries"], data["counts"]):
                    cumulative += count
                    le = dict(labels, le=_number(boundary))
                    lines.append(
                        f"{name}_bucket{_labels_text(le)} {cumulative}"
                    )
                le = dict(labels, le="+Inf")
                lines.append(f"{name}_bucket{_labels_text(le)} {data['count']}")
                lines.append(
                    f"{name}_sum{_labels_text(labels)} {_number(data['sum'])}"
                )
                lines.append(
                    f"{name}_count{_labels_text(labels)} {data['count']}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def _parse_labels(inner: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    rest = inner.strip()
    while rest:
        match = _LABEL.match(rest)
        if match is None:
            raise ValueError(f"bad label syntax near {rest!r}")
        labels[match.group(1)] = (
            match.group(2)
            .replace("\\n", "\n")
            .replace('\\"', '"')
            .replace("\\\\", "\\")
        )
        rest = rest[match.end() :].lstrip()
        if rest.startswith(","):
            rest = rest[1:].lstrip()
        elif rest:
            raise ValueError(f"expected ',' between labels near {rest!r}")
    return labels


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    return float(raw)


def parse_prometheus(text: str) -> dict:
    """Parse a text exposition back into ``{"types", "samples"}``.

    ``types`` maps metric name to ``counter``/``gauge``/``histogram``;
    ``samples`` is a list of ``{"name", "labels", "value"}``.  Raises
    ``ValueError`` on any malformed line and when a histogram violates
    its cumulative invariants -- so a successful parse *is* the format
    validation.
    """
    types: dict[str, str] = {}
    samples: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram", "summary"):
                    raise ValueError(
                        f"line {lineno}: unknown metric type {parts[3]!r}"
                    )
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: not a valid sample: {line!r}")
        name, inner, raw_value = match.groups()
        samples.append(
            {
                "name": name,
                "labels": _parse_labels(inner) if inner else {},
                "value": _parse_value(raw_value),
            }
        )
    _check_histograms(types, samples)
    return {"types": types, "samples": samples}


def _check_histograms(types: dict[str, str], samples: list[dict]) -> None:
    """Cumulative-bucket invariants for every histogram label-set."""
    buckets: dict[tuple, list[tuple[float, float]]] = {}
    counts: dict[tuple, float] = {}
    for sample in samples:
        for base, kind in types.items():
            if kind != "histogram":
                continue
            labels = dict(sample["labels"])
            if sample["name"] == f"{base}_bucket" and "le" in labels:
                le = _parse_value(labels.pop("le"))
                series = (base, tuple(sorted(labels.items())))
                buckets.setdefault(series, []).append((le, sample["value"]))
            elif sample["name"] == f"{base}_count":
                series = (base, tuple(sorted(labels.items())))
                counts[series] = sample["value"]
    for series, entries in buckets.items():
        entries.sort(key=lambda pair: pair[0])
        cumulative = [count for _, count in entries]
        if cumulative != sorted(cumulative):
            raise ValueError(
                f"histogram {series[0]!r} buckets are not cumulative"
            )
        if not entries or not math.isinf(entries[-1][0]):
            raise ValueError(f"histogram {series[0]!r} is missing +Inf")
        if series in counts and entries[-1][1] != counts[series]:
            raise ValueError(
                f"histogram {series[0]!r}: +Inf bucket {entries[-1][1]} "
                f"!= _count {counts[series]}"
            )
