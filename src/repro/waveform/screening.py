"""Per-signature arc screening: analytical macromodel + response surface.

The screened solver tier (``StaConfig.solver_tier = SCREENED``) answers
arc queries from this bank instead of running the full transistor-table
Newton integration.  Everything rests on the monotonicity the arc cache
already assumes for its conservative round-up quantization: the stage
response markers ``t_cross``/``transition``/``t_late`` (and ``t_early``)
are monotone nondecreasing in the input slew and the passive load.  A
query bracketed by two previously solved points therefore has
guaranteed bounds:

* the **dominating** point (every coordinate >= the query's) gives a
  conservative *upper* bound for the late markers and the slew, and
* the **dominated** point (every coordinate <= the query's) gives a
  conservative *lower* bound for the early-activity marker.

Two tiers share this bracket machinery:

1. **Analytical tier** -- on the first query of a stage signature the
   bank calibrates itself from a handful of *anchor* Newton solves (the
   absolute grid floor, so a dominated point always exists, up to a
   spread above the query) and fits a linear macromodel

       t_cross ~ b0 + b1*slew + b2*C_passive

   (effective drive resistance times load; ``C_passive`` already folds
   the passive half of every coupling neighbour, which is the ΔC the
   quiet-aggressor model adds).  The sensitivities choose per-axis *coarse grid
   steps* -- the largest step whose predicted delay change stays inside
   the tolerance budget -- and a query with no adequate bracket rounds
   every coordinate UP to the coarse grid and solves that single
   dominating corner.  The corner's values are a guaranteed bound
   regardless of the fit (monotone domination); the macromodel supplies
   the error estimate: its predicted delay increase from the query to
   the corner.  One solve opens a whole coarse box -- every later query
   under the same corner reuses it through the surface -- which is how
   the screen coarsens the arc-cache grid to the tolerance scale.
2. **Surface tier** -- every full Newton solve the run performs (anchor,
   coarse-corner, escalated, batched or persisted-cache load) is folded
   into the per-signature response surface, so coverage tightens as the
   run progresses: a query resolves here with zero new solves when some
   dominating surface point is close enough -- by the *measured* bracket
   width against the best dominated point, or by the macromodel's
   predicted delay increase from the query to that point -- to stay
   within tolerance.

A query **escalates** to the full Newton solve when the macromodel
cannot vouch for a coarse corner (no fit, or the predicted error
exceeds the tolerance -- the coarse grid is degenerate at the query),
when the corner solve degraded, or when a bracket endpoint violates
monotonicity beyond the solver noise floor.  Escalated solves feed the
surface, so each escalation widens the region future queries resolve
in.

**Actively coupled situations never screen.**  The victim's output slew
is *not* monotone in the aggressor coupling capacitance: the coupling
bump delays the start of the output transition more than its end, so a
larger ``C_active`` can produce a *smaller* measured slew (observed at
the ~10 ps scale on the default library, far beyond solver noise).  A
dominating-point slew bound is therefore unsound along that axis, and
an optimistic slew would propagate downstream.  Queries with nonzero
active coupling escalate (``outside_region``), and coupled solves stay
out of the surface so they can never serve as dominating points for
uncoupled queries.

Degraded (conservative-bound-substituted) solves never enter the
surface: they are valid upper bounds for their own key but wildly
pessimistic, and as *dominated* points they would be unsound.

All bounds are padded by :data:`repro.devices.newton.MONOTONE_NOISE`:
circuit monotonicity is exact, but two independently converged solves
can violate it by the solver's timing noise floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.devices.newton import MONOTONE_NOISE

#: Escalation reasons reported by :meth:`ArcScreen.estimate`.
REASON_OUTSIDE = "outside_region"
REASON_TOLERANCE = "error_tolerance"

#: Anchor-box half-dynamic-range: corners sit at query/SPREAD and
#: query*SPREAD per axis, so one calibration covers a 16x range.
SPREAD = 4.0

#: Coarse-grid step bounds, in multiples of the fine cache grid.  The
#: macromodel picks the step per axis; the clamp keeps a bad fit from
#: degenerating into per-query solves (min) or a uselessly wide grid
#: whose brackets never certify (max).
MIN_COARSE = 1
MAX_COARSE = 64

#: Coarse step used before the macromodel is available (degraded
#: calibration anchors leave fewer than three fit points).
DEFAULT_COARSE = 8


@dataclass(frozen=True)
class ScreenOutcome:
    """Result of one screen query.

    ``tier`` is ``"analytical"`` or ``"surface"`` on a hit (``fields``
    then holds ``(t_cross, transition, t_early, t_late)``) and ``None``
    on an escalation (``reason`` then says why).  ``error`` is the
    screen's error estimate on ``t_cross`` (the bracket width, or the
    macromodel estimate when that is what passed the tolerance).
    """

    tier: str | None
    error: float
    fields: tuple | None = None
    reason: str | None = None


class _ScreenCell:
    """The response surface of one (signature token, input direction)."""

    __slots__ = (
        "points",
        "index_of",
        "anchors",
        "calibrated",
        "box",
        "floor_index",
        "model",
        "residual",
        "_buf",
        "_anchor_arr",
        "_model_stale",
    )

    def __init__(self) -> None:
        # One row per solved (uncoupled) point: (tt, c_passive,
        # t_cross, transition, t_early, t_late).  Rows live in a
        # capacity-doubling buffer so the per-query view is O(1) and an
        # append is amortized O(1) -- the surface grows by thousands of
        # points per run and a rebuild-on-add would be quadratic.
        self.points: list[tuple] = []
        self.index_of: dict[tuple, int] = {}
        self.anchors: list[bool] = []
        self.calibrated = False
        self.box: tuple | None = None  # (tt_lo, tt_hi, cp_lo, cp_hi)
        # Index of the grid-floor anchor: dominated by every on-grid
        # query, so it serves as the O(1) lower-bound partner on the
        # fast query path.
        self.floor_index: int | None = None
        self.model: np.ndarray | None = None
        self.residual = 0.0
        self._buf = np.empty((16, 6), dtype=float)
        self._anchor_arr: np.ndarray | None = None
        self._model_stale = True

    def add(self, coords: tuple, values: tuple, anchor: bool) -> None:
        index = self.index_of.get(coords)
        if index is not None:
            if anchor and not self.anchors[index]:
                self.anchors[index] = True
                self._anchor_arr = None
                self._model_stale = True
            return
        n = len(self.points)
        self.index_of[coords] = n
        self.points.append(coords + values)
        self.anchors.append(anchor)
        if n >= self._buf.shape[0]:
            grown = np.empty((2 * self._buf.shape[0], 6), dtype=float)
            grown[:n] = self._buf[:n]
            self._buf = grown
        self._buf[n] = coords + values
        self._anchor_arr = None  # the mask is one entry per point
        if anchor:
            self._model_stale = True

    def array(self) -> np.ndarray:
        return self._buf[: len(self.points)]

    def anchor_mask(self) -> np.ndarray:
        if self._anchor_arr is None:
            self._anchor_arr = np.asarray(self.anchors, dtype=bool)
        return self._anchor_arr

    def fit(self) -> None:
        """(Re)fit the linear macromodel over the anchor points."""
        if not self._model_stale:
            return
        self._model_stale = False
        arr = self.array()[self.anchor_mask()]
        if len(arr) < 3:
            self.model = None
            return
        tt, cp = arr[:, 0], arr[:, 1]
        design = np.column_stack([np.ones_like(tt), tt, cp])
        target = arr[:, 3]
        coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
        self.model = coeffs
        self.residual = float(np.max(np.abs(design @ coeffs - target)))

    def predict(self, tt: float, cp: float) -> float | None:
        self.fit()
        if self.model is None:
            return None
        b0, b1, b2 = self.model
        return float(b0 + b1 * tt + b2 * cp)

    def coarse_steps(
        self, transition_grid: float, cap_grid: float, tolerance: float
    ) -> tuple[int, int]:
        """Per-axis coarse-grid steps (in fine-grid units).

        The largest step whose predicted delay change fits half the
        tolerance budget per axis; the per-query acceptance test uses
        the macromodel's estimate at the query's actual distance to the
        corner, so only queries near a box's far corner on several axes
        at once exceed the tolerance and escalate.
        """
        self.fit()
        if self.model is None:
            return (DEFAULT_COARSE, DEFAULT_COARSE)
        _, b1, b2 = self.model
        budget = tolerance / 2.0
        return (
            _clamp_step(budget / ((abs(b1) + 1e-30) * transition_grid)),
            _clamp_step(budget / ((abs(b2) + 1e-30) * cap_grid)),
        )


def _clamp_step(units: float) -> int:
    return max(MIN_COARSE, min(MAX_COARSE, int(units)))


class ArcScreen:
    """The screening bank over all stage signatures of one calculator.

    ``solve`` is the calculator's exact-solve callback (key -> cached
    ArcResult); the quantizers and grids come from the same calculator
    so anchor corners land on canonical cache keys.
    """

    def __init__(
        self,
        solve: Callable[[tuple], object],
        q_time: Callable[..., float],
        q_cap: Callable[..., float],
        transition_grid: float,
        cap_grid: float,
        tolerance: float,
        pad: float = MONOTONE_NOISE,
    ):
        self._solve = solve
        self._q_time = q_time
        self._q_cap = q_cap
        self._transition_grid = transition_grid
        self._cap_grid = cap_grid
        self.tolerance = tolerance
        self.pad = pad
        self._cells: dict[tuple, _ScreenCell] = {}
        self.anchor_solves = 0
        self.coarse_solves = 0

    # -- surface maintenance -------------------------------------------------

    def observe(self, key: tuple, arc, anchor: bool = False) -> None:
        """Fold one successfully Newton-solved arc into the surface.

        Degraded results must not be offered here (the calculator's
        solve paths only call this after a successful solve).  Aiding
        (min-delay) keys are ignored -- the screen serves upper-bound
        queries only -- and so are actively coupled keys, whose slew is
        non-monotone in the coupling (see module docstring): as
        dominating points they would be unsound.
        """
        token, direction, tt, c_passive, c_active, aiding = key
        if aiding or c_active > 0.0:
            return
        cell = self._cells.setdefault((token, direction), _ScreenCell())
        cell.add(
            (tt, c_passive),
            (arc.t_cross, arc.transition, arc.t_early, arc.t_late),
            anchor,
        )

    def _calibrate(self, cell: _ScreenCell, token: str, direction: str, q: tuple) -> None:
        """Anchor the cell's box (and macromodel) around the first query.

        The low corner sits at the absolute grid floor -- not below the
        first query -- so every later query, however small, has at least
        one dominated surface point (the floor anchor) supplying a valid
        early-activity lower bound.
        """
        tt, cp = q
        tt_lo = self._transition_grid
        tt_hi = self._q_time(tt * SPREAD)
        cp_lo = self._cap_grid
        cp_hi = self._q_cap(max(cp * SPREAD, self._cap_grid))
        cell.box = (tt_lo, tt_hi, cp_lo, cp_hi)
        for tt_val in (tt_lo, tt_hi):
            for cp_val in (cp_lo, cp_hi):
                corner = (token, direction, tt_val, cp_val, 0.0, False)
                self.anchor_solves += 1
                self._solve(corner)
                # A successful solve reached the surface through the
                # calculator's observe hook; upgrade it to an anchor.
                # A degraded solve never arrived, and stays out.
                index = cell.index_of.get((tt_val, cp_val))
                if index is not None and not cell.anchors[index]:
                    cell.anchors[index] = True
                    cell._anchor_arr = None
                    cell._model_stale = True
        cell.floor_index = cell.index_of.get((tt_lo, cp_lo))
        cell.calibrated = True

    # -- queries -------------------------------------------------------------

    def _bracket(
        self, cell: _ScreenCell, q: tuple
    ) -> tuple[int | None, int | None, float] | None:
        """Best dominance bracket for ``q`` over the cell's points.

        Returns ``(i_up, i_dn, score)``: the best dominating point --
        smallest *distance score* among points componentwise >= the
        query, where a point's score is the smaller of its measured
        width over the best dominated point and the macromodel's
        predicted delay increase from the query to it -- and the
        tightest dominated point.  Either index is ``None`` when that
        side has no points; returns ``None`` when the cell is empty.
        """
        if not cell.points:
            return None
        arr = cell.array()
        coords = arr[:, :2]
        point = np.asarray(q)
        up = np.all(coords >= point, axis=1)
        dn = np.all(coords <= point, axis=1)
        i_dn = None
        if dn.any():
            dn_idx = np.flatnonzero(dn)
            i_dn = int(dn_idx[np.argmax(arr[dn_idx, 2])])
        if not up.any():
            return None, i_dn, float(np.inf)
        up_idx = np.flatnonzero(up)
        score = (
            arr[up_idx, 2] - arr[i_dn, 2]
            if i_dn is not None
            else np.full(up_idx.size, np.inf)
        )
        cell.fit()
        if cell.model is not None:
            _, b1, b2 = cell.model
            d_tt = arr[up_idx, 0] - point[0]
            d_cp = arr[up_idx, 1] - point[1]
            est = abs(b1) * d_tt + abs(b2) * d_cp
            score = np.minimum(score, est)
        j = int(np.argmin(score))
        return int(up_idx[j]), i_dn, float(score[j])

    def _outcome(
        self, cell: _ScreenCell, tier: str, i_up: int, i_dn: int, error: float
    ) -> ScreenOutcome:
        arr = cell.array()
        pad = self.pad
        fields = (
            float(arr[i_up, 2]) + pad,  # t_cross  (upper bound)
            float(arr[i_up, 3]) + pad,  # transition (upper bound)
            float(arr[i_dn, 4]) - pad,  # t_early  (lower bound)
            float(arr[i_up, 5]) + pad,  # t_late   (upper bound)
        )
        return ScreenOutcome(tier=tier, error=max(error, 0.0), fields=fields)

    def _coarse_up(
        self, cell: _ScreenCell, q: tuple
    ) -> tuple[tuple, float] | None:
        """The coarse-grid corner dominating ``q`` and its error estimate.

        The macromodel's sensitivities set the coarse step per axis; the
        corner lands on canonical fine-grid coordinates (integer
        multiples of the cache grids, the exact arithmetic of the
        calculator's quantizers) so its solve is shared through the arc
        cache.  The error estimate is the macromodel's predicted delay
        increase from the query to the corner.  Returns ``None`` when no
        macromodel is available (degraded calibration).
        """
        cell.fit()
        if cell.model is None:
            return None
        k_tt, k_cp = cell.coarse_steps(
            self._transition_grid, self._cap_grid, self.tolerance
        )
        tt, cp = q
        n_tt = max(1, round(tt / self._transition_grid))
        n_cp = max(1, round(cp / self._cap_grid))
        up = (
            math.ceil(n_tt / k_tt) * k_tt * self._transition_grid,
            math.ceil(n_cp / k_cp) * k_cp * self._cap_grid,
        )
        _, b1, b2 = cell.model
        error = abs(b1) * (up[0] - tt) + abs(b2) * (up[1] - cp)
        return up, float(error)

    def estimate(self, key: tuple) -> ScreenOutcome:
        """Screen one canonical arc situation.

        Returns a conservative bound (see module docstring) or an
        escalation outcome naming the reason.
        """
        token, direction, tt, c_passive, c_active, aiding = key
        if c_active > 0.0:
            # Actively coupled: no sound slew bound exists in the bank
            # (slew is non-monotone in the coupling -- module docstring).
            return ScreenOutcome(tier=None, error=np.inf, reason=REASON_OUTSIDE)
        q = (tt, c_passive)
        cell = self._cells.setdefault((token, direction), _ScreenCell())
        if not cell.calibrated:
            self._calibrate(cell, token, direction, q)

        # Fast path: the macromodel-sized coarse corner is pure
        # arithmetic plus a dict probe.  When that corner is already on
        # the surface and the model vouches for the gap, answer without
        # scanning the point cloud -- the grid-floor anchor (dominated
        # by every on-grid query) supplies the lower bound.
        coarse = self._coarse_up(cell, q)
        if (
            coarse is not None
            and coarse[1] <= self.tolerance
            and cell.floor_index is not None
            and tt >= self._transition_grid
            and c_passive >= self._cap_grid
        ):
            i_up = cell.index_of.get(coarse[0])
            if i_up is not None:
                i_dn = cell.floor_index
                arr = cell.array()
                if float(arr[i_up, 2] - arr[i_dn, 2]) < -2.0 * self.pad:
                    return ScreenOutcome(
                        tier=None, error=-np.inf, reason=REASON_TOLERANCE
                    )
                return self._outcome(cell, "surface", i_up, i_dn, coarse[1])

        bracket = self._bracket(cell, q)
        if bracket is not None:
            i_up, i_dn, score = bracket
            if (
                i_up is not None
                and i_dn is not None
                and float(cell.array()[i_up, 2] - cell.array()[i_dn, 2])
                < -2.0 * self.pad
            ):
                # Monotonicity violated beyond the numerical noise floor
                # (solver pathology): the surface is not trustworthy for
                # this cell/region.
                return ScreenOutcome(
                    tier=None, error=-np.inf, reason=REASON_TOLERANCE
                )
            if i_up is not None and i_dn is not None and score <= self.tolerance:
                return self._outcome(cell, "surface", i_up, i_dn, score)

        # No existing surface point close enough: solve the dominating
        # coarse corner, provided the macromodel vouches for it.
        if coarse is None or coarse[1] > self.tolerance:
            return ScreenOutcome(
                tier=None,
                error=np.inf if coarse is None else coarse[1],
                reason=REASON_TOLERANCE,
            )
        up, error = coarse
        if up not in cell.index_of:
            self.coarse_solves += 1
            self._solve((token, direction) + up + (0.0, False))
        i_up = cell.index_of.get(up)
        i_dn = None if bracket is None else bracket[1]
        if i_up is None or i_dn is None:
            # The corner solve degraded (never reached the surface) or
            # no dominated point exists: outside the trustworthy region.
            return ScreenOutcome(tier=None, error=np.inf, reason=REASON_OUTSIDE)
        return self._outcome(cell, "analytical", i_up, i_dn, error)

    # -- statistics ----------------------------------------------------------

    def stats(self) -> dict:
        points = sum(len(cell.points) for cell in self._cells.values())
        anchors = sum(sum(cell.anchors) for cell in self._cells.values())
        return {
            "screen_cells": len(self._cells),
            "screen_points": points,
            "screen_anchors": anchors,
            "anchor_solves": self.anchor_solves,
            "coarse_solves": self.coarse_solves,
        }
