"""The paper's coupling delay model (Section 2).

Three-step model for a victim transition with active aggressors:

1. While the victim output moves away from its initial rail the coupling
   capacitance is **passive** (it just adds to the load).
2. When the victim voltage reaches the **trigger** value
   (``V_th + dV`` for a rising victim), the aggressors are assumed to drop
   instantaneously by the full ``V_DD`` in the opposite direction.  The
   victim node, a capacitive voltage divider, jumps back by

       dV = V_DD * C_c_active / (C_c_total + C_ground)

   landing exactly on ``V_th``.
3. The coupling capacitance is passive again and the victim completes its
   transition.  For delay calculation the pre-drop part of the waveform is
   discarded -- "the waveforms start with the value of V_th" -- which keeps
   every propagated waveform monotone; the crosstalk shows up purely as
   extra delay.

The model's key property for *static* analysis: the aggressor waveform is
never needed, only whether the aggressor **can** be active (the
instantaneous full-swing drop upper-bounds every real aggressor slope).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.devices.params import ProcessParams, default_process
from repro.waveform.pwl import FALLING, RISING


class CouplingTreatment(Enum):
    """How one coupling capacitance enters a delay calculation.

    The paper's five analysis modes reduce, per capacitance, to one of:

    * ``GROUNDED`` -- passive, original value (best case / proven-quiet
      neighbour in the one-step and iterative algorithms).
    * ``GROUNDED_DOUBLED`` -- passive, doubled value (the classical
      "static doubled" approach).
    * ``ACTIVE`` -- the three-step model above (worst case / possibly
      switching neighbour).
    """

    GROUNDED = "grounded"
    GROUNDED_DOUBLED = "grounded_doubled"
    ACTIVE = "active"


@dataclass(frozen=True)
class CouplingLoad:
    """Aggregate coupling situation at a victim output node.

    ``c_ground`` is everything passive and grounded at the node (wire
    ground capacitance, pin loads, junction parasitics).  ``c_couple_active``
    and ``c_couple_passive`` split the coupling capacitances by treatment;
    doubled passive capacitances must be pre-doubled by the caller.
    """

    c_ground: float
    c_couple_active: float = 0.0
    c_couple_passive: float = 0.0

    def __post_init__(self) -> None:
        if min(self.c_ground, self.c_couple_active, self.c_couple_passive) < 0:
            raise ValueError("capacitances must be non-negative")

    @property
    def c_total(self) -> float:
        """Total capacitance at the node (the divider denominator and the
        integration load)."""
        return self.c_ground + self.c_couple_active + self.c_couple_passive

    def divider_drop(self, process: ProcessParams | None = None) -> float:
        """The coupling glitch amplitude ``dV``."""
        process = process if process is not None else default_process()
        if self.c_total <= 0:
            return 0.0
        # The divider ratio is <= 1 mathematically, but c_act/c_total can
        # round one ULP above it when c_act dominates; clamp to the rail.
        return min(process.vdd * self.c_couple_active / self.c_total, process.vdd)

    def trigger_voltage(self, direction: str, process: ProcessParams | None = None) -> float:
        """Victim voltage at which the worst-case aggressor drop fires.

        Rising victim: ``V_th + dV`` (it falls back to ``V_th``).
        Falling victim: ``V_DD - V_th - dV`` (it bounces up to
        ``V_DD - V_th``).
        """
        process = process if process is not None else default_process()
        drop = self.divider_drop(process)
        if direction == RISING:
            return process.v_th_model + drop
        if direction == FALLING:
            return process.vdd - process.v_th_model - drop
        raise ValueError(f"unknown direction {direction!r}")

    def restart_voltage(self, direction: str, process: ProcessParams | None = None) -> float:
        """Victim voltage just after the drop (where the reported waveform
        starts)."""
        process = process if process is not None else default_process()
        if direction == RISING:
            return process.v_th_model
        if direction == FALLING:
            return process.vdd - process.v_th_model
        raise ValueError(f"unknown direction {direction!r}")

    @property
    def has_active_coupling(self) -> bool:
        return self.c_couple_active > 0.0


def aggregate_load(
    c_ground: float,
    couplings: list[tuple[float, CouplingTreatment]],
) -> CouplingLoad:
    """Build the node's :class:`CouplingLoad` from per-neighbour decisions."""
    active = 0.0
    passive = 0.0
    for cap, treatment in couplings:
        if cap < 0:
            raise ValueError("coupling capacitance must be non-negative")
        if treatment is CouplingTreatment.ACTIVE:
            active += cap
        elif treatment is CouplingTreatment.GROUNDED_DOUBLED:
            passive += 2.0 * cap
        else:
            passive += cap
    return CouplingLoad(
        c_ground=c_ground,
        c_couple_active=active,
        c_couple_passive=passive,
    )


def model_threshold(direction: str, process: ProcessParams | None = None) -> float:
    """The activity threshold of the model for a given direction:
    ``V_th`` (rising) or ``V_DD - V_th`` (falling)."""
    process = process if process is not None else default_process()
    if direction == RISING:
        return process.v_th_model
    if direction == FALLING:
        return process.vdd - process.v_th_model
    raise ValueError(f"unknown direction {direction!r}")
