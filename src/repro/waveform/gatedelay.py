"""Per-arc gate delay calculation with caching.

Wraps the stage solvers into the operation the STA performs on every
timing arc: given the switching input's ramp event, the cell/pin, and the
victim output's coupling situation, produce the output ramp event.

Results are cached on a quantized key (cell, pin, input direction, input
transition, passive load, active coupling); circuits instantiate few cell
types at many places, so the Newton integrations are only paid for
distinct electrical situations.  Quantization rounds the load and slew
*up* (slower, later -- conservative for the delay bound); the small
non-conservative error this leaves on the early-activity marker is
covered by the STA's comparison guard band (``StaConfig.guard``).

Two evaluation backends fill the cache:

* the scalar :class:`~repro.waveform.stage.StageSolver` (reference), one
  arc at a time, and
* the vectorized :class:`~repro.waveform.batchstage.BatchStageSolver`,
  used by :meth:`GateDelayCalculator.prime_arcs` to integrate all distinct
  situations of a batch simultaneously -- optionally fanned out over a
  ``ProcessPoolExecutor`` for multi-core scaling.

The cache can persist across runs (:meth:`save_cache_file` /
:meth:`load_cache_file`): a JSON file keyed by a fingerprint of the
process, the cell library's collapsed stage devices and the solver
settings, so the iterative mode's repeat passes and repeated benchmark
invocations skip Newton entirely.

Fault tolerance: because every result of the analysis is an *upper
bound* on the true last event (paper, Section 3), the correct response
to a numerical failure is a coarser-but-still-safe bound, not a crash.
When both Newton and its bisection fallback fail on an arc, the
calculator substitutes a conservative ramp bound (see
:meth:`GateDelayCalculator._conservative_arc`), counts it under
``solver.degraded_arcs`` and annotates it in
:attr:`GateDelayCalculator.degraded`; ``strict=True`` restores the
fail-fast behaviour.  The multi-core fan-out likewise survives worker
death and hangs (bounded retries with backoff, then an in-process
replay of the chunk), and persistent cache files are checksummed --
corrupt ones are quarantined to ``<path>.bad`` and rebuilt.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import math
import os
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.circuit.library import CellType
from repro.devices.params import ProcessParams, default_process
from repro.devices.tables import StageTable
from repro.errors import CacheError, InputError, SolverError
from repro.obs.metrics import NEWTON_ITER_BUCKETS, MetricsRegistry
from repro.waveform.batchstage import BatchArcSpec, BatchStageSolver
from repro.waveform.coupling import CouplingLoad
from repro.waveform.pwl import RISING, opposite
from repro.waveform.ramp import RampEvent
from repro.waveform.stage import (
    MAX_EXTENSIONS,
    SETTLE_FRACTION,
    STEPS_PER_PHASE,
    InputRamp,
    StageResult,
    StageSolver,
)

logger = logging.getLogger("repro.waveform.gatedelay")

# Format 2 added the content checksum over the arc table.
CACHE_FORMAT = 2

# Below this many distinct situations a batched solve does not amortize
# its setup; fall through to the scalar reference path.
MIN_BATCH = 4


@dataclass(frozen=True)
class ArcResult:
    """Stage response in the input-ramp-start time frame (t_start = 0)."""

    direction: str
    t_cross: float
    transition: float
    t_early: float
    t_late: float
    coupled: bool

    def to_event(self, t_start: float) -> RampEvent:
        """Materialise as an absolute-time ramp event."""
        return RampEvent(
            direction=self.direction,
            t_cross=t_start + self.t_cross,
            transition=self.transition,
            t_early=t_start + self.t_early,
            t_late=t_start + self.t_late,
        )


@dataclass(frozen=True)
class ArcRequest:
    """One arc situation for batched priming (pre-quantization values)."""

    ctype: CellType
    pin: str
    input_direction: str
    input_transition: float
    load: CouplingLoad
    aiding: bool = False
    quantize_down: bool = False


def _stage_params(ctype: CellType, pin: str, process: ProcessParams):
    """Collapsed (pull-up, pull-down) device parameter tuples for an arc,
    or ``None`` per side -- the electrical identity of a stage table."""
    pull_up, pull_down = ctype.topology.equivalent_stage(pin, process)
    pu = dataclasses.astuple(pull_up.params) if pull_up is not None else None
    pd = dataclasses.astuple(pull_down.params) if pull_down is not None else None
    return pu, pd


def library_fingerprint(
    process: ProcessParams,
    cell_types: Iterable[CellType],
    transition_grid: float,
    cap_grid: float,
    table_points: int,
) -> str:
    """Hash of everything that determines an arc result.

    Two runs with equal fingerprints may share cached arcs: the process
    constants, the collapsed stage devices of every (cell, pin), the
    quantization grids, the table resolution and the solver settings.
    """
    cells = {}
    for ctype in sorted({c.name: c for c in cell_types}.values(), key=lambda c: c.name):
        pins = {}
        for pin in dict.fromkeys(list(ctype.inputs) + ["A"]):
            try:
                pu, pd = _stage_params(ctype, pin, process)
            except (KeyError, ValueError):
                continue
            if pu is None and pd is None:
                continue
            pins[pin] = [pu, pd]
        cells[ctype.name] = pins
    payload = {
        "process": dataclasses.asdict(process),
        "transition_grid": transition_grid,
        "cap_grid": cap_grid,
        "table_points": table_points,
        "solver": {
            "steps_per_phase": STEPS_PER_PHASE,
            "settle_fraction": SETTLE_FRACTION,
            "max_extensions": MAX_EXTENSIONS,
        },
        "cells": cells,
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


# -- worker-process machinery for the opt-in multi-core fan-out ------------

_WORKER_TABLES: dict = {}


def _apply_worker_fault(fault: dict) -> None:
    """Execute one injected worker fault (see :mod:`repro.testing.faults`).

    ``kill`` terminates the worker process without cleanup -- exactly
    what an OOM kill or segfault looks like to the parent's pool.
    ``hang`` blocks the worker past any per-chunk timeout.
    """
    action = fault.get("action")
    if action == "kill":
        os._exit(17)
    elif action == "hang":
        time.sleep(float(fault.get("seconds", 30.0)))


def _pool_solve_chunk(payload):
    """Solve one chunk of distinct arc situations in a worker process.

    ``payload``: (process, table_points, table_specs, items, fault)
    where ``table_specs`` maps local table index -> (pu_params,
    pd_params), each item is ``(table_idx, direction, tt, c_passive,
    c_active, aiding)`` and ``fault`` is ``None`` outside the
    fault-injection harness.  Tables are cached per worker process
    across chunks.  Returns one result tuple per item plus the worker's
    metrics snapshot (Newton iteration histogram, bisection fallbacks),
    which the parent merges into its registry.
    """
    from repro.devices.mosfet import Mosfet, MosfetParams

    process, table_points, table_specs, items, fault = payload
    if fault is not None:
        _apply_worker_fault(fault)
    tables = []
    for pu, pd in table_specs:
        cache_key = (pu, pd, table_points)
        table = _WORKER_TABLES.get(cache_key)
        if table is None:
            pull_up = Mosfet(MosfetParams(*pu), process) if pu is not None else None
            pull_down = Mosfet(MosfetParams(*pd), process) if pd is not None else None
            table = StageTable(pull_up, pull_down, process=process, points=table_points)
            _WORKER_TABLES[cache_key] = table
        tables.append(table)
    registry = MetricsRegistry()
    solver = BatchStageSolver(tables, process, metrics=registry)
    specs = [
        BatchArcSpec(
            table_index=ti,
            input_direction=direction,
            transition=tt,
            load=CouplingLoad(c_ground=cp, c_couple_active=ca),
            aiding=aiding,
        )
        for ti, direction, tt, cp, ca, aiding in items
    ]
    rows = [
        (r.direction, r.t_cross, r.transition, r.t_early, r.t_late, r.coupled)
        for r in solver.solve_many(specs)
    ]
    return rows, registry.snapshot()


class GateDelayCalculator:
    """Caching transistor-level delay engine for library-cell arcs."""

    def __init__(
        self,
        process: ProcessParams | None = None,
        transition_grid: float = 2e-12,
        cap_grid: float = 0.2e-15,
        table_points: int = 121,
        engine: str = "scalar",
        workers: int = 0,
        metrics: MetricsRegistry | None = None,
        strict: bool = False,
        worker_retries: int = 2,
        worker_timeout: float | None = None,
        retry_backoff: float = 0.05,
    ):
        self.process = process if process is not None else default_process()
        self.transition_grid = transition_grid
        self.cap_grid = cap_grid
        self.table_points = table_points
        self.engine = engine
        self.workers = workers
        # Fault-tolerance policy: ``strict`` restores fail-fast solves and
        # turns corrupt-cache quarantine into a CacheError; the worker
        # knobs bound how long a sick pool may stall the run.
        self.strict = strict
        self.worker_retries = max(0, worker_retries)
        self.worker_timeout = worker_timeout
        self.retry_backoff = retry_backoff
        # Per-arc degradation annotations (dicts; surfaced on StaResult).
        self.degraded: list[dict] = []
        # Fault-injection hook: a mutable spec dict consumed (parent-side,
        # hence deterministically) by :meth:`_take_pool_fault`.
        self.pool_fault: dict | None = None
        self._stage_tables: dict[tuple[str, str], StageTable] = {}
        self._solvers: dict[tuple[str, str], StageSolver] = {}
        self._arc_cache: dict[tuple, ArcResult] = {}
        self._batch_solver: BatchStageSolver | None = None
        self._table_order: list[tuple[str, str]] = []
        self._executor = None
        # All statistics live in a metrics registry (one per analysis run,
        # shared with the propagator when the analyzer constructs us); the
        # instruments are resolved once so the hot path pays one method
        # call per event.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_evaluations = self.metrics.counter("arc_cache.evaluations")
        self._c_cache_hits = self.metrics.counter("arc_cache.hits")
        self._c_batched = self.metrics.counter("arc_cache.batched_solves")
        self._c_pool = self.metrics.counter("arc_cache.pool_solves")
        self._c_persisted = self.metrics.counter("arc_cache.persisted_loads")
        self._c_stale = self.metrics.counter("arc_cache.stale_rejects")
        self._h_newton = self.metrics.histogram(
            "newton.iterations_per_arc", boundaries=NEWTON_ITER_BUCKETS
        )
        self._c_bisect = self.metrics.counter("newton.bisection_fallbacks")
        self._c_degraded = self.metrics.counter("solver.degraded_arcs")
        self._c_batch_fallbacks = self.metrics.counter("engine.batch_fallbacks")
        self._c_worker_failures = self.metrics.counter("engine.worker_failures")
        self._c_worker_retries = self.metrics.counter("engine.worker_retries")
        self._c_quarantined_chunks = self.metrics.counter("engine.quarantined_chunks")
        self._c_serial_fallbacks = self.metrics.counter("engine.serial_fallbacks")
        self._c_cache_quarantined = self.metrics.counter("arc_cache.quarantined")

    # -- statistics properties (registry-backed, kept for compatibility) ----

    @property
    def evaluations(self) -> int:
        return self._c_evaluations.value

    @property
    def cache_hits(self) -> int:
        return self._c_cache_hits.value

    @property
    def batched_solves(self) -> int:
        return self._c_batched.value

    @property
    def pool_solves(self) -> int:
        return self._c_pool.value

    @property
    def persisted_loads(self) -> int:
        return self._c_persisted.value

    # -- stage machinery ----------------------------------------------------

    def solver_for(self, ctype: CellType, pin: str) -> StageSolver:
        key = (ctype.name, pin)
        solver = self._solvers.get(key)
        if solver is None:
            pull_up, pull_down = ctype.topology.equivalent_stage(pin, self.process)
            if pull_up is None and pull_down is None:
                raise InputError(
                    f"{ctype.name} has no transistor gated by pin {pin!r}"
                )
            table = StageTable(
                pull_up, pull_down, process=self.process, points=self.table_points
            )
            self._stage_tables[key] = table
            self._table_order.append(key)
            solver = StageSolver(table, self.process)
            self._solvers[key] = solver
        return solver

    def _batch_solver_current(self) -> BatchStageSolver:
        """The batch solver over all known stage tables, rebuilt when new
        tables appeared since the last build."""
        if self._batch_solver is None or len(self._batch_solver.tables) != len(
            self._table_order
        ):
            self._batch_solver = BatchStageSolver(
                [self._stage_tables[key] for key in self._table_order],
                self.process,
                metrics=self.metrics,
            )
        return self._batch_solver

    # -- quantization --------------------------------------------------------

    def _q_time(self, value: float, down: bool = False) -> float:
        rounder = math.floor if down else math.ceil
        return rounder(max(value, 1e-13) / self.transition_grid) * self.transition_grid

    def _q_cap(self, value: float, down: bool = False) -> float:
        rounder = math.floor if down else math.ceil
        return rounder(max(value, 0.0) / self.cap_grid) * self.cap_grid

    def _quantized_key(self, request: ArcRequest) -> tuple:
        """The cache key of a request: quantized slew and loads.

        This is the single place quantization happens, shared by the
        scalar per-arc path and the batched priming path.
        """
        down = request.quantize_down
        tt = self._q_time(request.input_transition, down=down)
        c_passive = self._q_cap(
            request.load.c_ground + request.load.c_couple_passive, down=down
        )
        # Active coupling is a *helping* jump in min-delay contexts: round
        # it up there (more help -> faster -> safe lower bound).
        c_active = self._q_cap(
            request.load.c_couple_active, down=down and not request.aiding
        )
        if down and c_passive + c_active <= 0.0:
            c_passive = self.cap_grid  # keep the stage integrable
        return (
            request.ctype.name,
            request.pin,
            request.input_direction,
            tt,
            c_passive,
            c_active,
            request.aiding,
        )

    # -- the arc operation ----------------------------------------------------

    def compute_arc(
        self,
        ctype: CellType,
        pin: str,
        input_event: RampEvent,
        load: CouplingLoad,
        aiding: bool = False,
    ) -> RampEvent:
        """Output ramp event at the cell's output pin (wire delay excluded).

        The cell is negative unate (static single-stage CMOS): the output
        direction is the opposite of ``input_event.direction``.
        """
        result = self.compute_arc_relative(
            ctype, pin, input_event.direction, input_event.transition, load, aiding
        )
        t_start = input_event.t_cross - 0.5 * input_event.transition
        return result.to_event(t_start)

    def compute_arc_relative(
        self,
        ctype: CellType,
        pin: str,
        input_direction: str,
        input_transition: float,
        load: CouplingLoad,
        aiding: bool = False,
        quantize_down: bool = False,
    ) -> ArcResult:
        """The cached, time-origin-free arc calculation.

        ``aiding=True`` applies the mirrored same-direction coupling model
        (helping jump) used by min-delay analysis.  ``quantize_down``
        rounds the cache key's load and slew *down* instead of up -- the
        conservative direction for a min-delay (lower) bound, where the
        modelled arc must never be slower than reality.
        """
        request = ArcRequest(
            ctype, pin, input_direction, input_transition, load, aiding, quantize_down
        )
        key = self._quantized_key(request)
        cached = self._arc_cache.get(key)
        if cached is not None:
            self._c_cache_hits.inc()
            return cached
        arc = self._solve_key(ctype, key)
        self._arc_cache[key] = arc
        return arc

    def _solve_key(self, ctype: CellType, key: tuple) -> ArcResult:
        """Scalar (reference) solve of one quantized arc situation."""
        _, pin, input_direction, tt, c_passive, c_active, aiding = key
        self._c_evaluations.inc()
        solver = self.solver_for(ctype, pin)
        try:
            stage_result = solver.solve(
                InputRamp(direction=input_direction, t_start=0.0, transition=tt),
                CouplingLoad(
                    c_ground=c_passive,
                    c_couple_active=c_active,
                    c_couple_passive=0.0,
                ),
                aiding=aiding,
            )
        except SolverError as exc:
            return self._degrade_key(ctype, key, exc)
        self._h_newton.observe(stage_result.newton_iterations)
        if stage_result.newton_bisections:
            self._c_bisect.inc(stage_result.newton_bisections)
        return self._to_arc(stage_result)

    def _degrade_key(self, ctype: CellType, key: tuple, exc: SolverError) -> ArcResult:
        """Substitute a conservative bound for an arc whose solve failed.

        Strict mode re-raises instead (the pre-degradation fail-fast
        behaviour); otherwise the substitution is counted under
        ``solver.degraded_arcs`` and annotated in :attr:`degraded`.
        """
        if self.strict:
            raise exc
        arc = self._conservative_arc(ctype, key)
        self._c_degraded.inc()
        name, pin, direction, tt, c_passive, c_active, aiding = key
        self.degraded.append(
            {
                "cell": name,
                "pin": pin,
                "input_direction": direction,
                "input_transition": tt,
                "c_passive": c_passive,
                "c_active": c_active,
                "aiding": bool(aiding),
                "bound": arc.t_late,
                "reason": f"{type(exc).__name__}: {exc}",
            }
        )
        logger.warning(
            "arc %s/%s (%s) failed to solve (%s); substituting conservative "
            "ramp bound t_late=%.3e s",
            name,
            pin,
            direction,
            exc,
            arc.t_late,
        )
        return arc

    # Voltage margin beyond the rails the bound's traversal allows for
    # (coupling overshoot); matches the stage tables' grid margin.
    _BOUND_MARGIN = 0.3
    # Drive floor when even the table minimum is unusable (amperes).  At
    # femtofarad-scale loads this puts the bound around tens of
    # nanoseconds -- orders of magnitude above any real stage delay.
    _BOUND_CURRENT_FLOOR = 1e-7

    def _conservative_arc(self, ctype: CellType, key: tuple) -> ArcResult:
        """A provably conservative ramp response for one arc situation.

        Models the stage as charging its total load through the *weakest*
        drive current found anywhere along the output traversal once the
        input has settled::

            T = C_total * span / I_min

        The true output (a) starts moving no later than the assumed
        start (input fully settled at ``tt``) and (b) moves at every
        voltage at least as fast as ``I_min / C_total``, so ``tt + T``
        can only overestimate the late crossing.  Opposing active
        coupling may additionally yank the victim back by at most the
        full span once (divider drop + recovery), covered by a second
        ``T``.  The early marker is pinned to the input ramp start (time
        0): the output cannot move before its cause.  The transition
        upper bound follows from the thresholds: both slew markers lie
        inside ``[0, t_late]`` and the slew is the marker gap over 0.8.
        """
        _, pin, input_direction, tt, c_passive, c_active, aiding = key
        vdd = self.process.vdd
        out_direction = opposite(input_direction)
        margin = self._BOUND_MARGIN
        span = vdd + margin - self.process.v_th_model
        c_total = max(c_passive + c_active, self.cap_grid)

        i_min = 0.0
        table = self._stage_tables.get((ctype.name, pin))
        if table is not None:
            vin_final = vdd if input_direction == RISING else 0.0
            if out_direction == RISING:
                v_path = np.linspace(-margin, vdd - self.process.v_th_model, 97)
            else:
                v_path = np.linspace(self.process.v_th_model, vdd + margin, 97)
            currents = np.abs(
                table.current_array(np.full_like(v_path, vin_final), v_path)
            )
            if np.isfinite(currents).all():
                i_min = float(currents.min())
        if not i_min > 0.0:
            i_min = self._BOUND_CURRENT_FLOOR

        t_traverse = c_total * span / i_min
        recovery = t_traverse if c_active > 0.0 else 0.0
        t_late = tt + t_traverse + recovery
        return ArcResult(
            direction=out_direction,
            t_cross=t_late,
            transition=1.25 * t_late,
            t_early=0.0,
            t_late=t_late,
            coupled=c_active > 0.0,
        )

    @staticmethod
    def _to_arc(stage_result: StageResult) -> ArcResult:
        return ArcResult(
            direction=stage_result.direction,
            t_cross=stage_result.t_cross,
            transition=stage_result.transition,
            t_early=stage_result.t_early,
            t_late=stage_result.t_late,
            coupled=stage_result.coupled,
        )

    # -- batched priming ------------------------------------------------------

    def prime_arcs(self, requests: Sequence[ArcRequest]) -> int:
        """Ensure every request's quantized situation is cached.

        Deduplicates the requests through the quantized arc key, then
        solves the distinct misses -- with the batch engine in one
        vectorized call (optionally fanned out over worker processes)
        when configured, falling back to the scalar reference solver for
        tiny batches or ``engine="scalar"``.  Returns the number of
        situations actually solved.
        """
        misses: dict[tuple, CellType] = {}
        for request in requests:
            key = self._quantized_key(request)
            if key not in self._arc_cache and key not in misses:
                misses[key] = request.ctype
        if not misses:
            return 0

        if self.engine != "batch" or len(misses) < MIN_BATCH:
            for key, ctype in misses.items():
                self._arc_cache[key] = self._solve_key(ctype, key)
            return len(misses)

        if self.workers >= 2 and len(misses) >= 2 * MIN_BATCH:
            self._solve_keys_pooled(misses)
        else:
            self._solve_keys_batched(misses)
        return len(misses)

    def _solve_keys_batched(self, misses: dict[tuple, CellType]) -> None:
        """One vectorized integration over all missing situations."""
        # Materialise tables first so the bank covers every (cell, pin).
        for key, ctype in misses.items():
            self.solver_for(ctype, key[1])
        solver = self._batch_solver_current()
        index_of = {table_key: i for i, table_key in enumerate(self._table_order)}
        keys = list(misses)
        specs = [
            BatchArcSpec(
                table_index=index_of[(name, pin)],
                input_direction=direction,
                transition=tt,
                load=CouplingLoad(c_ground=c_passive, c_couple_active=c_active),
                aiding=aiding,
            )
            for (name, pin, direction, tt, c_passive, c_active, aiding) in keys
        ]
        try:
            results = solver.solve_many(specs)
        except SolverError as exc:
            if self.strict:
                raise
            self._c_batch_fallbacks.inc()
            logger.warning(
                "batched solve of %d arcs failed (%s); falling back to "
                "per-arc scalar solves",
                len(keys),
                exc,
            )
            for key in keys:
                self._arc_cache[key] = self._solve_key(misses[key], key)
            return
        for key, stage_result in zip(keys, results):
            self._arc_cache[key] = self._to_arc(stage_result)
        self._c_evaluations.inc(len(keys))
        self._c_batched.inc(len(keys))

    def _solve_keys_pooled(self, misses: dict[tuple, CellType]) -> None:
        """Fan the distinct solves out over worker processes.

        Chunks are submitted one future at a time so a dead or hung
        worker is detected per chunk; see :meth:`_run_pool_chunk` for the
        retry/quarantine policy.
        """
        keys = list(misses)
        table_specs: list = []
        spec_index: dict = {}
        items = []
        for key in keys:
            name, pin, direction, tt, c_passive, c_active, aiding = key
            params = _stage_params(misses[key], pin, self.process)
            ti = spec_index.get(params)
            if ti is None:
                ti = len(table_specs)
                spec_index[params] = ti
                table_specs.append(params)
            items.append((ti, direction, tt, c_passive, c_active, aiding))

        chunks = max(1, self.workers)
        chunk_size = (len(items) + chunks - 1) // chunks
        for index, start in enumerate(range(0, len(items), chunk_size)):
            chunk_keys = keys[start : start + chunk_size]
            base_payload = (
                self.process,
                self.table_points,
                table_specs,
                items[start : start + chunk_size],
            )
            rows = self._run_pool_chunk(base_payload, index, chunk_keys, misses)
            if rows is None:
                # The chunk was solved (and counted) one arc at a time by
                # the scalar fallback inside _run_pool_chunk.
                continue
            for key, fields in zip(chunk_keys, rows):
                direction, t_cross, transition, t_early, t_late, coupled = fields
                self._arc_cache[key] = ArcResult(
                    direction, t_cross, transition, t_early, t_late, coupled
                )
            self._c_evaluations.inc(len(rows))
            self._c_batched.inc(len(rows))
            self._c_pool.inc(len(rows))

    def _run_pool_chunk(
        self,
        base_payload: tuple,
        chunk_index: int,
        chunk_keys: list[tuple],
        misses: dict[tuple, CellType],
    ) -> list | None:
        """Solve one chunk on the pool, surviving worker faults.

        Worker death (BrokenProcessPool), per-chunk timeouts and OS-level
        submission failures are retried up to ``worker_retries`` times
        with exponential backoff, rebuilding the executor each time.  A
        chunk that still fails is quarantined: replayed in-process (bit-
        identical to the pool result), and if even that raises a solver
        error, each arc is solved individually so only the sick arcs
        degrade.  Returns the chunk's result rows, or ``None`` when the
        per-arc fallback already cached (and counted) the results.
        """
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures import TimeoutError as PoolTimeout
        from concurrent.futures.process import BrokenProcessPool

        attempts = self.worker_retries + 1
        for attempt in range(attempts):
            payload = (*base_payload, self._take_pool_fault(chunk_index))
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            future = self._executor.submit(_pool_solve_chunk, payload)
            try:
                rows, snapshot = future.result(timeout=self.worker_timeout)
            except SolverError:
                # Deterministic numerical failure: a retry would fail
                # identically, so go straight to the in-process fallback.
                break
            except (BrokenProcessPool, PoolTimeout, TimeoutError, OSError) as exc:
                self._c_worker_failures.inc()
                self._reset_executor()
                if attempt + 1 < attempts:
                    self._c_worker_retries.inc()
                    delay = self.retry_backoff * (2**attempt)
                    logger.warning(
                        "worker chunk %d failed (%s: %s); retrying in %.0f ms",
                        chunk_index,
                        type(exc).__name__,
                        exc,
                        delay * 1e3,
                    )
                    time.sleep(delay)
                else:
                    logger.warning(
                        "worker chunk %d failed (%s: %s) after %d attempts; "
                        "quarantining and evaluating in-process",
                        chunk_index,
                        type(exc).__name__,
                        exc,
                        attempts,
                    )
            else:
                self.metrics.merge_snapshot(snapshot)
                return rows

        self._c_quarantined_chunks.inc()
        self._c_serial_fallbacks.inc()
        try:
            rows, snapshot = _pool_solve_chunk((*base_payload, None))
        except SolverError as exc:
            if self.strict:
                raise
            logger.warning(
                "chunk %d failed in-process as well (%s); solving its arcs "
                "one at a time",
                chunk_index,
                exc,
            )
            for key in chunk_keys:
                if key not in self._arc_cache:
                    self._arc_cache[key] = self._solve_key(misses[key], key)
            return None
        self.metrics.merge_snapshot(snapshot)
        return rows

    def _take_pool_fault(self, chunk_index: int) -> dict | None:
        """Consume one injected worker fault, if the harness armed any.

        The spec is decremented parent-side so a ``times=N`` injection
        fires on exactly N chunk submissions regardless of worker
        scheduling -- that is what makes pool-fault tests deterministic.
        """
        spec = self.pool_fault
        if not spec or spec.get("times", 0) <= 0:
            return None
        only = spec.get("chunks")
        if only is not None and chunk_index not in only:
            return None
        spec["times"] -= 1
        return {"action": spec["action"], "seconds": spec.get("seconds", 30.0)}

    def _reset_executor(self) -> None:
        """Tear down the pool so the next chunk starts on fresh workers."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        """Shut down the worker pool, if one was started."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def solve_stage_raw(
        self,
        ctype: CellType,
        pin: str,
        input_ramp: InputRamp,
        load: CouplingLoad,
    ) -> StageResult:
        """Uncached full-waveform stage solve (diagnostics, validation)."""
        return self.solver_for(ctype, pin).solve(input_ramp, load)

    # -- persistence ----------------------------------------------------------

    def fingerprint(self, cell_types: Iterable[CellType]) -> str:
        """The compatibility fingerprint of this calculator's results."""
        return library_fingerprint(
            self.process,
            cell_types,
            self.transition_grid,
            self.cap_grid,
            self.table_points,
        )

    def save_cache_file(self, path: str, cell_types: Iterable[CellType]) -> int:
        """Write the arc cache as JSON keyed by the library fingerprint.

        Returns the number of entries written.  The write is atomic
        (temp file + rename) so concurrent runs never read a torn file,
        and the arc table carries a content checksum so silent corruption
        (bit rot, partial copies) is caught at load time.
        """
        arcs = [
            [list(key), [r.direction, r.t_cross, r.transition, r.t_early, r.t_late, r.coupled]]
            for key, r in self._arc_cache.items()
        ]
        body = json.dumps(arcs, sort_keys=True)
        payload = {
            "format": CACHE_FORMAT,
            "fingerprint": self.fingerprint(cell_types),
            "checksum": hashlib.sha256(body.encode()).hexdigest(),
            "arcs": arcs,
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
        return len(self._arc_cache)

    def _quarantine_cache(self, path: str, reason: str) -> int:
        """Move a corrupt cache file aside so the rebuild cannot re-read
        it; strict mode raises a :class:`CacheError` instead of rebuilding."""
        self._c_cache_quarantined.inc()
        quarantined = f"{path}.bad"
        try:
            os.replace(path, quarantined)
            where = f"quarantined to {quarantined}"
        except OSError:
            where = "could not be quarantined"
        logger.warning(
            "arc cache %s is corrupt (%s); %s, rebuilding from scratch",
            path,
            reason,
            where,
        )
        if self.strict:
            raise CacheError(f"arc cache {path} is corrupt: {reason}")
        return 0

    def load_cache_file(self, path: str, cell_types: Iterable[CellType]) -> int:
        """Load a persistent arc cache if it matches this configuration.

        Silently ignores missing, unreadable, wrong-format or
        stale-fingerprint files (a cold start is always safe).  Corrupt
        files -- unparseable, checksum mismatch, malformed or non-finite
        arc entries -- are additionally quarantined to ``<path>.bad``.
        Returns the number of entries adopted.
        """
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError:
            return 0
        except ValueError:
            return self._quarantine_cache(path, "not valid JSON")
        if not isinstance(payload, dict) or payload.get("format") != CACHE_FORMAT:
            self._c_stale.inc()
            logger.warning("arc cache %s has an unknown format; ignoring", path)
            return 0
        if payload.get("fingerprint") != self.fingerprint(cell_types):
            self._c_stale.inc()
            logger.warning(
                "arc cache %s was built for a different configuration; ignoring", path
            )
            return 0
        arcs = payload.get("arcs", [])
        body = json.dumps(arcs, sort_keys=True)
        if hashlib.sha256(body.encode()).hexdigest() != payload.get("checksum"):
            return self._quarantine_cache(path, "content checksum mismatch")
        entries: list[tuple[tuple, ArcResult]] = []
        try:
            for raw_key, fields in arcs:
                name, pin, direction, tt, c_passive, c_active, aiding = raw_key
                out_direction, t_cross, transition, t_early, t_late, coupled = fields
                numbers = (tt, c_passive, c_active, t_cross, transition, t_early, t_late)
                if not all(
                    isinstance(v, (int, float)) and math.isfinite(v) for v in numbers
                ):
                    raise ValueError("non-finite arc entry")
                entries.append(
                    (
                        (name, pin, direction, tt, c_passive, c_active, bool(aiding)),
                        ArcResult(
                            out_direction,
                            t_cross,
                            transition,
                            t_early,
                            t_late,
                            bool(coupled),
                        ),
                    )
                )
        except (TypeError, ValueError):
            return self._quarantine_cache(path, "malformed arc entries")
        loaded = 0
        for key, arc in entries:
            if key in self._arc_cache:
                continue
            self._arc_cache[key] = arc
            loaded += 1
        self._c_persisted.inc(loaded)
        return loaded

    # -- statistics -----------------------------------------------------------

    def cache_stats(self) -> dict:
        lookups = self.evaluations + self.cache_hits
        return {
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "hit_rate": self.cache_hits / lookups if lookups else 0.0,
            "cached_arcs": len(self._arc_cache),
            "stage_tables": len(self._stage_tables),
            "batched_solves": self.batched_solves,
            "pool_solves": self.pool_solves,
            "persisted_loads": self.persisted_loads,
            "stale_rejects": self._c_stale.value,
            "quarantined": self._c_cache_quarantined.value,
            "newton_iterations": self._h_newton.total,
            "newton_bisections": self._c_bisect.value,
            "degraded_arcs": self._c_degraded.value,
            "worker_failures": self._c_worker_failures.value,
        }

    def reset_counters(self) -> None:
        self._c_evaluations.reset()
        self._c_cache_hits.reset()
        self._c_batched.reset()
        self._c_pool.reset()
