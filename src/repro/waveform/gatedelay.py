"""Per-arc gate delay calculation with caching.

Wraps the stage solver into the operation the STA performs on every timing
arc: given the switching input's ramp event, the cell/pin, and the victim
output's coupling situation, produce the output ramp event.

Results are cached on a quantized key (cell, pin, input direction, input
transition, passive load, active coupling); circuits instantiate few cell
types at many places, so the hit rate is high and the Newton integrations
are only paid for distinct electrical situations.  Quantization rounds the
load and slew *up* (slower, later -- conservative for the delay bound);
the small non-conservative error this leaves on the early-activity marker
is covered by the STA's comparison guard band (``StaConfig.guard``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuit.library import CellType
from repro.devices.params import ProcessParams, default_process
from repro.devices.tables import StageTable
from repro.waveform.coupling import CouplingLoad
from repro.waveform.pwl import opposite
from repro.waveform.ramp import RampEvent
from repro.waveform.stage import InputRamp, StageResult, StageSolver


@dataclass(frozen=True)
class ArcResult:
    """Stage response in the input-ramp-start time frame (t_start = 0)."""

    direction: str
    t_cross: float
    transition: float
    t_early: float
    t_late: float
    coupled: bool

    def to_event(self, t_start: float) -> RampEvent:
        """Materialise as an absolute-time ramp event."""
        return RampEvent(
            direction=self.direction,
            t_cross=t_start + self.t_cross,
            transition=self.transition,
            t_early=t_start + self.t_early,
            t_late=t_start + self.t_late,
        )


class GateDelayCalculator:
    """Caching transistor-level delay engine for library-cell arcs."""

    def __init__(
        self,
        process: ProcessParams | None = None,
        transition_grid: float = 2e-12,
        cap_grid: float = 0.2e-15,
        table_points: int = 121,
    ):
        self.process = process if process is not None else default_process()
        self.transition_grid = transition_grid
        self.cap_grid = cap_grid
        self.table_points = table_points
        self._stage_tables: dict[tuple[str, str], StageTable] = {}
        self._solvers: dict[tuple[str, str], StageSolver] = {}
        self._arc_cache: dict[tuple, ArcResult] = {}
        self.evaluations = 0
        self.cache_hits = 0

    # -- stage machinery ----------------------------------------------------

    def solver_for(self, ctype: CellType, pin: str) -> StageSolver:
        key = (ctype.name, pin)
        solver = self._solvers.get(key)
        if solver is None:
            pull_up, pull_down = ctype.topology.equivalent_stage(pin, self.process)
            if pull_up is None and pull_down is None:
                raise ValueError(
                    f"{ctype.name} has no transistor gated by pin {pin!r}"
                )
            table = StageTable(
                pull_up, pull_down, process=self.process, points=self.table_points
            )
            self._stage_tables[key] = table
            solver = StageSolver(table, self.process)
            self._solvers[key] = solver
        return solver

    # -- quantization --------------------------------------------------------

    def _q_time(self, value: float, down: bool = False) -> float:
        rounder = math.floor if down else math.ceil
        return rounder(max(value, 1e-13) / self.transition_grid) * self.transition_grid

    def _q_cap(self, value: float, down: bool = False) -> float:
        rounder = math.floor if down else math.ceil
        return rounder(max(value, 0.0) / self.cap_grid) * self.cap_grid

    # -- the arc operation ----------------------------------------------------

    def compute_arc(
        self,
        ctype: CellType,
        pin: str,
        input_event: RampEvent,
        load: CouplingLoad,
        aiding: bool = False,
    ) -> RampEvent:
        """Output ramp event at the cell's output pin (wire delay excluded).

        The cell is negative unate (static single-stage CMOS): the output
        direction is the opposite of ``input_event.direction``.
        """
        result = self.compute_arc_relative(
            ctype, pin, input_event.direction, input_event.transition, load, aiding
        )
        t_start = input_event.t_cross - 0.5 * input_event.transition
        return result.to_event(t_start)

    def compute_arc_relative(
        self,
        ctype: CellType,
        pin: str,
        input_direction: str,
        input_transition: float,
        load: CouplingLoad,
        aiding: bool = False,
        quantize_down: bool = False,
    ) -> ArcResult:
        """The cached, time-origin-free arc calculation.

        ``aiding=True`` applies the mirrored same-direction coupling model
        (helping jump) used by min-delay analysis.  ``quantize_down``
        rounds the cache key's load and slew *down* instead of up -- the
        conservative direction for a min-delay (lower) bound, where the
        modelled arc must never be slower than reality.
        """
        tt = self._q_time(input_transition, down=quantize_down)
        c_passive = self._q_cap(load.c_ground + load.c_couple_passive, down=quantize_down)
        # Active coupling is a *helping* jump in min-delay contexts: round
        # it up there (more help -> faster -> safe lower bound).
        c_active = self._q_cap(load.c_couple_active, down=quantize_down and not aiding)
        if quantize_down and c_passive + c_active <= 0.0:
            c_passive = self.cap_grid  # keep the stage integrable
        key = (ctype.name, pin, input_direction, tt, c_passive, c_active, aiding)
        cached = self._arc_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached

        self.evaluations += 1
        solver = self.solver_for(ctype, pin)
        stage_result = solver.solve(
            InputRamp(direction=input_direction, t_start=0.0, transition=tt),
            CouplingLoad(
                c_ground=c_passive,
                c_couple_active=c_active,
                c_couple_passive=0.0,
            ),
            aiding=aiding,
        )
        arc = ArcResult(
            direction=stage_result.direction,
            t_cross=stage_result.t_cross,
            transition=stage_result.transition,
            t_early=stage_result.t_early,
            t_late=stage_result.t_late,
            coupled=stage_result.coupled,
        )
        self._arc_cache[key] = arc
        return arc

    def solve_stage_raw(
        self,
        ctype: CellType,
        pin: str,
        input_ramp: InputRamp,
        load: CouplingLoad,
    ) -> StageResult:
        """Uncached full-waveform stage solve (diagnostics, validation)."""
        return self.solver_for(ctype, pin).solve(input_ramp, load)

    def cache_stats(self) -> dict[str, int]:
        return {
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "cached_arcs": len(self._arc_cache),
            "stage_tables": len(self._stage_tables),
        }

    def reset_counters(self) -> None:
        self.evaluations = 0
        self.cache_hits = 0
