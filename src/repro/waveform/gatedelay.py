"""Per-arc gate delay calculation with caching.

Wraps the stage solvers into the operation the STA performs on every
timing arc: given the switching input's ramp event, the cell/pin, and the
victim output's coupling situation, produce the output ramp event.

Results are cached on a *canonicalized* quantized key: instead of the
(cell, pin) name pair, the key carries the arc's **stage signature** --
an interned token of the collapsed pull-up/pull-down device parameters
the stage solver actually integrates (see :func:`_stage_params`).  Two
arcs through differently named cells or pins that collapse to the same
devices are electrically the same integration, so they share one cache
entry and one Newton solve; the token is a content hash of the device
parameters, which makes it stable across runs and safe to persist.  The
remaining key fields are the input direction and the quantized slew /
passive load / active-coupling configuration.  Quantization rounds the
load and slew *up* (slower, later -- conservative for the delay bound);
signature sharing itself is exact, not approximate: equal collapsed
devices build bit-identical stage tables, so the shared result equals
what a per-(cell, pin) solve would have produced.  The small
non-conservative error quantization leaves on the early-activity marker
is covered by the STA's comparison guard band (``StaConfig.guard``).

Two evaluation backends fill the cache:

* the scalar :class:`~repro.waveform.stage.StageSolver` (reference), one
  arc at a time, and
* the vectorized :class:`~repro.waveform.batchstage.BatchStageSolver`,
  used by :meth:`GateDelayCalculator.prime_arcs` to integrate all distinct
  situations of a batch simultaneously -- optionally fanned out over a
  ``ProcessPoolExecutor`` for multi-core scaling.

The cache can persist across runs (:meth:`save_cache_file` /
:meth:`load_cache_file`): a JSON file keyed by a fingerprint of the
process, the cell library's collapsed stage devices and the solver
settings, so the iterative mode's repeat passes and repeated benchmark
invocations skip Newton entirely.

Fault tolerance: because every result of the analysis is an *upper
bound* on the true last event (paper, Section 3), the correct response
to a numerical failure is a coarser-but-still-safe bound, not a crash.
When both Newton and its bisection fallback fail on an arc, the
calculator substitutes a conservative ramp bound (see
:meth:`GateDelayCalculator._conservative_arc`), counts it under
``solver.degraded_arcs`` and annotates it in
:attr:`GateDelayCalculator.degraded`; ``strict=True`` restores the
fail-fast behaviour.  The multi-core fan-out likewise survives worker
death and hangs (bounded retries with backoff, then an in-process
replay of the chunk), and persistent cache files are checksummed --
corrupt ones are quarantined to ``<path>.bad`` and rebuilt.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import math
import os
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.circuit.library import CellType
from repro.devices.params import ProcessParams, default_process
from repro.devices.tables import StageTable
from repro.errors import CacheError, InputError, SolverError
from repro.obs.metrics import NEWTON_ITER_BUCKETS, MetricsRegistry
from repro.waveform.batchstage import BatchArcSpec, BatchStageSolver
from repro.waveform.coupling import CouplingLoad
from repro.waveform.pwl import RISING, opposite
from repro.waveform.ramp import RampEvent
from repro.waveform.screening import ArcScreen
from repro.waveform.stage import (
    MAX_EXTENSIONS,
    SETTLE_FRACTION,
    STEPS_PER_PHASE,
    InputRamp,
    StageResult,
    StageSolver,
)

logger = logging.getLogger("repro.waveform.gatedelay")

# Format 2 added the content checksum over the arc table; format 3
# replaced the (cell, pin) key prefix with the canonical stage signature.
CACHE_FORMAT = 3

# Below this many distinct situations a batched solve does not amortize
# its setup; fall through to the scalar reference path.
MIN_BATCH = 4


@dataclass(frozen=True)
class ArcResult:
    """Stage response in the input-ramp-start time frame (t_start = 0)."""

    direction: str
    t_cross: float
    transition: float
    t_early: float
    t_late: float
    coupled: bool

    def to_event(self, t_start: float) -> RampEvent:
        """Materialise as an absolute-time ramp event."""
        return RampEvent(
            direction=self.direction,
            t_cross=t_start + self.t_cross,
            transition=self.transition,
            t_early=t_start + self.t_early,
            t_late=t_start + self.t_late,
        )


@dataclass(frozen=True)
class ArcRequest:
    """One arc situation for batched priming (pre-quantization values)."""

    ctype: CellType
    pin: str
    input_direction: str
    input_transition: float
    load: CouplingLoad
    aiding: bool = False
    quantize_down: bool = False
    # Screened tier only: route this request to the full Newton solve
    # (slack-critical arc).  Not part of the canonical cache key.
    force_exact: bool = False


def _stage_params(ctype: CellType, pin: str, process: ProcessParams):
    """Collapsed (pull-up, pull-down) device parameter tuples for an arc,
    or ``None`` per side -- the electrical identity of a stage table."""
    pull_up, pull_down = ctype.topology.equivalent_stage(pin, process)
    pu = dataclasses.astuple(pull_up.params) if pull_up is not None else None
    pd = dataclasses.astuple(pull_down.params) if pull_down is not None else None
    return pu, pd


def _signature_token(params: tuple) -> str:
    """Stable content token of one collapsed-stage electrical identity.

    Hashing the device parameter tuples (via their JSON float reprs,
    which are round-trip exact) gives a token that is identical across
    processes and runs, so canonical cache keys survive persistence.
    """
    blob = json.dumps(params, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def library_fingerprint(
    process: ProcessParams,
    cell_types: Iterable[CellType],
    transition_grid: float,
    cap_grid: float,
    table_points: int,
) -> str:
    """Hash of everything that determines an arc result.

    Two runs with equal fingerprints may share cached arcs: the process
    constants, the collapsed stage devices of every (cell, pin), the
    quantization grids, the table resolution and the solver settings.
    """
    cells = {}
    for ctype in sorted({c.name: c for c in cell_types}.values(), key=lambda c: c.name):
        pins = {}
        for pin in dict.fromkeys(list(ctype.inputs) + ["A"]):
            try:
                pu, pd = _stage_params(ctype, pin, process)
            except (KeyError, ValueError):
                continue
            if pu is None and pd is None:
                continue
            pins[pin] = [pu, pd]
        cells[ctype.name] = pins
    payload = {
        "process": dataclasses.asdict(process),
        "transition_grid": transition_grid,
        "cap_grid": cap_grid,
        "table_points": table_points,
        "solver": {
            "steps_per_phase": STEPS_PER_PHASE,
            "settle_fraction": SETTLE_FRACTION,
            "max_extensions": MAX_EXTENSIONS,
        },
        "cells": cells,
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


# -- worker-process machinery for the opt-in multi-core fan-out ------------
#
# Stage tables are shipped to the workers ONCE per executor: the pool is
# created with an initializer that receives the process constants, the
# table resolution and the parent's currently known stage signatures, and
# prebuilds the corresponding tables into the per-process cache.  Chunk
# payloads then carry only the work items themselves; an item references
# its stage by the raw device parameter tuples, so a signature discovered
# after executor start is simply built (and cached) on first use without
# any executor rebuild.

_WORKER_TABLES: dict = {}
_WORKER_CTX: dict = {}


def _worker_table(pu, pd) -> StageTable:
    """The per-worker-process stage table for one collapsed stage."""
    from repro.devices.mosfet import Mosfet, MosfetParams

    process = _WORKER_CTX["process"]
    table_points = _WORKER_CTX["table_points"]
    cache_key = (pu, pd, table_points)
    table = _WORKER_TABLES.get(cache_key)
    if table is None:
        pull_up = Mosfet(MosfetParams(*pu), process) if pu is not None else None
        pull_down = Mosfet(MosfetParams(*pd), process) if pd is not None else None
        table = StageTable(pull_up, pull_down, process=process, points=table_points)
        _WORKER_TABLES[cache_key] = table
    return table


def _pool_init(process, table_points, warm_specs) -> None:
    """Executor initializer: prime one worker's table cache.

    Runs once per worker process at pool start-up, so the per-chunk
    payloads never repeat the (identical) table data.
    """
    _WORKER_CTX["process"] = process
    _WORKER_CTX["table_points"] = table_points
    for pu, pd in warm_specs:
        _worker_table(pu, pd)


def _apply_worker_fault(fault: dict) -> None:
    """Execute one injected worker fault (see :mod:`repro.testing.faults`).

    ``kill`` terminates the worker process without cleanup -- exactly
    what an OOM kill or segfault looks like to the parent's pool.
    ``hang`` blocks the worker past any per-chunk timeout.
    """
    action = fault.get("action")
    if action == "kill":
        os._exit(17)
    elif action == "hang":
        time.sleep(float(fault.get("seconds", 30.0)))


def _pool_solve_chunk(payload):
    """Solve one chunk of distinct arc situations in a worker process.

    ``payload``: (items, fault) where each item is ``(pu_params,
    pd_params, direction, tt, c_passive, c_active, aiding)`` and
    ``fault`` is ``None`` outside the fault-injection harness.  Tables
    come from the per-process cache primed by :func:`_pool_init` (built
    on demand for signatures discovered after pool start).  Returns one
    result tuple per item -- including the arc's Newton iteration count,
    which the parent feeds into its per-signature cost model -- plus the
    worker's metrics snapshot, which the parent merges into its registry.
    """
    items, fault = payload
    if fault is not None:
        _apply_worker_fault(fault)
    tables: list[StageTable] = []
    index_of: dict = {}
    specs = []
    for pu, pd, direction, tt, cp, ca, aiding in items:
        stage = (pu, pd)
        ti = index_of.get(stage)
        if ti is None:
            ti = len(tables)
            index_of[stage] = ti
            tables.append(_worker_table(pu, pd))
        specs.append(
            BatchArcSpec(
                table_index=ti,
                input_direction=direction,
                transition=tt,
                load=CouplingLoad(c_ground=cp, c_couple_active=ca),
                aiding=aiding,
            )
        )
    registry = MetricsRegistry()
    solver = BatchStageSolver(tables, _WORKER_CTX["process"], metrics=registry)
    rows = [
        (
            r.direction,
            r.t_cross,
            r.transition,
            r.t_early,
            r.t_late,
            r.coupled,
            r.newton_iterations,
        )
        for r in solver.solve_many(specs)
    ]
    return rows, registry.snapshot()


class GateDelayCalculator:
    """Caching transistor-level delay engine for library-cell arcs."""

    def __init__(
        self,
        process: ProcessParams | None = None,
        transition_grid: float = 2e-12,
        cap_grid: float = 0.2e-15,
        table_points: int = 121,
        engine: str = "scalar",
        workers: int = 0,
        metrics: MetricsRegistry | None = None,
        strict: bool = False,
        worker_retries: int = 2,
        worker_timeout: float | None = None,
        retry_backoff: float = 0.05,
        solver_tier: str = "exact",
        screen_tolerance: float = 100e-12,
    ):
        self.process = process if process is not None else default_process()
        self.transition_grid = transition_grid
        self.cap_grid = cap_grid
        self.table_points = table_points
        self.engine = engine
        self.workers = workers
        # Fault-tolerance policy: ``strict`` restores fail-fast solves and
        # turns corrupt-cache quarantine into a CacheError; the worker
        # knobs bound how long a sick pool may stall the run.
        self.strict = strict
        self.worker_retries = max(0, worker_retries)
        self.worker_timeout = worker_timeout
        self.retry_backoff = retry_backoff
        # Per-arc degradation annotations (dicts; surfaced on StaResult).
        self.degraded: list[dict] = []
        # Fault-injection hook: a mutable spec dict consumed (parent-side,
        # hence deterministically) by :meth:`_take_pool_fault`.
        self.pool_fault: dict | None = None
        # Canonical stage signatures: (cell, pin) -> token, token -> the
        # collapsed device parameters, a representative (cell, pin) for
        # diagnostics, and the per-signature Newton cost model
        # [solves, total_iterations] that orders worker chunks.
        self._sig_of: dict[tuple[str, str], str] = {}
        self._sig_params: dict[str, tuple] = {}
        self._sig_rep: dict[str, tuple[CellType, str]] = {}
        self._sig_cost: dict[str, list] = {}
        # Stage tables / solvers are keyed by signature token, so aliased
        # (cell, pin) pairs share one table build as well as one cache row.
        self._stage_tables: dict[str, StageTable] = {}
        self._solvers: dict[str, StageSolver] = {}
        self._arc_cache: dict[tuple, ArcResult] = {}
        # Keys adopted from a persistent cache file: hits on them are
        # persisted-cache reuse, everything else is in-run deduplication.
        self._persisted_keys: set[tuple] = set()
        self._batch_solver: BatchStageSolver | None = None
        self._table_order: list[str] = []
        self._executor = None
        # All statistics live in a metrics registry (one per analysis run,
        # shared with the propagator when the analyzer constructs us); the
        # instruments are resolved once so the hot path pays one method
        # call per event.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_evaluations = self.metrics.counter("arc_cache.evaluations")
        self._c_cache_hits = self.metrics.counter("arc_cache.hits")
        # Hit taxonomy: a hit is either in-run deduplication (the same
        # canonical situation requested again, possibly through a
        # different cell/pin) or reuse of an entry loaded from disk.
        self._c_dedup_hits = self.metrics.counter("arc_cache.dedup_hits")
        self._c_persisted_hits = self.metrics.counter("arc_cache.persisted_hits")
        self._g_signatures = self.metrics.gauge("arc_cache.signatures")
        self._c_sig_aliases = self.metrics.counter("arc_cache.signature_aliases")
        self._c_batched = self.metrics.counter("arc_cache.batched_solves")
        self._c_pool = self.metrics.counter("arc_cache.pool_solves")
        self._c_persisted = self.metrics.counter("arc_cache.persisted_loads")
        self._c_stale = self.metrics.counter("arc_cache.stale_rejects")
        self._h_newton = self.metrics.histogram(
            "newton.iterations_per_arc", boundaries=NEWTON_ITER_BUCKETS
        )
        self._c_bisect = self.metrics.counter("newton.bisection_fallbacks")
        self._c_degraded = self.metrics.counter("solver.degraded_arcs")
        self._c_batch_fallbacks = self.metrics.counter("engine.batch_fallbacks")
        self._c_worker_failures = self.metrics.counter("engine.worker_failures")
        self._c_worker_retries = self.metrics.counter("engine.worker_retries")
        self._c_quarantined_chunks = self.metrics.counter("engine.quarantined_chunks")
        self._c_serial_fallbacks = self.metrics.counter("engine.serial_fallbacks")
        self._c_cache_quarantined = self.metrics.counter("arc_cache.quarantined")
        # Tiered-solver accounting: one counter per tier (distinct
        # canonical situations resolved by it), escalation reasons, and
        # wall-clock spent per tier.  All stay zero in exact mode.
        self._c_tier = {
            tier: self.metrics.counter("solver.tier", tier=tier)
            for tier in ("analytical", "surface", "newton")
        }
        self._c_tier_seconds = {
            tier: self.metrics.counter("solver.tier_seconds", tier=tier)
            for tier in ("analytical", "surface", "newton")
        }
        self._c_escalations = {
            reason: self.metrics.counter("propagation.escalations", reason=reason)
            for reason in ("outside_region", "error_tolerance", "slack")
        }
        self._c_screen_hits = self.metrics.counter("arc_cache.screen_hits")
        # The screened tier's per-signature macromodel / response-surface
        # bank.  ``last_tier`` reports which tier answered the most recent
        # compute_arc_relative call ("newton" covers exact-cache hits).
        self.solver_tier = solver_tier
        self.screen_tolerance = screen_tolerance
        self.last_tier = "newton"
        # Provenance surfaces: alongside ``last_tier``, every
        # compute_arc_relative call also reports where its result came
        # from (``last_origin``, one of repro.core.provenance.ORIGINS —
        # string literals here to keep waveform/ free of core/ imports),
        # why a screened query escalated (``last_escalation``) and the
        # signature token it resolved through (``last_signature``).
        # ``_fresh_keys`` holds keys solved by prime_arcs whose first
        # consumer has not yet claimed them as "fresh"; ``_degraded_keys``
        # marks conservative substitute bounds; ``_key_escalation``
        # remembers why a cached key once escalated to Newton.
        self.last_origin = "fresh"
        self.last_escalation: str | None = None
        self.last_signature = ""
        self._fresh_keys: set[tuple] = set()
        self._degraded_keys: set[tuple] = set()
        self._key_escalation: dict[tuple, str] = {}
        self._screen_cache: dict[tuple, tuple[ArcResult, str]] = {}
        self._screen: ArcScreen | None = None
        if solver_tier == "screened":
            self._screen = ArcScreen(
                solve=self._anchor_solve,
                q_time=self._q_time,
                q_cap=self._q_cap,
                transition_grid=self.transition_grid,
                cap_grid=self.cap_grid,
                tolerance=screen_tolerance,
            )

    # -- statistics properties (registry-backed, kept for compatibility) ----

    @property
    def evaluations(self) -> int:
        return self._c_evaluations.value

    @property
    def cache_hits(self) -> int:
        return self._c_cache_hits.value

    @property
    def dedup_hits(self) -> int:
        return self._c_dedup_hits.value

    @property
    def persisted_hits(self) -> int:
        return self._c_persisted_hits.value

    @property
    def batched_solves(self) -> int:
        return self._c_batched.value

    @property
    def pool_solves(self) -> int:
        return self._c_pool.value

    @property
    def persisted_loads(self) -> int:
        return self._c_persisted.value

    # -- stage machinery ----------------------------------------------------

    def signature(self, ctype: CellType, pin: str) -> str:
        """The canonical stage-signature token of one (cell, pin) arc.

        Interns the collapsed device parameters: the first (cell, pin)
        collapsing to a given stage registers the signature; later pairs
        that collapse to the same devices become aliases (counted under
        ``arc_cache.signature_aliases``) and share the first pair's
        table, solver and cache rows.
        """
        key = (ctype.name, pin)
        token = self._sig_of.get(key)
        if token is None:
            params = _stage_params(ctype, pin, self.process)
            if params == (None, None):
                raise InputError(
                    f"{ctype.name} has no transistor gated by pin {pin!r}"
                )
            token = _signature_token(params)
            self._sig_of[key] = token
            if token in self._sig_params:
                self._c_sig_aliases.inc()
            else:
                self._sig_params[token] = params
                self._sig_rep[token] = (ctype, pin)
                self._g_signatures.set(len(self._sig_params))
        return token

    def solver_for(self, ctype: CellType, pin: str) -> StageSolver:
        return self._solver_for_token(self.signature(ctype, pin))

    def _solver_for_token(self, token: str) -> StageSolver:
        from repro.devices.mosfet import Mosfet, MosfetParams

        solver = self._solvers.get(token)
        if solver is None:
            pu, pd = self._sig_params[token]
            pull_up = Mosfet(MosfetParams(*pu), self.process) if pu is not None else None
            pull_down = (
                Mosfet(MosfetParams(*pd), self.process) if pd is not None else None
            )
            table = StageTable(
                pull_up, pull_down, process=self.process, points=self.table_points
            )
            self._stage_tables[token] = table
            self._table_order.append(token)
            solver = StageSolver(table, self.process)
            self._solvers[token] = solver
        return solver

    def _batch_solver_current(self) -> BatchStageSolver:
        """The batch solver over all known stage tables, rebuilt when new
        tables appeared since the last build."""
        if self._batch_solver is None or len(self._batch_solver.tables) != len(
            self._table_order
        ):
            self._batch_solver = BatchStageSolver(
                [self._stage_tables[key] for key in self._table_order],
                self.process,
                metrics=self.metrics,
            )
        return self._batch_solver

    # -- quantization --------------------------------------------------------

    def _q_time(self, value: float, down: bool = False) -> float:
        rounder = math.floor if down else math.ceil
        return rounder(max(value, 1e-13) / self.transition_grid) * self.transition_grid

    def _q_cap(self, value: float, down: bool = False) -> float:
        rounder = math.floor if down else math.ceil
        return rounder(max(value, 0.0) / self.cap_grid) * self.cap_grid

    def _quantized_key(self, request: ArcRequest) -> tuple:
        """The canonical cache key of a request: the interned stage
        signature plus the quantized slew and loads.

        This is the single place canonicalization and quantization
        happen, shared by the scalar per-arc path and the batched
        priming path.
        """
        down = request.quantize_down
        tt = self._q_time(request.input_transition, down=down)
        c_passive = self._q_cap(
            request.load.c_ground + request.load.c_couple_passive, down=down
        )
        # Active coupling is a *helping* jump in min-delay contexts: round
        # it up there (more help -> faster -> safe lower bound).
        c_active = self._q_cap(
            request.load.c_couple_active, down=down and not request.aiding
        )
        if down and c_passive + c_active <= 0.0:
            c_passive = self.cap_grid  # keep the stage integrable
        return (
            self.signature(request.ctype, request.pin),
            request.input_direction,
            tt,
            c_passive,
            c_active,
            request.aiding,
        )

    # -- the arc operation ----------------------------------------------------

    def compute_arc(
        self,
        ctype: CellType,
        pin: str,
        input_event: RampEvent,
        load: CouplingLoad,
        aiding: bool = False,
    ) -> RampEvent:
        """Output ramp event at the cell's output pin (wire delay excluded).

        The cell is negative unate (static single-stage CMOS): the output
        direction is the opposite of ``input_event.direction``.
        """
        result = self.compute_arc_relative(
            ctype, pin, input_event.direction, input_event.transition, load, aiding
        )
        t_start = input_event.t_cross - 0.5 * input_event.transition
        return result.to_event(t_start)

    def compute_arc_relative(
        self,
        ctype: CellType,
        pin: str,
        input_direction: str,
        input_transition: float,
        load: CouplingLoad,
        aiding: bool = False,
        quantize_down: bool = False,
        force_exact: bool = False,
    ) -> ArcResult:
        """The cached, time-origin-free arc calculation.

        ``aiding=True`` applies the mirrored same-direction coupling model
        (helping jump) used by min-delay analysis.  ``quantize_down``
        rounds the cache key's load and slew *down* instead of up -- the
        conservative direction for a min-delay (lower) bound, where the
        modelled arc must never be slower than reality.

        Under the screened solver tier the query is first answered from
        the per-signature screening bank (:mod:`repro.waveform.screening`)
        and only escalated to the full Newton solve when the screen
        cannot produce a bound within tolerance.  ``force_exact=True``
        (slack-critical arcs) bypasses the screen; so do ``aiding`` and
        ``quantize_down`` requests, whose min-delay semantics need lower
        bounds the upper-bound screen cannot provide.  ``last_tier``
        records which tier answered.
        """
        request = ArcRequest(
            ctype, pin, input_direction, input_transition, load, aiding, quantize_down
        )
        key = self._quantized_key(request)
        if quantize_down:
            # Down-quantized keys carry min-delay semantics the screen
            # cannot serve; resolve_key's screen gate only sees the
            # aiding flag, so bypass it explicitly here.
            self.last_signature = key[0]
            cached = self._arc_cache.get(key)
            if cached is not None:
                self._record_hit(key)
                self.last_tier = "newton"
                self.last_escalation = self._key_escalation.get(key)
                return cached
            arc = self._solve_key(key)
            self._arc_cache[key] = arc
            self.last_tier = "newton"
            self.last_origin = "degraded" if key in self._degraded_keys else "fresh"
            self.last_escalation = None
            return arc
        return self.resolve_key(key, force_exact)

    def resolve_key(self, key: tuple, force_exact: bool = False) -> ArcResult:
        """Resolve one *pre-quantized* canonical key.

        The columnar core computes quantized keys in bulk (vectorized
        ceil over a level slab) and resolves them here, skipping the
        per-arc :class:`ArcRequest` construction; the cache-probe /
        screen / solve logic and every counter are identical to
        :meth:`compute_arc_relative`.
        """
        self.last_signature = key[0]
        cached = self._arc_cache.get(key)
        if cached is not None:
            self._record_hit(key)
            self.last_tier = "newton"
            self.last_escalation = self._key_escalation.get(key)
            return cached
        if self._screen is not None and not key[5]:
            return self._compute_screened(key, force_exact)
        arc = self._solve_key(key)
        self._arc_cache[key] = arc
        self.last_tier = "newton"
        self.last_origin = "degraded" if key in self._degraded_keys else "fresh"
        self.last_escalation = None
        return arc

    def _screen_arc(self, key: tuple, fields: tuple) -> ArcResult:
        """Materialise a screened bound as an :class:`ArcResult`."""
        t_cross, transition, t_early, t_late = fields
        return ArcResult(
            direction=opposite(key[1]),
            t_cross=t_cross,
            transition=transition,
            t_early=t_early,
            t_late=t_late,
            coupled=key[4] > 0.0,
        )

    def _compute_screened(self, key: tuple, force_exact: bool) -> ArcResult:
        """Screened-tier resolution of one cache miss (scalar path)."""
        if not force_exact:
            screened = self._screen_cache.get(key)
            if screened is not None:
                arc, tier = screened
                self._c_screen_hits.inc()
                self.last_tier = tier
                self.last_origin = (
                    "screen_surface" if tier == "surface" else "screen_analytical"
                )
                self.last_escalation = None
                return arc
        t0 = time.perf_counter()
        if force_exact:
            self._c_escalations["slack"].inc()
            escalation = "slack"
        else:
            outcome = self._screen.estimate(key)
            if outcome.tier is not None:
                arc = self._screen_arc(key, outcome.fields)
                self._screen_cache[key] = (arc, outcome.tier)
                self._c_tier[outcome.tier].inc()
                self._c_tier_seconds[outcome.tier].inc(time.perf_counter() - t0)
                self.last_tier = outcome.tier
                self.last_origin = (
                    "screen_surface"
                    if outcome.tier == "surface"
                    else "screen_analytical"
                )
                self.last_escalation = None
                return arc
            self._c_escalations[outcome.reason].inc()
            escalation = outcome.reason
        arc = self._solve_key(key)
        self._arc_cache[key] = arc
        self._c_tier["newton"].inc()
        self._c_tier_seconds["newton"].inc(time.perf_counter() - t0)
        self.last_tier = "newton"
        self._key_escalation[key] = escalation
        self.last_escalation = escalation
        self.last_origin = "degraded" if key in self._degraded_keys else "fresh"
        return arc

    def _anchor_solve(self, key: tuple) -> ArcResult:
        """Exact solve of one screen-calibration anchor (cached like any
        other canonical situation; counted as a Newton-tier solve)."""
        cached = self._arc_cache.get(key)
        if cached is not None:
            return cached
        arc = self._solve_key(key)
        self._arc_cache[key] = arc
        self._c_tier["newton"].inc()
        return arc

    def _record_hit(self, key: tuple) -> None:
        self._c_cache_hits.inc()
        if key in self._persisted_keys:
            self._c_persisted_hits.inc()
            origin = "persisted"
        else:
            self._c_dedup_hits.inc()
            # The first consumer of a prime_arcs batch solve is the arc
            # that *caused* the solve: report it as fresh, not dedup.
            if key in self._fresh_keys:
                self._fresh_keys.discard(key)
                origin = "fresh"
            else:
                origin = "dedup"
        if key in self._degraded_keys:
            origin = "degraded"
        self.last_origin = origin

    def _observe_cost(self, token: str, iterations: int) -> None:
        """Feed one solved arc's Newton iteration count into the
        per-signature cost model (used to order worker chunks)."""
        stats = self._sig_cost.get(token)
        if stats is None:
            self._sig_cost[token] = [1, iterations]
        else:
            stats[0] += 1
            stats[1] += iterations

    def _solve_key(self, key: tuple) -> ArcResult:
        """Scalar (reference) solve of one canonical arc situation."""
        token, input_direction, tt, c_passive, c_active, aiding = key
        self._c_evaluations.inc()
        solver = self._solver_for_token(token)
        try:
            stage_result = solver.solve(
                InputRamp(direction=input_direction, t_start=0.0, transition=tt),
                CouplingLoad(
                    c_ground=c_passive,
                    c_couple_active=c_active,
                    c_couple_passive=0.0,
                ),
                aiding=aiding,
            )
        except SolverError as exc:
            return self._degrade_key(key, exc)
        self._h_newton.observe(stage_result.newton_iterations)
        self._observe_cost(token, stage_result.newton_iterations)
        if stage_result.newton_bisections:
            self._c_bisect.inc(stage_result.newton_bisections)
        arc = self._to_arc(stage_result)
        if self._screen is not None:
            # Every successful full solve grows the response surface.
            # The degraded path above returns without reaching this, so
            # conservative substitutes never enter the surface.
            self._screen.observe(key, arc)
        return arc

    def _degrade_key(self, key: tuple, exc: SolverError) -> ArcResult:
        """Substitute a conservative bound for an arc whose solve failed.

        Strict mode re-raises instead (the pre-degradation fail-fast
        behaviour); otherwise the substitution is counted under
        ``solver.degraded_arcs`` and annotated in :attr:`degraded`.
        """
        if self.strict:
            raise exc
        arc = self._conservative_arc(key)
        self._c_degraded.inc()
        self._degraded_keys.add(key)
        token, direction, tt, c_passive, c_active, aiding = key
        rep = self._sig_rep.get(token)
        name, pin = (rep[0].name, rep[1]) if rep is not None else (token, "?")
        self.degraded.append(
            {
                "cell": name,
                "pin": pin,
                "signature": token,
                "input_direction": direction,
                "input_transition": tt,
                "c_passive": c_passive,
                "c_active": c_active,
                "aiding": bool(aiding),
                "bound": arc.t_late,
                "reason": f"{type(exc).__name__}: {exc}",
            }
        )
        logger.warning(
            "arc %s/%s (%s) failed to solve (%s); substituting conservative "
            "ramp bound t_late=%.3e s",
            name,
            pin,
            direction,
            exc,
            arc.t_late,
        )
        return arc

    # Voltage margin beyond the rails the bound's traversal allows for
    # (coupling overshoot); matches the stage tables' grid margin.
    _BOUND_MARGIN = 0.3
    # Drive floor when even the table minimum is unusable (amperes).  At
    # femtofarad-scale loads this puts the bound around tens of
    # nanoseconds -- orders of magnitude above any real stage delay.
    _BOUND_CURRENT_FLOOR = 1e-7

    def _conservative_arc(self, key: tuple) -> ArcResult:
        """A provably conservative ramp response for one arc situation.

        Models the stage as charging its total load through the *weakest*
        drive current found anywhere along the output traversal once the
        input has settled::

            T = C_total * span / I_min

        The true output (a) starts moving no later than the assumed
        start (input fully settled at ``tt``) and (b) moves at every
        voltage at least as fast as ``I_min / C_total``, so ``tt + T``
        can only overestimate the late crossing.  Opposing active
        coupling may additionally yank the victim back by at most the
        full span once (divider drop + recovery), covered by a second
        ``T``.  The early marker is pinned to the input ramp start (time
        0): the output cannot move before its cause.  The transition
        upper bound follows from the thresholds: both slew markers lie
        inside ``[0, t_late]`` and the slew is the marker gap over 0.8.
        """
        token, input_direction, tt, c_passive, c_active, aiding = key
        vdd = self.process.vdd
        out_direction = opposite(input_direction)
        margin = self._BOUND_MARGIN
        span = vdd + margin - self.process.v_th_model
        c_total = max(c_passive + c_active, self.cap_grid)

        i_min = 0.0
        table = self._stage_tables.get(token)
        if table is not None:
            vin_final = vdd if input_direction == RISING else 0.0
            if out_direction == RISING:
                v_path = np.linspace(-margin, vdd - self.process.v_th_model, 97)
            else:
                v_path = np.linspace(self.process.v_th_model, vdd + margin, 97)
            currents = np.abs(
                table.current_array(np.full_like(v_path, vin_final), v_path)
            )
            if np.isfinite(currents).all():
                i_min = float(currents.min())
        if not i_min > 0.0:
            i_min = self._BOUND_CURRENT_FLOOR

        t_traverse = c_total * span / i_min
        recovery = t_traverse if c_active > 0.0 else 0.0
        t_late = tt + t_traverse + recovery
        return ArcResult(
            direction=out_direction,
            t_cross=t_late,
            transition=1.25 * t_late,
            t_early=0.0,
            t_late=t_late,
            coupled=c_active > 0.0,
        )

    @staticmethod
    def _to_arc(stage_result: StageResult) -> ArcResult:
        return ArcResult(
            direction=stage_result.direction,
            t_cross=stage_result.t_cross,
            transition=stage_result.transition,
            t_early=stage_result.t_early,
            t_late=stage_result.t_late,
            coupled=stage_result.coupled,
        )

    # -- batched priming ------------------------------------------------------

    def prime_arcs(self, requests: Sequence[ArcRequest]) -> int:
        """Ensure every request's quantized situation is cached.

        Deduplicates the requests through the quantized arc key, then
        solves the distinct misses -- with the batch engine in one
        vectorized call (optionally fanned out over worker processes)
        when configured, falling back to the scalar reference solver for
        tiny batches or ``engine="scalar"``.  Returns the number of
        situations actually solved.

        Under the screened solver tier each miss is screened here, on
        the parent side, and only the escalated (or ``force_exact``)
        situations reach the batch/pool Newton solve.
        """
        misses: list[tuple] = []
        seen: set[tuple] = set()
        screen = self._screen
        for request in requests:
            key = self._quantized_key(request)
            if key in self._arc_cache or key in seen:
                continue
            if screen is not None and not request.aiding and not request.quantize_down:
                if request.force_exact:
                    self._c_escalations["slack"].inc()
                    self._key_escalation[key] = "slack"
                elif key in self._screen_cache:
                    continue
                else:
                    t0 = time.perf_counter()
                    outcome = screen.estimate(key)
                    if outcome.tier is not None:
                        arc = self._screen_arc(key, outcome.fields)
                        self._screen_cache[key] = (arc, outcome.tier)
                        self._c_tier[outcome.tier].inc()
                        self._c_tier_seconds[outcome.tier].inc(
                            time.perf_counter() - t0
                        )
                        continue
                    self._c_escalations[outcome.reason].inc()
                    self._key_escalation[key] = outcome.reason
                    self._c_tier_seconds["newton"].inc(time.perf_counter() - t0)
            seen.add(key)
            misses.append(key)
        return self._solve_misses(misses)

    def prime_keys(self, entries: Sequence[tuple[tuple, bool]]) -> int:
        """Ensure every *pre-quantized* ``(key, force_exact)`` situation
        is cached.

        The columnar core's bulk counterpart of :meth:`prime_arcs`:
        quantization already happened in vectorized form, so this skips
        request construction and goes straight to the dedup / screen /
        batch-solve logic, which is kept identical (first-seen dedup
        order, slack/screen escalation accounting, engine branching).
        ``quantize_down`` keys must not be primed through this path.
        """
        misses: list[tuple] = []
        seen: set[tuple] = set()
        screen = self._screen
        for key, force_exact in entries:
            if key in self._arc_cache or key in seen:
                continue
            if screen is not None and not key[5]:
                if force_exact:
                    self._c_escalations["slack"].inc()
                    self._key_escalation[key] = "slack"
                elif key in self._screen_cache:
                    continue
                else:
                    t0 = time.perf_counter()
                    outcome = screen.estimate(key)
                    if outcome.tier is not None:
                        arc = self._screen_arc(key, outcome.fields)
                        self._screen_cache[key] = (arc, outcome.tier)
                        self._c_tier[outcome.tier].inc()
                        self._c_tier_seconds[outcome.tier].inc(
                            time.perf_counter() - t0
                        )
                        continue
                    self._c_escalations[outcome.reason].inc()
                    self._key_escalation[key] = outcome.reason
                    self._c_tier_seconds["newton"].inc(time.perf_counter() - t0)
            seen.add(key)
            misses.append(key)
        return self._solve_misses(misses)

    def _solve_misses(self, misses: list[tuple]) -> int:
        """Solve the deduplicated cache misses (shared prime tail)."""
        if not misses:
            return 0
        t0 = time.perf_counter()
        if self.engine != "batch" or len(misses) < MIN_BATCH:
            for key in misses:
                self._arc_cache[key] = self._solve_key(key)
        elif self.workers >= 2 and len(misses) >= 2 * MIN_BATCH:
            self._solve_keys_pooled(misses)
        else:
            self._solve_keys_batched(misses)
        self._fresh_keys.update(misses)
        if self._screen is not None:
            self._c_tier["newton"].inc(len(misses))
            self._c_tier_seconds["newton"].inc(time.perf_counter() - t0)
        return len(misses)

    def _solve_keys_batched(self, misses: list[tuple]) -> None:
        """One vectorized integration over all missing situations."""
        # Materialise tables first so the bank covers every signature.
        for key in misses:
            self._solver_for_token(key[0])
        solver = self._batch_solver_current()
        index_of = {token: i for i, token in enumerate(self._table_order)}
        specs = [
            BatchArcSpec(
                table_index=index_of[token],
                input_direction=direction,
                transition=tt,
                load=CouplingLoad(c_ground=c_passive, c_couple_active=c_active),
                aiding=aiding,
            )
            for (token, direction, tt, c_passive, c_active, aiding) in misses
        ]
        try:
            results = solver.solve_many_compact(specs)
        except SolverError as exc:
            if self.strict:
                raise
            self._c_batch_fallbacks.inc()
            logger.warning(
                "batched solve of %d arcs failed (%s); falling back to "
                "per-arc scalar solves",
                len(misses),
                exc,
            )
            for key in misses:
                self._arc_cache[key] = self._solve_key(key)
            return
        directions = results.directions
        t_cross = results.t_cross
        transition = results.transition
        t_early = results.t_early
        t_late = results.t_late
        coupled = results.coupled
        iterations = results.newton_iterations
        for j, key in enumerate(misses):
            arc = ArcResult(
                direction=directions[j],
                t_cross=float(t_cross[j]),
                transition=float(transition[j]),
                t_early=float(t_early[j]),
                t_late=float(t_late[j]),
                coupled=bool(coupled[j]),
            )
            self._arc_cache[key] = arc
            self._observe_cost(key[0], int(iterations[j]))
            if self._screen is not None:
                self._screen.observe(key, arc)
        self._c_evaluations.inc(len(misses))
        self._c_batched.inc(len(misses))

    def _predicted_cost(self, key: tuple) -> float:
        """Predicted Newton cost of one arc situation, from the
        per-signature cost model (global histogram mean as fallback)."""
        stats = self._sig_cost.get(key[0])
        if stats is not None and stats[0]:
            return stats[1] / stats[0]
        mean = self._h_newton.mean
        return mean if mean > 0.0 else 1.0

    def _solve_keys_pooled(self, misses: list[tuple]) -> None:
        """Fan the distinct solves out over worker processes.

        Chunks are balanced by *predicted cost* (longest-processing-time
        assignment using the per-signature Newton cost model) and
        submitted heaviest-first, one future at a time, so a dead or hung
        worker is detected per chunk; see :meth:`_run_pool_chunk` for the
        retry/quarantine policy.
        """
        # LPT: sort by descending predicted cost, greedily assign each
        # arc to the currently lightest of ``workers`` buckets.
        ordered = sorted(misses, key=self._predicted_cost, reverse=True)
        buckets: list[list[tuple]] = [[] for _ in range(max(1, self.workers))]
        loads = [0.0] * len(buckets)
        for key in ordered:
            lightest = loads.index(min(loads))
            buckets[lightest].append(key)
            loads[lightest] += self._predicted_cost(key)
        # Submit heaviest chunk first so it overlaps the most other work.
        order = sorted(range(len(buckets)), key=loads.__getitem__, reverse=True)

        for index in order:
            chunk_keys = buckets[index]
            if not chunk_keys:
                continue
            items = []
            for token, direction, tt, c_passive, c_active, aiding in chunk_keys:
                pu, pd = self._sig_params[token]
                items.append((pu, pd, direction, tt, c_passive, c_active, aiding))
            rows = self._run_pool_chunk(items, index, chunk_keys)
            if rows is None:
                # The chunk was solved (and counted) one arc at a time by
                # the scalar fallback inside _run_pool_chunk.
                continue
            for key, fields in zip(chunk_keys, rows):
                (
                    direction,
                    t_cross,
                    transition,
                    t_early,
                    t_late,
                    coupled,
                    iterations,
                ) = fields
                arc = ArcResult(
                    direction, t_cross, transition, t_early, t_late, coupled
                )
                self._arc_cache[key] = arc
                self._observe_cost(key[0], iterations)
                if self._screen is not None:
                    self._screen.observe(key, arc)
            self._c_evaluations.inc(len(rows))
            self._c_batched.inc(len(rows))
            self._c_pool.inc(len(rows))

    def _ensure_executor(self):
        """The process pool, created lazily with a table-priming
        initializer: every worker prebuilds the stage tables for all
        signatures known at pool start, so chunk payloads carry only the
        work items (signatures discovered later are built on first use)."""
        from concurrent.futures import ProcessPoolExecutor

        if self._executor is None:
            warm_specs = tuple(self._sig_params[t] for t in self._table_order)
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_pool_init,
                initargs=(self.process, self.table_points, warm_specs),
            )
        return self._executor

    def _run_pool_chunk(
        self,
        items: list[tuple],
        chunk_index: int,
        chunk_keys: list[tuple],
    ) -> list | None:
        """Solve one chunk on the pool, surviving worker faults.

        Worker death (BrokenProcessPool), per-chunk timeouts and OS-level
        submission failures are retried up to ``worker_retries`` times
        with exponential backoff, rebuilding the executor each time.  A
        chunk that still fails is quarantined: replayed in-process (bit-
        identical to the pool result), and if even that raises a solver
        error, each arc is solved individually so only the sick arcs
        degrade.  Returns the chunk's result rows, or ``None`` when the
        per-arc fallback already cached (and counted) the results.
        """
        from concurrent.futures import TimeoutError as PoolTimeout
        from concurrent.futures.process import BrokenProcessPool

        attempts = self.worker_retries + 1
        for attempt in range(attempts):
            payload = (items, self._take_pool_fault(chunk_index))
            future = self._ensure_executor().submit(_pool_solve_chunk, payload)
            try:
                rows, snapshot = future.result(timeout=self.worker_timeout)
            except SolverError:
                # Deterministic numerical failure: a retry would fail
                # identically, so go straight to the in-process fallback.
                break
            except (BrokenProcessPool, PoolTimeout, TimeoutError, OSError) as exc:
                self._c_worker_failures.inc()
                self._reset_executor()
                if attempt + 1 < attempts:
                    self._c_worker_retries.inc()
                    delay = self.retry_backoff * (2**attempt)
                    logger.warning(
                        "worker chunk %d failed (%s: %s); retrying in %.0f ms",
                        chunk_index,
                        type(exc).__name__,
                        exc,
                        delay * 1e3,
                    )
                    time.sleep(delay)
                else:
                    logger.warning(
                        "worker chunk %d failed (%s: %s) after %d attempts; "
                        "quarantining and evaluating in-process",
                        chunk_index,
                        type(exc).__name__,
                        exc,
                        attempts,
                    )
            else:
                self.metrics.merge_snapshot(snapshot)
                return rows

        self._c_quarantined_chunks.inc()
        self._c_serial_fallbacks.inc()
        # The in-process replay runs in the parent, where the worker
        # context was never initialized -- prime it here (warm specs are
        # unnecessary; _worker_table builds on demand).
        _pool_init(self.process, self.table_points, ())
        try:
            rows, snapshot = _pool_solve_chunk((items, None))
        except SolverError as exc:
            if self.strict:
                raise
            logger.warning(
                "chunk %d failed in-process as well (%s); solving its arcs "
                "one at a time",
                chunk_index,
                exc,
            )
            for key in chunk_keys:
                if key not in self._arc_cache:
                    self._arc_cache[key] = self._solve_key(key)
            return None
        self.metrics.merge_snapshot(snapshot)
        return rows

    def _take_pool_fault(self, chunk_index: int) -> dict | None:
        """Consume one injected worker fault, if the harness armed any.

        The spec is decremented parent-side so a ``times=N`` injection
        fires on exactly N chunk submissions regardless of worker
        scheduling -- that is what makes pool-fault tests deterministic.
        """
        spec = self.pool_fault
        if not spec or spec.get("times", 0) <= 0:
            return None
        only = spec.get("chunks")
        if only is not None and chunk_index not in only:
            return None
        spec["times"] -= 1
        return {"action": spec["action"], "seconds": spec.get("seconds", 30.0)}

    def _reset_executor(self) -> None:
        """Tear down the pool so the next chunk starts on fresh workers."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        """Shut down the worker pool, if one was started."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def solve_stage_raw(
        self,
        ctype: CellType,
        pin: str,
        input_ramp: InputRamp,
        load: CouplingLoad,
    ) -> StageResult:
        """Uncached full-waveform stage solve (diagnostics, validation)."""
        return self.solver_for(ctype, pin).solve(input_ramp, load)

    # -- persistence ----------------------------------------------------------

    def fingerprint(self, cell_types: Iterable[CellType]) -> str:
        """The compatibility fingerprint of this calculator's results."""
        return library_fingerprint(
            self.process,
            cell_types,
            self.transition_grid,
            self.cap_grid,
            self.table_points,
        )

    def save_cache_file(self, path: str, cell_types: Iterable[CellType]) -> int:
        """Write the arc cache as JSON keyed by the library fingerprint.

        Returns the number of entries written.  The write is atomic
        (temp file + rename) so concurrent runs never read a torn file,
        and the arc table carries a content checksum so silent corruption
        (bit rot, partial copies) is caught at load time.
        """
        arcs = [
            [list(key), [r.direction, r.t_cross, r.transition, r.t_early, r.t_late, r.coupled]]
            for key, r in self._arc_cache.items()
        ]
        body = json.dumps(arcs, sort_keys=True)
        payload = {
            "format": CACHE_FORMAT,
            "fingerprint": self.fingerprint(cell_types),
            "checksum": hashlib.sha256(body.encode()).hexdigest(),
            "arcs": arcs,
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
        return len(self._arc_cache)

    def _quarantine_cache(self, path: str, reason: str) -> int:
        """Move a corrupt cache file aside so the rebuild cannot re-read
        it; strict mode raises a :class:`CacheError` instead of rebuilding."""
        self._c_cache_quarantined.inc()
        quarantined = f"{path}.bad"
        try:
            os.replace(path, quarantined)
            where = f"quarantined to {quarantined}"
        except OSError:
            where = "could not be quarantined"
        logger.warning(
            "arc cache %s is corrupt (%s); %s, rebuilding from scratch",
            path,
            reason,
            where,
        )
        if self.strict:
            raise CacheError(f"arc cache {path} is corrupt: {reason}")
        return 0

    def load_cache_file(self, path: str, cell_types: Iterable[CellType]) -> int:
        """Load a persistent arc cache if it matches this configuration.

        Silently ignores missing, unreadable, wrong-format or
        stale-fingerprint files (a cold start is always safe).  Corrupt
        files -- unparseable, checksum mismatch, malformed or non-finite
        arc entries -- are additionally quarantined to ``<path>.bad``.
        Returns the number of entries adopted.
        """
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError:
            return 0
        except ValueError:
            return self._quarantine_cache(path, "not valid JSON")
        if not isinstance(payload, dict) or payload.get("format") != CACHE_FORMAT:
            self._c_stale.inc()
            logger.warning("arc cache %s has an unknown format; ignoring", path)
            return 0
        if payload.get("fingerprint") != self.fingerprint(cell_types):
            self._c_stale.inc()
            logger.warning(
                "arc cache %s was built for a different configuration; ignoring", path
            )
            return 0
        arcs = payload.get("arcs", [])
        body = json.dumps(arcs, sort_keys=True)
        if hashlib.sha256(body.encode()).hexdigest() != payload.get("checksum"):
            return self._quarantine_cache(path, "content checksum mismatch")
        entries: list[tuple[tuple, ArcResult]] = []
        try:
            for raw_key, fields in arcs:
                token, direction, tt, c_passive, c_active, aiding = raw_key
                if not isinstance(token, str):
                    raise ValueError("non-string signature token")
                out_direction, t_cross, transition, t_early, t_late, coupled = fields
                numbers = (tt, c_passive, c_active, t_cross, transition, t_early, t_late)
                if not all(
                    isinstance(v, (int, float)) and math.isfinite(v) for v in numbers
                ):
                    raise ValueError("non-finite arc entry")
                entries.append(
                    (
                        (token, direction, tt, c_passive, c_active, bool(aiding)),
                        ArcResult(
                            out_direction,
                            t_cross,
                            transition,
                            t_early,
                            t_late,
                            bool(coupled),
                        ),
                    )
                )
        except (TypeError, ValueError):
            return self._quarantine_cache(path, "malformed arc entries")
        loaded = 0
        for key, arc in entries:
            if key in self._arc_cache:
                continue
            self._arc_cache[key] = arc
            self._persisted_keys.add(key)
            if self._screen is not None:
                # Persisted entries are successful exact solves from a
                # fingerprint-compatible run: warm the response surface
                # so screened reruns skip most calibration work.
                self._screen.observe(key, arc)
            loaded += 1
        self._c_persisted.inc(loaded)
        return loaded

    # -- statistics -----------------------------------------------------------

    def cache_stats(self) -> dict:
        lookups = self.evaluations + self.cache_hits
        return {
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "hit_rate": self.cache_hits / lookups if lookups else 0.0,
            "dedup_hits": self._c_dedup_hits.value,
            "persisted_hits": self._c_persisted_hits.value,
            "cached_arcs": len(self._arc_cache),
            "stage_tables": len(self._stage_tables),
            "signatures": len(self._sig_params),
            "signature_aliases": self._c_sig_aliases.value,
            "batched_solves": self.batched_solves,
            "pool_solves": self.pool_solves,
            "persisted_loads": self.persisted_loads,
            "stale_rejects": self._c_stale.value,
            "quarantined": self._c_cache_quarantined.value,
            "newton_iterations": self._h_newton.total,
            "newton_bisections": self._c_bisect.value,
            "degraded_arcs": self._c_degraded.value,
            "worker_failures": self._c_worker_failures.value,
            "solver_tier": self.solver_tier,
            "tier_counts": {
                tier: counter.value for tier, counter in self._c_tier.items()
            },
            "tier_seconds": {
                tier: counter.value for tier, counter in self._c_tier_seconds.items()
            },
            "escalations": {
                reason: counter.value
                for reason, counter in self._c_escalations.items()
            },
            "screen_hits": self._c_screen_hits.value,
            **(self._screen.stats() if self._screen is not None else {}),
        }

    def reset_counters(self) -> None:
        self._c_evaluations.reset()
        self._c_cache_hits.reset()
        self._c_dedup_hits.reset()
        self._c_persisted_hits.reset()
        self._c_batched.reset()
        self._c_pool.reset()
        self._c_screen_hits.reset()
        for group in (self._c_tier, self._c_tier_seconds, self._c_escalations):
            for counter in group.values():
                counter.reset()
