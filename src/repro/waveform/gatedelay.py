"""Per-arc gate delay calculation with caching.

Wraps the stage solvers into the operation the STA performs on every
timing arc: given the switching input's ramp event, the cell/pin, and the
victim output's coupling situation, produce the output ramp event.

Results are cached on a quantized key (cell, pin, input direction, input
transition, passive load, active coupling); circuits instantiate few cell
types at many places, so the Newton integrations are only paid for
distinct electrical situations.  Quantization rounds the load and slew
*up* (slower, later -- conservative for the delay bound); the small
non-conservative error this leaves on the early-activity marker is
covered by the STA's comparison guard band (``StaConfig.guard``).

Two evaluation backends fill the cache:

* the scalar :class:`~repro.waveform.stage.StageSolver` (reference), one
  arc at a time, and
* the vectorized :class:`~repro.waveform.batchstage.BatchStageSolver`,
  used by :meth:`GateDelayCalculator.prime_arcs` to integrate all distinct
  situations of a batch simultaneously -- optionally fanned out over a
  ``ProcessPoolExecutor`` for multi-core scaling.

The cache can persist across runs (:meth:`save_cache_file` /
:meth:`load_cache_file`): a JSON file keyed by a fingerprint of the
process, the cell library's collapsed stage devices and the solver
settings, so the iterative mode's repeat passes and repeated benchmark
invocations skip Newton entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import math
import os
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.circuit.library import CellType
from repro.devices.params import ProcessParams, default_process
from repro.devices.tables import StageTable
from repro.obs.metrics import NEWTON_ITER_BUCKETS, MetricsRegistry
from repro.waveform.batchstage import BatchArcSpec, BatchStageSolver
from repro.waveform.coupling import CouplingLoad
from repro.waveform.ramp import RampEvent
from repro.waveform.stage import (
    MAX_EXTENSIONS,
    SETTLE_FRACTION,
    STEPS_PER_PHASE,
    InputRamp,
    StageResult,
    StageSolver,
)

logger = logging.getLogger("repro.waveform.gatedelay")

CACHE_FORMAT = 1

# Below this many distinct situations a batched solve does not amortize
# its setup; fall through to the scalar reference path.
MIN_BATCH = 4


@dataclass(frozen=True)
class ArcResult:
    """Stage response in the input-ramp-start time frame (t_start = 0)."""

    direction: str
    t_cross: float
    transition: float
    t_early: float
    t_late: float
    coupled: bool

    def to_event(self, t_start: float) -> RampEvent:
        """Materialise as an absolute-time ramp event."""
        return RampEvent(
            direction=self.direction,
            t_cross=t_start + self.t_cross,
            transition=self.transition,
            t_early=t_start + self.t_early,
            t_late=t_start + self.t_late,
        )


@dataclass(frozen=True)
class ArcRequest:
    """One arc situation for batched priming (pre-quantization values)."""

    ctype: CellType
    pin: str
    input_direction: str
    input_transition: float
    load: CouplingLoad
    aiding: bool = False
    quantize_down: bool = False


def _stage_params(ctype: CellType, pin: str, process: ProcessParams):
    """Collapsed (pull-up, pull-down) device parameter tuples for an arc,
    or ``None`` per side -- the electrical identity of a stage table."""
    pull_up, pull_down = ctype.topology.equivalent_stage(pin, process)
    pu = dataclasses.astuple(pull_up.params) if pull_up is not None else None
    pd = dataclasses.astuple(pull_down.params) if pull_down is not None else None
    return pu, pd


def library_fingerprint(
    process: ProcessParams,
    cell_types: Iterable[CellType],
    transition_grid: float,
    cap_grid: float,
    table_points: int,
) -> str:
    """Hash of everything that determines an arc result.

    Two runs with equal fingerprints may share cached arcs: the process
    constants, the collapsed stage devices of every (cell, pin), the
    quantization grids, the table resolution and the solver settings.
    """
    cells = {}
    for ctype in sorted({c.name: c for c in cell_types}.values(), key=lambda c: c.name):
        pins = {}
        for pin in dict.fromkeys(list(ctype.inputs) + ["A"]):
            try:
                pu, pd = _stage_params(ctype, pin, process)
            except (KeyError, ValueError):
                continue
            if pu is None and pd is None:
                continue
            pins[pin] = [pu, pd]
        cells[ctype.name] = pins
    payload = {
        "process": dataclasses.asdict(process),
        "transition_grid": transition_grid,
        "cap_grid": cap_grid,
        "table_points": table_points,
        "solver": {
            "steps_per_phase": STEPS_PER_PHASE,
            "settle_fraction": SETTLE_FRACTION,
            "max_extensions": MAX_EXTENSIONS,
        },
        "cells": cells,
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


# -- worker-process machinery for the opt-in multi-core fan-out ------------

_WORKER_TABLES: dict = {}


def _pool_solve_chunk(payload):
    """Solve one chunk of distinct arc situations in a worker process.

    ``payload``: (process, table_points, table_specs, items) where
    ``table_specs`` maps local table index -> (pu_params, pd_params) and
    each item is ``(table_idx, direction, tt, c_passive, c_active,
    aiding)``.  Tables are cached per worker process across chunks.
    Returns one result tuple per item plus the worker's metrics snapshot
    (Newton iteration histogram, bisection fallbacks), which the parent
    merges into its registry.
    """
    from repro.devices.mosfet import Mosfet, MosfetParams

    process, table_points, table_specs, items = payload
    tables = []
    for pu, pd in table_specs:
        cache_key = (pu, pd, table_points)
        table = _WORKER_TABLES.get(cache_key)
        if table is None:
            pull_up = Mosfet(MosfetParams(*pu), process) if pu is not None else None
            pull_down = Mosfet(MosfetParams(*pd), process) if pd is not None else None
            table = StageTable(pull_up, pull_down, process=process, points=table_points)
            _WORKER_TABLES[cache_key] = table
        tables.append(table)
    registry = MetricsRegistry()
    solver = BatchStageSolver(tables, process, metrics=registry)
    specs = [
        BatchArcSpec(
            table_index=ti,
            input_direction=direction,
            transition=tt,
            load=CouplingLoad(c_ground=cp, c_couple_active=ca),
            aiding=aiding,
        )
        for ti, direction, tt, cp, ca, aiding in items
    ]
    rows = [
        (r.direction, r.t_cross, r.transition, r.t_early, r.t_late, r.coupled)
        for r in solver.solve_many(specs)
    ]
    return rows, registry.snapshot()


class GateDelayCalculator:
    """Caching transistor-level delay engine for library-cell arcs."""

    def __init__(
        self,
        process: ProcessParams | None = None,
        transition_grid: float = 2e-12,
        cap_grid: float = 0.2e-15,
        table_points: int = 121,
        engine: str = "scalar",
        workers: int = 0,
        metrics: MetricsRegistry | None = None,
    ):
        self.process = process if process is not None else default_process()
        self.transition_grid = transition_grid
        self.cap_grid = cap_grid
        self.table_points = table_points
        self.engine = engine
        self.workers = workers
        self._stage_tables: dict[tuple[str, str], StageTable] = {}
        self._solvers: dict[tuple[str, str], StageSolver] = {}
        self._arc_cache: dict[tuple, ArcResult] = {}
        self._batch_solver: BatchStageSolver | None = None
        self._table_order: list[tuple[str, str]] = []
        self._executor = None
        # All statistics live in a metrics registry (one per analysis run,
        # shared with the propagator when the analyzer constructs us); the
        # instruments are resolved once so the hot path pays one method
        # call per event.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_evaluations = self.metrics.counter("arc_cache.evaluations")
        self._c_cache_hits = self.metrics.counter("arc_cache.hits")
        self._c_batched = self.metrics.counter("arc_cache.batched_solves")
        self._c_pool = self.metrics.counter("arc_cache.pool_solves")
        self._c_persisted = self.metrics.counter("arc_cache.persisted_loads")
        self._c_stale = self.metrics.counter("arc_cache.stale_rejects")
        self._h_newton = self.metrics.histogram(
            "newton.iterations_per_arc", boundaries=NEWTON_ITER_BUCKETS
        )
        self._c_bisect = self.metrics.counter("newton.bisection_fallbacks")

    # -- statistics properties (registry-backed, kept for compatibility) ----

    @property
    def evaluations(self) -> int:
        return self._c_evaluations.value

    @property
    def cache_hits(self) -> int:
        return self._c_cache_hits.value

    @property
    def batched_solves(self) -> int:
        return self._c_batched.value

    @property
    def pool_solves(self) -> int:
        return self._c_pool.value

    @property
    def persisted_loads(self) -> int:
        return self._c_persisted.value

    # -- stage machinery ----------------------------------------------------

    def solver_for(self, ctype: CellType, pin: str) -> StageSolver:
        key = (ctype.name, pin)
        solver = self._solvers.get(key)
        if solver is None:
            pull_up, pull_down = ctype.topology.equivalent_stage(pin, self.process)
            if pull_up is None and pull_down is None:
                raise ValueError(
                    f"{ctype.name} has no transistor gated by pin {pin!r}"
                )
            table = StageTable(
                pull_up, pull_down, process=self.process, points=self.table_points
            )
            self._stage_tables[key] = table
            self._table_order.append(key)
            solver = StageSolver(table, self.process)
            self._solvers[key] = solver
        return solver

    def _batch_solver_current(self) -> BatchStageSolver:
        """The batch solver over all known stage tables, rebuilt when new
        tables appeared since the last build."""
        if self._batch_solver is None or len(self._batch_solver.tables) != len(
            self._table_order
        ):
            self._batch_solver = BatchStageSolver(
                [self._stage_tables[key] for key in self._table_order],
                self.process,
                metrics=self.metrics,
            )
        return self._batch_solver

    # -- quantization --------------------------------------------------------

    def _q_time(self, value: float, down: bool = False) -> float:
        rounder = math.floor if down else math.ceil
        return rounder(max(value, 1e-13) / self.transition_grid) * self.transition_grid

    def _q_cap(self, value: float, down: bool = False) -> float:
        rounder = math.floor if down else math.ceil
        return rounder(max(value, 0.0) / self.cap_grid) * self.cap_grid

    def _quantized_key(self, request: ArcRequest) -> tuple:
        """The cache key of a request: quantized slew and loads.

        This is the single place quantization happens, shared by the
        scalar per-arc path and the batched priming path.
        """
        down = request.quantize_down
        tt = self._q_time(request.input_transition, down=down)
        c_passive = self._q_cap(
            request.load.c_ground + request.load.c_couple_passive, down=down
        )
        # Active coupling is a *helping* jump in min-delay contexts: round
        # it up there (more help -> faster -> safe lower bound).
        c_active = self._q_cap(
            request.load.c_couple_active, down=down and not request.aiding
        )
        if down and c_passive + c_active <= 0.0:
            c_passive = self.cap_grid  # keep the stage integrable
        return (
            request.ctype.name,
            request.pin,
            request.input_direction,
            tt,
            c_passive,
            c_active,
            request.aiding,
        )

    # -- the arc operation ----------------------------------------------------

    def compute_arc(
        self,
        ctype: CellType,
        pin: str,
        input_event: RampEvent,
        load: CouplingLoad,
        aiding: bool = False,
    ) -> RampEvent:
        """Output ramp event at the cell's output pin (wire delay excluded).

        The cell is negative unate (static single-stage CMOS): the output
        direction is the opposite of ``input_event.direction``.
        """
        result = self.compute_arc_relative(
            ctype, pin, input_event.direction, input_event.transition, load, aiding
        )
        t_start = input_event.t_cross - 0.5 * input_event.transition
        return result.to_event(t_start)

    def compute_arc_relative(
        self,
        ctype: CellType,
        pin: str,
        input_direction: str,
        input_transition: float,
        load: CouplingLoad,
        aiding: bool = False,
        quantize_down: bool = False,
    ) -> ArcResult:
        """The cached, time-origin-free arc calculation.

        ``aiding=True`` applies the mirrored same-direction coupling model
        (helping jump) used by min-delay analysis.  ``quantize_down``
        rounds the cache key's load and slew *down* instead of up -- the
        conservative direction for a min-delay (lower) bound, where the
        modelled arc must never be slower than reality.
        """
        request = ArcRequest(
            ctype, pin, input_direction, input_transition, load, aiding, quantize_down
        )
        key = self._quantized_key(request)
        cached = self._arc_cache.get(key)
        if cached is not None:
            self._c_cache_hits.inc()
            return cached
        arc = self._solve_key(ctype, key)
        self._arc_cache[key] = arc
        return arc

    def _solve_key(self, ctype: CellType, key: tuple) -> ArcResult:
        """Scalar (reference) solve of one quantized arc situation."""
        _, pin, input_direction, tt, c_passive, c_active, aiding = key
        self._c_evaluations.inc()
        solver = self.solver_for(ctype, pin)
        stage_result = solver.solve(
            InputRamp(direction=input_direction, t_start=0.0, transition=tt),
            CouplingLoad(
                c_ground=c_passive,
                c_couple_active=c_active,
                c_couple_passive=0.0,
            ),
            aiding=aiding,
        )
        self._h_newton.observe(stage_result.newton_iterations)
        if stage_result.newton_bisections:
            self._c_bisect.inc(stage_result.newton_bisections)
        return self._to_arc(stage_result)

    @staticmethod
    def _to_arc(stage_result: StageResult) -> ArcResult:
        return ArcResult(
            direction=stage_result.direction,
            t_cross=stage_result.t_cross,
            transition=stage_result.transition,
            t_early=stage_result.t_early,
            t_late=stage_result.t_late,
            coupled=stage_result.coupled,
        )

    # -- batched priming ------------------------------------------------------

    def prime_arcs(self, requests: Sequence[ArcRequest]) -> int:
        """Ensure every request's quantized situation is cached.

        Deduplicates the requests through the quantized arc key, then
        solves the distinct misses -- with the batch engine in one
        vectorized call (optionally fanned out over worker processes)
        when configured, falling back to the scalar reference solver for
        tiny batches or ``engine="scalar"``.  Returns the number of
        situations actually solved.
        """
        misses: dict[tuple, CellType] = {}
        for request in requests:
            key = self._quantized_key(request)
            if key not in self._arc_cache and key not in misses:
                misses[key] = request.ctype
        if not misses:
            return 0

        if self.engine != "batch" or len(misses) < MIN_BATCH:
            for key, ctype in misses.items():
                self._arc_cache[key] = self._solve_key(ctype, key)
            return len(misses)

        if self.workers >= 2 and len(misses) >= 2 * MIN_BATCH:
            self._solve_keys_pooled(misses)
        else:
            self._solve_keys_batched(misses)
        return len(misses)

    def _solve_keys_batched(self, misses: dict[tuple, CellType]) -> None:
        """One vectorized integration over all missing situations."""
        # Materialise tables first so the bank covers every (cell, pin).
        for key, ctype in misses.items():
            self.solver_for(ctype, key[1])
        solver = self._batch_solver_current()
        index_of = {table_key: i for i, table_key in enumerate(self._table_order)}
        keys = list(misses)
        specs = [
            BatchArcSpec(
                table_index=index_of[(name, pin)],
                input_direction=direction,
                transition=tt,
                load=CouplingLoad(c_ground=c_passive, c_couple_active=c_active),
                aiding=aiding,
            )
            for (name, pin, direction, tt, c_passive, c_active, aiding) in keys
        ]
        results = solver.solve_many(specs)
        for key, stage_result in zip(keys, results):
            self._arc_cache[key] = self._to_arc(stage_result)
        self._c_evaluations.inc(len(keys))
        self._c_batched.inc(len(keys))

    def _solve_keys_pooled(self, misses: dict[tuple, CellType]) -> None:
        """Fan the distinct solves out over worker processes."""
        from concurrent.futures import ProcessPoolExecutor

        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)

        keys = list(misses)
        table_specs: list = []
        spec_index: dict = {}
        items = []
        for key in keys:
            name, pin, direction, tt, c_passive, c_active, aiding = key
            params = _stage_params(misses[key], pin, self.process)
            ti = spec_index.get(params)
            if ti is None:
                ti = len(table_specs)
                spec_index[params] = ti
                table_specs.append(params)
            items.append((ti, direction, tt, c_passive, c_active, aiding))

        chunks = max(1, self.workers)
        chunk_size = (len(items) + chunks - 1) // chunks
        payloads = [
            (self.process, self.table_points, table_specs, items[i : i + chunk_size])
            for i in range(0, len(items), chunk_size)
        ]
        flat: list = []
        for chunk_rows, chunk_snapshot in self._executor.map(
            _pool_solve_chunk, payloads
        ):
            flat.extend(chunk_rows)
            self.metrics.merge_snapshot(chunk_snapshot)
        for key, fields in zip(keys, flat):
            direction, t_cross, transition, t_early, t_late, coupled = fields
            self._arc_cache[key] = ArcResult(
                direction, t_cross, transition, t_early, t_late, coupled
            )
        self._c_evaluations.inc(len(keys))
        self._c_batched.inc(len(keys))
        self._c_pool.inc(len(keys))

    def close(self) -> None:
        """Shut down the worker pool, if one was started."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def solve_stage_raw(
        self,
        ctype: CellType,
        pin: str,
        input_ramp: InputRamp,
        load: CouplingLoad,
    ) -> StageResult:
        """Uncached full-waveform stage solve (diagnostics, validation)."""
        return self.solver_for(ctype, pin).solve(input_ramp, load)

    # -- persistence ----------------------------------------------------------

    def fingerprint(self, cell_types: Iterable[CellType]) -> str:
        """The compatibility fingerprint of this calculator's results."""
        return library_fingerprint(
            self.process,
            cell_types,
            self.transition_grid,
            self.cap_grid,
            self.table_points,
        )

    def save_cache_file(self, path: str, cell_types: Iterable[CellType]) -> int:
        """Write the arc cache as JSON keyed by the library fingerprint.

        Returns the number of entries written.  The write is atomic
        (temp file + rename) so concurrent runs never read a torn file.
        """
        payload = {
            "format": CACHE_FORMAT,
            "fingerprint": self.fingerprint(cell_types),
            "arcs": [
                [list(key), [r.direction, r.t_cross, r.transition, r.t_early, r.t_late, r.coupled]]
                for key, r in self._arc_cache.items()
            ],
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
        return len(self._arc_cache)

    def load_cache_file(self, path: str, cell_types: Iterable[CellType]) -> int:
        """Load a persistent arc cache if it matches this configuration.

        Silently ignores missing, unreadable, wrong-format or
        stale-fingerprint files (a cold start is always safe).  Returns
        the number of entries adopted.
        """
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError:
            return 0
        except ValueError:
            self._c_stale.inc()
            logger.warning("arc cache %s is not valid JSON; ignoring", path)
            return 0
        if payload.get("format") != CACHE_FORMAT:
            self._c_stale.inc()
            logger.warning("arc cache %s has an unknown format; ignoring", path)
            return 0
        if payload.get("fingerprint") != self.fingerprint(cell_types):
            self._c_stale.inc()
            logger.warning(
                "arc cache %s was built for a different configuration; ignoring", path
            )
            return 0
        loaded = 0
        for raw_key, fields in payload.get("arcs", []):
            name, pin, direction, tt, c_passive, c_active, aiding = raw_key
            key = (name, pin, direction, tt, c_passive, c_active, bool(aiding))
            if key in self._arc_cache:
                continue
            out_direction, t_cross, transition, t_early, t_late, coupled = fields
            self._arc_cache[key] = ArcResult(
                out_direction, t_cross, transition, t_early, t_late, bool(coupled)
            )
            loaded += 1
        self._c_persisted.inc(loaded)
        return loaded

    # -- statistics -----------------------------------------------------------

    def cache_stats(self) -> dict:
        lookups = self.evaluations + self.cache_hits
        return {
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "hit_rate": self.cache_hits / lookups if lookups else 0.0,
            "cached_arcs": len(self._arc_cache),
            "stage_tables": len(self._stage_tables),
            "batched_solves": self.batched_solves,
            "pool_solves": self.pool_solves,
            "persisted_loads": self.persisted_loads,
            "stale_rejects": self._c_stale.value,
            "newton_iterations": self._h_newton.total,
            "newton_bisections": self._c_bisect.value,
        }

    def reset_counters(self) -> None:
        self._c_evaluations.reset()
        self._c_cache_hits.reset()
        self._c_batched.reset()
        self._c_pool.reset()
